//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro over functions whose arguments are drawn from
//! strategies (`arg in strategy`), integer-range strategies, [`any`],
//! [`collection::vec`], [`bool::ANY`], and panic-based [`prop_assert!`] /
//! [`prop_assert_eq!`]. Cases are generated from a deterministic seeded
//! generator; there is no shrinking — a failing case panics with the
//! values visible via the assertion message.

#![warn(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! The [`Strategy`] trait and the strategies this workspace uses.

    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy drawing uniformly from a type's full domain; built by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        pub(crate) marker: core::marker::PhantomData<T>,
    }

    /// Types with a canonical full-domain strategy (mirrors `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy generating `Vec`s of a fixed length; built by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Any;

    /// The uniform boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any<bool> = Any::<bool> {
        marker: core::marker::PhantomData,
    };
}

pub mod test_runner {
    //! Test-run configuration, mirroring `proptest::test_runner`.

    /// How many cases each property runs, mirroring `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Panic-based stand-in for `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Panic-based stand-in for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Panic-based stand-in for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

/// Declares property tests whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any number
/// of `fn name(arg in strategy, ...) { body }` items carrying attributes
/// (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Deterministic per-property seed so failures reproduce.
                let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in stringify!($name).bytes() {
                    hash = (hash ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(hash);
                for _case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::core::default::Default::default(); $($rest)*);
    };
}
