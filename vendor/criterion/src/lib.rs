//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API surface `benches/experiments.rs` uses — benchmark
//! groups, parameterised ids, `Bencher::iter` — backed by a simple
//! wall-clock harness: each benchmark is warmed up, then timed over an
//! iteration count calibrated to a fixed measurement window, and the mean
//! per-iteration time is printed. No statistics, plots or comparisons.
//!
//! The harness is runnable end-to-end under `cargo bench`, not just
//! compile-checked with `--no-run`:
//!
//! * positional command-line arguments act as substring filters on the
//!   `group/benchmark` id, mirroring `cargo bench -- <filter>`; flags that
//!   cargo itself appends (`--bench`, and any other `-`-prefixed argument)
//!   are ignored;
//! * `--list` prints benchmark ids without running them;
//! * the measurement window (default 100 ms per benchmark) can be shrunk for
//!   smoke runs with the `CRITERION_MEASUREMENT_MS` environment variable —
//!   CI sets a small window so the full suite executes in seconds.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter, `"name/param"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher<'a> {
    /// Mean per-iteration duration, recorded for the group to report.
    elapsed: &'a mut Duration,
    measurement_window: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until 10 ms or 5 iterations, whichever
        // comes later in information terms, to pick an iteration count.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_iters < 5 || calibration_start.elapsed() < Duration::from_millis(10) {
            std_black_box(routine());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calibration_start.elapsed() / calibration_iters as u32;
        let iters = (self.measurement_window.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(5, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        *self.elapsed = start.elapsed() / iters as u32;
    }
}

/// What the harness was asked to do with each benchmark.
#[derive(Debug, Clone)]
struct RunConfig {
    /// Positional substring filters; empty means "run everything".
    filters: Vec<String>,
    /// Print ids instead of running.
    list_only: bool,
    /// Measurement window per benchmark.
    measurement_window: Duration,
}

impl RunConfig {
    fn from_env() -> Self {
        let filters: Vec<String> = std::env::args()
            .skip(1)
            .filter(|arg| arg != "--list" && !arg.starts_with('-'))
            .collect();
        let list_only = std::env::args().any(|arg| arg == "--list");
        let measurement_window = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(100));
        RunConfig {
            filters,
            list_only,
            measurement_window,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: RunConfig,
    header_printed: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub calibrates by time instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{label}", self.name);
        if !self.config.matches(&id) {
            return;
        }
        if self.config.list_only {
            println!("{id}: benchmark");
            return;
        }
        if !self.header_printed {
            println!("== group: {}", self.name);
            self.header_printed = true;
        }
        let mut elapsed = Duration::ZERO;
        let mut bencher = Bencher {
            elapsed: &mut elapsed,
            measurement_window: self.config.measurement_window,
        };
        f(&mut bencher);
        println!("{}/{label:<24} {elapsed:>12.3?}/iter", self.name);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = id.label.clone();
        self.run_one(&label, |bencher| f(bencher, input));
        self
    }

    /// Runs one benchmark identified by name alone.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Ends the group. (The stub reports as it goes; this is a no-op.)
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    config: RunConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: RunConfig::from_env(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            header_printed: false,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("default", f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench_fn(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
