//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements only the API surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and [`Rng::gen`] /
//! [`Rng::gen_range`] for the integer types the workload generators draw.
//! The generator is SplitMix64 — deterministic per seed, statistically fine
//! for test-workload generation, **not** cryptographically secure.

#![warn(missing_docs)]

use core::ops::Range;

/// Types that can be drawn uniformly from the full value domain or a range.
pub trait Uniform: Copy {
    /// Draws a value of `Self` from a raw 64-bit sample.
    fn from_u64(raw: u64) -> Self;
    /// Widens to `u64` for range arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` after range arithmetic.
    fn from_offset(raw: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_offset(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

// Unsigned only: the cast-based range arithmetic below is wrong for signed
// bounds, so signed use must fail at compile time rather than panic at run
// time. Extend with care if a signed draw is ever needed.
impl_uniform!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Returns the next raw 64-bit sample.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value over `T`'s full domain.
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Draws a uniformly random value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: Uniform>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Modulo bias is negligible for the tiny spans used here.
        T::from_offset(lo + self.next_u64() % span)
    }

    /// Returns `true` with probability `p` (mirrors `rand::Rng::gen_bool`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // Top 53 bits mapped to a unit float, like the real implementation.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// The subset of `rand::SeedableRng` used by this workspace.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn gen_covers_u8_domain_reasonably() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 256];
        for _ in 0..10_000 {
            let v: u8 = rng.gen();
            seen[v as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 250);
    }
}
