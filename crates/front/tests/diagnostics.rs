//! Golden diagnostics tests: exact `line:col: error: message` renderings
//! for representative lexical, syntactic and semantic errors.
//!
//! These pin the user-facing error surface of the frontend — positions are
//! part of the contract (editors and CI logs link through them), so a
//! refactor that shifts a span shows up here as a string diff.

use spark_front::compile;

/// Compiles and returns the rendered diagnostics (must be non-empty).
fn diagnostics(source: &str) -> Vec<String> {
    let diags = compile(source).expect_err("source must be rejected");
    diags.iter().map(|d| d.to_string()).collect()
}

#[test]
fn lexical_error_unknown_character() {
    assert_eq!(
        diagnostics("int f() {\n  int x@;\n  return 0;\n}"),
        // The lexer skips `@` and the parser then trips on the `;` — both
        // carry positions; the lex error comes first.
        vec!["2:8: error: unexpected character `@`".to_string()]
    );
}

#[test]
fn lexical_error_unterminated_comment() {
    let diags = diagnostics("int f() { return 0; }\n/* open");
    assert_eq!(diags[0], "2:1: error: unterminated block comment");
}

#[test]
fn parse_error_missing_semicolon() {
    let diags = diagnostics("int f() {\n  int x;\n  x = 1\n  return x;\n}");
    assert_eq!(diags, vec!["4:3: error: expected `;`, found `return`"]);
}

#[test]
fn parse_error_missing_expression() {
    let diags = diagnostics("int f() {\n  return ;\n}");
    assert_eq!(
        diags,
        vec!["2:10: error: expected an expression, found `;`"]
    );
}

#[test]
fn parse_error_bad_for_step() {
    let diags = diagnostics(
        "int f() {\n  int i;\n  int s;\n  for (i = 0; i < 4; s = s + 1) { s = i; }\n  return s;\n}",
    );
    assert_eq!(
        diags,
        vec!["4:22: error: for-loop step must update the index `i`, found `s`"]
    );
}

#[test]
fn sema_error_unknown_variable() {
    assert_eq!(
        diagnostics("int f() {\n  y = 3;\n  return 0;\n}"),
        vec!["2:3: error: unknown variable `y`"]
    );
}

#[test]
fn sema_error_duplicate_declaration() {
    assert_eq!(
        diagnostics("int f(int a) {\n  u8 a;\n  return a;\n}"),
        vec!["2:6: error: duplicate declaration of `a`"]
    );
}

#[test]
fn sema_error_constant_index_out_of_bounds() {
    assert_eq!(
        diagnostics("u8 f(u8 buf[4]) {\n  return buf[7];\n}"),
        vec!["2:14: error: index 7 out of bounds for array of length 4"]
    );
}

#[test]
fn sema_error_array_used_as_scalar() {
    assert_eq!(
        diagnostics("int f(u8 buf[4]) {\n  return buf;\n}"),
        vec!["2:10: error: array `buf` used as a scalar value (index it or pass it to a call)"]
    );
}

#[test]
fn sema_error_unknown_function_and_arity() {
    assert_eq!(
        diagnostics("int f() {\n  int x;\n  x = g(1);\n  return x;\n}"),
        vec!["3:7: error: unknown function `g`"]
    );
    assert_eq!(
        diagnostics(
            "u8 g(u8 a, u8 b) { return a + b; }\nint f() {\n  int x;\n  x = g(1);\n  return x;\n}"
        ),
        vec!["4:7: error: `g` expects 2 argument(s), found 1"]
    );
}

#[test]
fn sema_error_recursion() {
    let diags = diagnostics("int f(int n) {\n  int r;\n  r = f(n);\n  return r;\n}");
    assert_eq!(
        diags,
        vec!["3:7: error: recursive call cycle involving `f` (calls cannot be inlined)"]
    );
}

#[test]
fn sema_error_slice_out_of_range() {
    assert_eq!(
        diagnostics("bool f(u8 a) {\n  return a[9:9];\n}"),
        vec!["2:10: error: slice bit 9 out of range for a 8-bit value"]
    );
}

#[test]
fn sema_error_return_in_void_function() {
    assert_eq!(
        diagnostics("void f(u8 a) {\n  return a;\n}"),
        vec!["2:3: error: `return` with a value in a void function"]
    );
}

#[test]
fn sema_error_logical_op_needs_booleans() {
    let diags = diagnostics("bool f(u8 a, u8 b) {\n  return a && b;\n}");
    assert_eq!(diags.len(), 2);
    assert_eq!(
        diags[0],
        "2:10: error: `&&` requires boolean operands (compare against 0 first)"
    );
}

#[test]
fn multiple_errors_are_reported_in_source_order() {
    let diags = diagnostics("int f() {\n  a = 1;\n  b = 2;\n  return 0;\n}");
    assert_eq!(
        diags,
        vec![
            "2:3: error: unknown variable `a`",
            "3:3: error: unknown variable `b`",
        ]
    );
}
