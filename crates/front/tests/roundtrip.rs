//! Round-trip property tests over *generated* SPARK-C programs.
//!
//! A grammar-directed generator emits random (but always well-formed,
//! always-terminating, always-in-bounds) source programs. Every generated
//! program must:
//!
//! 1. parse and pass semantic analysis with zero diagnostics,
//! 2. lower to IR that [`spark_ir::verify`] accepts, and
//! 3. execute identically under [`spark_ir::Interpreter`] (on the lowered
//!    IR) and the frontend's direct AST evaluator, on seeded random inputs
//!    — return value, every declared scalar and every array.
//!
//! Together these pin the whole frontend chain: if the lowering and the
//! evaluator ever disagree about where a value is truncated, which branch a
//! condition takes or how a loop steps, it shows up here with the full
//! source in the panic message.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spark_ir::{Env, Interpreter};

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

struct Gen {
    rng: StdRng,
    src: String,
    indent: usize,
    /// Assignable non-bool scalars: (name, width).
    scalars: Vec<(&'static str, u16)>,
    /// Assignable booleans.
    bools: Vec<&'static str>,
    /// Loop indices currently in scope (read-only).
    active_indices: Vec<&'static str>,
    /// Remaining statement budget (caps program size).
    budget: i32,
}

const SCALARS: [(&str, u16); 4] = [("x0", 8), ("x1", 16), ("x2", 32), ("x3", 8)];
const BOOLS: [&str; 2] = [("c0"), ("c1")];
const INDICES: [&str; 2] = ["i0", "i1"];
const DATA_LEN: u64 = 8;

impl Gen {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.src.push_str("  ");
        }
        self.src.push_str(text);
        self.src.push('\n');
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_range(0..items.len())]
    }

    // -- expressions -------------------------------------------------------

    /// A scalar (non-boolean) expression of bounded depth.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_range(0u32..4) == 0 {
            return self.leaf();
        }
        match self.rng.gen_range(0u32..8) {
            0..=3 => {
                let op = *self.pick(&["+", "-", "*", "&", "|", "^"]);
                let lhs = self.expr(depth - 1);
                let rhs = self.expr(depth - 1);
                format!("({lhs} {op} {rhs})")
            }
            4 => {
                let op = *self.pick(&["<<", ">>"]);
                let lhs = self.expr(depth - 1);
                let amount = self.rng.gen_range(0u64..8);
                format!("({lhs} {op} {amount})")
            }
            5 => {
                let cond = self.cond(depth - 1);
                let then_value = self.expr(depth - 1);
                let else_value = self.expr(depth - 1);
                format!("({cond} ? {then_value} : {else_value})")
            }
            6 => {
                // Bit slice of a named scalar (bounds within its width).
                let (name, width) = *self.pick(&SCALARS);
                let lo = self.rng.gen_range(0u16..width);
                let hi = self.rng.gen_range(lo..width);
                format!("{name}[{hi}:{lo}]")
            }
            _ => {
                let arg = self.expr(depth - 1);
                format!("helper({arg})")
            }
        }
    }

    fn leaf(&mut self) -> String {
        match self.rng.gen_range(0u32..4) {
            0 => format!("{}", self.rng.gen_range(0u64..256)),
            1 => {
                let (name, _) = *self.pick(&SCALARS);
                name.to_string()
            }
            2 if !self.active_indices.is_empty() => {
                let index = *self.pick(&self.active_indices.clone());
                format!("data[{index}]")
            }
            _ => format!("data[{}]", self.rng.gen_range(0u64..DATA_LEN)),
        }
    }

    /// A boolean expression (comparison, bool variable, conjunction, not).
    fn cond(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_range(0u32..3) == 0 {
            return if self.rng.gen_bool(0.5) {
                let name = *self.pick(&BOOLS);
                name.to_string()
            } else {
                let op = *self.pick(&["==", "!=", "<", "<=", ">", ">="]);
                let lhs = self.expr(0);
                let rhs = self.expr(0);
                format!("({lhs} {op} {rhs})")
            };
        }
        match self.rng.gen_range(0u32..4) {
            0 => {
                let lhs = self.cond(depth - 1);
                let rhs = self.cond(depth - 1);
                let op = if self.rng.gen_bool(0.5) { "&&" } else { "||" };
                format!("({lhs} {op} {rhs})")
            }
            1 => {
                let inner = self.cond(depth - 1);
                format!("!{inner}")
            }
            _ => {
                let op = *self.pick(&["==", "!=", "<", "<=", ">", ">="]);
                let lhs = self.expr(depth - 1);
                let rhs = self.expr(depth - 1);
                format!("({lhs} {op} {rhs})")
            }
        }
    }

    // -- statements --------------------------------------------------------

    fn stmts(&mut self, count: u32, loop_depth: u32) {
        for _ in 0..count {
            if self.budget <= 0 {
                return;
            }
            self.stmt(loop_depth);
        }
    }

    fn stmt(&mut self, loop_depth: u32) {
        self.budget -= 1;
        match self.rng.gen_range(0u32..10) {
            0..=3 => {
                let (name, _) = *self.pick(&SCALARS);
                let value = self.expr(2);
                self.line(&format!("{name} = {value};"));
            }
            4 => {
                let name = *self.pick(&BOOLS);
                let value = self.cond(1);
                self.line(&format!("{name} = {value};"));
            }
            5 => {
                let index = if !self.active_indices.is_empty() && self.rng.gen_bool(0.5) {
                    self.pick(&self.active_indices.clone()).to_string()
                } else {
                    format!("{}", self.rng.gen_range(0u64..DATA_LEN))
                };
                let value = self.expr(2);
                self.line(&format!("res[{index}] = {value};"));
            }
            6..=7 => {
                let cond = self.cond(2);
                self.line(&format!("if ({cond}) {{"));
                self.indent += 1;
                let then_count = self.rng.gen_range(1u32..3);
                self.stmts(then_count, loop_depth);
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    let else_count = self.rng.gen_range(1u32..3);
                    self.stmts(else_count, loop_depth);
                    self.indent -= 1;
                }
                self.line("}");
            }
            _ => {
                if (loop_depth as usize) < INDICES.len() {
                    let index = INDICES[loop_depth as usize];
                    let start = self.rng.gen_range(0u64..3);
                    let end = self.rng.gen_range(start..DATA_LEN);
                    let cmp = if self.rng.gen_bool(0.5) || end + 1 == 0 {
                        format!("<= {end}")
                    } else {
                        format!("< {}", end + 1)
                    };
                    self.line(&format!(
                        "for ({index} = {start}; {index} {cmp}; {index} = {index} + 1) {{"
                    ));
                    self.indent += 1;
                    self.active_indices.push(index);
                    let body_count = self.rng.gen_range(1u32..3);
                    self.stmts(body_count, loop_depth + 1);
                    self.active_indices.pop();
                    self.indent -= 1;
                    self.line("}");
                } else {
                    let (name, _) = *self.pick(&SCALARS);
                    let value = self.expr(1);
                    self.line(&format!("{name} = {value};"));
                }
            }
        }
    }
}

/// Generates one well-formed SPARK-C program from a seed.
fn gen_program(seed: u64) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        src: String::new(),
        indent: 0,
        scalars: SCALARS.to_vec(),
        bools: BOOLS.to_vec(),
        active_indices: Vec::new(),
        budget: 14,
    };
    g.line("u16 kernel(u8 a, u16 b, u8 data[8], out u8 res[8]) {");
    g.indent += 1;
    g.line("u8 x0;");
    g.line("u16 x1;");
    g.line("int x2;");
    g.line("u8 x3;");
    g.line("bool c0;");
    g.line("bool c1;");
    g.line("u16 i0;");
    g.line("u16 i1;");
    g.line("x0 = a;");
    g.line("x1 = b;");
    let count = g.rng.gen_range(4u32..8);
    g.stmts(count, 0);
    let ret = g.expr(2);
    g.line(&format!("return {ret};"));
    g.indent -= 1;
    g.line("}");
    g.line("");
    g.line("u8 helper(u8 v) {");
    g.line("  u8 w;");
    g.line("  w = (v ^ 23) + 1;");
    g.line("  return w;");
    g.line("}");
    // Silence "field never read" for the statically-known tables.
    let _ = (&g.scalars, &g.bools);
    g.src
}

fn random_env(seed: u64) -> Env {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    Env::new()
        .with_scalar("a", rng.gen::<u64>() & 0xFF)
        .with_scalar("b", rng.gen::<u64>() & 0xFFFF)
        .with_array(
            "data",
            (0..DATA_LEN).map(|_| rng.gen::<u64>() & 0xFF).collect(),
        )
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Generated programs compile cleanly, lower to verifiable IR, and the
    /// IR interpreter agrees with the direct AST evaluator everywhere.
    #[test]
    fn generated_programs_parse_lower_verify_and_agree(seed in 0u64..1_000_000_000) {
        let source = gen_program(seed);
        let compiled = spark_front::compile(&source).unwrap_or_else(|diags| {
            panic!(
                "seed {seed}: generated program rejected:\n{}\n--- source ---\n{source}",
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
        // compile() already ran spark_ir::verify on every lowered function.
        let interpreter = Interpreter::new(&compiled.program);
        for round in 0..3u64 {
            let env = random_env(seed.wrapping_mul(31).wrapping_add(round));
            let interp = interpreter
                .run("kernel", &env)
                .unwrap_or_else(|e| panic!("seed {seed}: interpreter failed: {e}\n{source}"));
            let direct = compiled
                .evaluate("kernel", &env)
                .unwrap_or_else(|e| panic!("seed {seed}: AST evaluator failed: {e}\n{source}"));
            prop_assert_eq!(
                direct.return_value,
                interp.return_value,
                "seed {} round {}: return value diverged\n{}",
                seed,
                round,
                source
            );
            for (name, value) in &direct.scalars {
                prop_assert_eq!(
                    Some(*value),
                    interp.scalar(name),
                    "seed {} round {}: scalar `{}` diverged\n{}",
                    seed,
                    round,
                    name,
                    source
                );
            }
            for (name, contents) in &direct.arrays {
                prop_assert_eq!(
                    Some(contents.as_slice()),
                    interp.array(name),
                    "seed {} round {}: array `{}` diverged\n{}",
                    seed,
                    round,
                    name,
                    source
                );
            }
        }
    }
}
