//! Recursive-descent parser for SPARK-C.
//!
//! The grammar is the C subset documented in `docs/LANGUAGE.md`: function
//! definitions over scalar/array parameters, declarations, assignments,
//! `if`/`else`, `while` (with an optional `bound(n)` trip-count annotation)
//! and C-style `for` loops, plus the expression operators the IR's
//! [`OpKind`](spark_ir::OpKind) set supports. On a parse error inside a
//! function body the parser records a diagnostic and synchronizes to the
//! next `;` or `}`, so one mistake yields one error, not a cascade.

use crate::ast::{
    BinOp, Decl, Expr, ExprId, ExprKind, ForCmp, FunctionAst, ProgramAst, Stmt, StmtKind, UnOp,
};
use crate::diag::{DiagSink, Span};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use spark_ir::Type;

/// Parses a whole source file into an AST.
///
/// # Errors
/// Returns every lexical and syntactic diagnostic found (the AST is not
/// returned when any error occurred).
pub fn parse(source: &str) -> Result<ProgramAst, Vec<crate::diag::Diagnostic>> {
    let mut sink = DiagSink::new(source);
    let tokens = lex(source, &mut sink);
    let mut parser = Parser {
        tokens,
        pos: 0,
        sink: &mut sink,
        next_expr_id: 0,
    };
    let program = parser.program();
    if sink.is_clean() {
        Ok(program)
    } else {
        Err(sink.into_diagnostics())
    }
}

struct Parser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    sink: &'d mut DiagSink,
    next_expr_id: ExprId,
}

/// Internal marker: the current construct cannot be parsed; a diagnostic has
/// already been recorded and the caller should synchronize.
struct Abort;

type PResult<T> = Result<T, Abort>;

impl Parser<'_> {
    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let found = self.peek().clone();
            self.sink.error(
                found.span,
                format!("expected {}, found {}", kind.describe(), found.kind),
            );
            Err(Abort)
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let token = self.bump();
                Ok((name, token.span))
            }
            other => {
                let span = self.peek().span;
                self.sink
                    .error(span, format!("expected identifier, found {other}"));
                Err(Abort)
            }
        }
    }

    fn expect_int(&mut self) -> PResult<(u64, Span)> {
        match *self.peek_kind() {
            TokenKind::Int(value) => {
                let token = self.bump();
                Ok((value, token.span))
            }
            ref other => {
                let span = self.peek().span;
                self.sink
                    .error(span, format!("expected integer literal, found {other}"));
                Err(Abort)
            }
        }
    }

    fn expr_id(&mut self) -> ExprId {
        let id = self.next_expr_id;
        self.next_expr_id += 1;
        id
    }

    fn make(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.expr_id(),
            span,
            kind,
        }
    }

    /// Skips ahead to just past the next top-level `;` (or to the enclosing
    /// `}`/end of input), recovering from a statement-level parse error.
    /// Brace-aware: a malformed compound statement is skipped whole,
    /// including its `{ ... }` body, so one header error does not cascade.
    fn synchronize(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                    // A fully skipped `{ ... }` ends the malformed statement.
                    if depth == 0 {
                        return;
                    }
                }
                TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    /// Parses a type name: `int`, `bool`, or `u<width>` with width 1..=64.
    fn type_name(&mut self) -> PResult<Type> {
        match self.peek_kind().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Bits(32))
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(Type::Bool)
            }
            TokenKind::Ident(name) => {
                if let Some(width) = parse_width_type(&name) {
                    self.bump();
                    Ok(Type::Bits(width))
                } else {
                    let span = self.peek().span;
                    self.sink.error(
                        span,
                        format!("expected a type (`int`, `bool`, `u1`..`u64`), found `{name}`"),
                    );
                    Err(Abort)
                }
            }
            other => {
                let span = self.peek().span;
                self.sink
                    .error(span, format!("expected a type, found {other}"));
                Err(Abort)
            }
        }
    }

    /// True when the current token begins a type name.
    fn at_type(&self) -> bool {
        match self.peek_kind() {
            TokenKind::KwInt | TokenKind::KwBool | TokenKind::KwOut => true,
            TokenKind::Ident(name) => parse_width_type(name).is_some(),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Program / functions
    // ------------------------------------------------------------------

    fn program(&mut self) -> ProgramAst {
        let mut functions = Vec::new();
        while !self.at(&TokenKind::Eof) {
            match self.function() {
                Ok(function) => functions.push(function),
                Err(Abort) => {
                    // Skip to the next plausible function start: a type/void
                    // token following a `}`.
                    loop {
                        match self.peek_kind() {
                            TokenKind::Eof => break,
                            TokenKind::RBrace => {
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
            }
        }
        ProgramAst {
            functions,
            expr_count: self.next_expr_id,
        }
    }

    fn function(&mut self) -> PResult<FunctionAst> {
        let ret = if self.eat(&TokenKind::KwVoid) {
            None
        } else {
            Some(self.type_name()?)
        };
        let (name, name_span) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let body = self.block_body();
        self.expect(TokenKind::RBrace)?;
        Ok(FunctionAst {
            name,
            name_span,
            ret,
            params,
            body,
        })
    }

    fn param(&mut self) -> PResult<Decl> {
        let out = self.eat(&TokenKind::KwOut);
        let ty = self.type_name()?;
        let (name, name_span) = self.expect_ident()?;
        let array_len = self.array_suffix()?;
        Ok(Decl {
            name,
            name_span,
            ty,
            array_len,
            out,
            init: None,
        })
    }

    /// Parses an optional `[LEN]` array suffix.
    fn array_suffix(&mut self) -> PResult<Option<u32>> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(None);
        }
        let (len, span) = self.expect_int()?;
        self.expect(TokenKind::RBracket)?;
        if len == 0 || len > u32::MAX as u64 {
            self.sink.error(
                span,
                format!("array length {len} out of range (1..=2^32-1)"),
            );
            return Err(Abort);
        }
        Ok(Some(len as u32))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parses statements until the closing `}` of the current block,
    /// synchronizing on statement-level errors.
    fn block_body(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.statement() {
                Ok(stmt) => stmts.push(stmt),
                Err(Abort) => self.synchronize(),
            }
        }
        stmts
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(TokenKind::LBrace)?;
        let stmts = self.block_body();
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn statement(&mut self) -> PResult<Stmt> {
        let start = self.peek().span;
        if self.at_type() {
            return self.declaration(start);
        }
        match self.peek_kind().clone() {
            TokenKind::KwIf => self.if_statement(start),
            TokenKind::KwWhile => self.while_statement(start),
            TokenKind::KwFor => self.for_statement(start),
            TokenKind::KwReturn => {
                self.bump();
                let value = self.expression()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    span: start.to(end),
                    kind: StmtKind::Return { value },
                })
            }
            TokenKind::Ident(_) => self.assignment_or_call(start),
            other => {
                self.sink
                    .error(start, format!("expected a statement, found {other}"));
                Err(Abort)
            }
        }
    }

    fn declaration(&mut self, start: Span) -> PResult<Stmt> {
        let out = self.eat(&TokenKind::KwOut);
        let ty = self.type_name()?;
        let (name, name_span) = self.expect_ident()?;
        let array_len = self.array_suffix()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        if array_len.is_some() && init.is_some() {
            self.sink
                .error(name_span, "array declarations cannot have initializers");
            return Err(Abort);
        }
        Ok(Stmt {
            span: start.to(end),
            kind: StmtKind::Decl(Decl {
                name,
                name_span,
                ty,
                array_len,
                out,
                init,
            }),
        })
    }

    fn if_statement(&mut self, start: Span) -> PResult<Stmt> {
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::KwElse) {
            if self.at(&TokenKind::KwIf) {
                let nested_start = self.peek().span;
                vec![self.if_statement(nested_start)?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt {
            span: start,
            kind: StmtKind::If {
                cond,
                then_body,
                else_body,
            },
        })
    }

    fn while_statement(&mut self, start: Span) -> PResult<Stmt> {
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen)?;
        let bound = if self.eat(&TokenKind::KwBound) {
            self.expect(TokenKind::LParen)?;
            let (value, _) = self.expect_int()?;
            self.expect(TokenKind::RParen)?;
            Some(value)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Stmt {
            span: start,
            kind: StmtKind::While { cond, bound, body },
        })
    }

    /// `for (i = START; i <= END; STEP) { ... }` where `STEP` is
    /// `i = i + K`, `i = i - K` (rejected later), or `i++`.
    fn for_statement(&mut self, start: Span) -> PResult<Stmt> {
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let (index, index_span) = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let (start_value, _) = self.expect_int()?;
        self.expect(TokenKind::Semi)?;

        let (cond_index, cond_index_span) = self.expect_ident()?;
        if cond_index != index {
            self.sink.error(
                cond_index_span,
                format!("for-loop condition must test the index `{index}`, found `{cond_index}`"),
            );
            return Err(Abort);
        }
        let cmp = match self.peek_kind() {
            TokenKind::Le => {
                self.bump();
                ForCmp::Le
            }
            TokenKind::Lt => {
                self.bump();
                ForCmp::Lt
            }
            other => {
                let span = self.peek().span;
                self.sink.error(
                    span,
                    format!("for-loop condition must use `<` or `<=`, found {other}"),
                );
                return Err(Abort);
            }
        };
        let end = self.expression()?;
        self.expect(TokenKind::Semi)?;

        let step = self.for_step(&index)?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt {
            span: start,
            kind: StmtKind::For {
                index,
                index_span,
                start: start_value,
                cmp,
                end: Box::new(end),
                step,
                body,
            },
        })
    }

    fn for_step(&mut self, index: &str) -> PResult<u64> {
        let (step_index, step_span) = self.expect_ident()?;
        if step_index != index {
            self.sink.error(
                step_span,
                format!("for-loop step must update the index `{index}`, found `{step_index}`"),
            );
            return Err(Abort);
        }
        if self.eat(&TokenKind::PlusPlus) {
            return Ok(1);
        }
        self.expect(TokenKind::Assign)?;
        let (rhs_index, rhs_span) = self.expect_ident()?;
        if rhs_index != index {
            self.sink.error(
                rhs_span,
                format!("for-loop step must have the form `{index} = {index} + K`"),
            );
            return Err(Abort);
        }
        self.expect(TokenKind::Plus)?;
        let (step, step_value_span) = self.expect_int()?;
        if step == 0 {
            self.sink
                .error(step_value_span, "for-loop step must be non-zero");
            return Err(Abort);
        }
        Ok(step)
    }

    fn assignment_or_call(&mut self, start: Span) -> PResult<Stmt> {
        // Call statement: `name(...)` followed by `;`.
        if matches!(self.peek2_kind(), TokenKind::LParen) {
            let call = self.expression()?;
            let end = self.expect(TokenKind::Semi)?.span;
            if !matches!(call.kind, ExprKind::Call { .. }) {
                self.sink
                    .error(call.span, "only calls may be used as expression statements");
                return Err(Abort);
            }
            return Ok(Stmt {
                span: start.to(end),
                kind: StmtKind::CallStmt { call },
            });
        }

        let (name, name_span) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expression()?;
            self.expect(TokenKind::RBracket)?;
            self.expect(TokenKind::Assign)?;
            let value = self.expression()?;
            let end = self.expect(TokenKind::Semi)?.span;
            return Ok(Stmt {
                span: start.to(end),
                kind: StmtKind::Store {
                    array: name,
                    array_span: name_span,
                    index,
                    value,
                },
            });
        }
        self.expect(TokenKind::Assign)?;
        let value = self.expression()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt {
            span: start.to(end),
            kind: StmtKind::Assign {
                target: name,
                target_span: name_span,
                value,
            },
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing, lowest binds last)
    // ------------------------------------------------------------------

    fn expression(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.logic_or()?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then_value = self.expression()?;
        self.expect(TokenKind::Colon)?;
        let else_value = self.expression()?;
        let span = cond.span.to(else_value.span);
        Ok(self.make(
            span,
            ExprKind::Ternary {
                cond: Box::new(cond),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
            },
        ))
    }

    fn binary_tier(
        &mut self,
        next: fn(&mut Self) -> PResult<Expr>,
        table: &[(TokenKind, BinOp)],
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (token, op) in table {
                if self.at(token) {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.to(rhs.span);
                    lhs = self.make(
                        span,
                        ExprKind::Binary {
                            op: *op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::logic_and, &[(TokenKind::OrOr, BinOp::LogicOr)])
    }

    fn logic_and(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::bit_or, &[(TokenKind::AndAnd, BinOp::LogicAnd)])
    }

    fn bit_or(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::bit_xor, &[(TokenKind::Pipe, BinOp::Or)])
    }

    fn bit_xor(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::bit_and, &[(TokenKind::Caret, BinOp::Xor)])
    }

    fn bit_and(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::equality, &[(TokenKind::Amp, BinOp::And)])
    }

    fn equality(&mut self) -> PResult<Expr> {
        self.binary_tier(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> PResult<Expr> {
        self.binary_tier(
            Self::shift,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> PResult<Expr> {
        self.binary_tier(
            Self::additive,
            &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> PResult<Expr> {
        self.binary_tier(
            Self::multiplicative,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        self.binary_tier(Self::unary, &[(TokenKind::Star, BinOp::Mul)])
    }

    fn unary(&mut self) -> PResult<Expr> {
        let op = match self.peek_kind() {
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let operand = self.unary()?;
            let span = start.to(operand.span);
            return Ok(self.make(
                span,
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut expr = self.primary()?;
        while self.at(&TokenKind::LBracket) {
            self.bump();
            // Disambiguate `a[i]` (array read) from `x[hi:lo]` (bit slice):
            // a slice has the form `INT : INT`.
            if let (TokenKind::Int(hi), TokenKind::Colon) = (self.peek_kind(), self.peek2_kind()) {
                let hi = *hi;
                let hi_span = self.bump().span;
                self.bump(); // colon
                let (lo, lo_span) = self.expect_int()?;
                let end = self.expect(TokenKind::RBracket)?.span;
                if hi > u16::MAX as u64 || lo > u16::MAX as u64 {
                    self.sink
                        .error(hi_span.to(lo_span), "slice bounds out of range");
                    return Err(Abort);
                }
                let span = expr.span.to(end);
                expr = self.make(
                    span,
                    ExprKind::Slice {
                        base: Box::new(expr),
                        hi: hi as u16,
                        lo: lo as u16,
                    },
                );
            } else {
                let index = self.expression()?;
                let end = self.expect(TokenKind::RBracket)?.span;
                let (array, array_span) = match &expr.kind {
                    ExprKind::Var(name) => (name.clone(), expr.span),
                    _ => {
                        self.sink
                            .error(expr.span, "only named arrays can be indexed");
                        return Err(Abort);
                    }
                };
                let span = expr.span.to(end);
                expr = self.make(
                    span,
                    ExprKind::Index {
                        array,
                        array_span,
                        index: Box::new(index),
                    },
                );
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Int(value) => {
                self.bump();
                if value > u32::MAX as u64 {
                    self.sink.error(
                        token.span,
                        format!("integer literal {value} exceeds the 32-bit literal range"),
                    );
                    return Err(Abort);
                }
                Ok(self.make(token.span, ExprKind::Int(value)))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(self.make(token.span, ExprKind::Bool(true)))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(self.make(token.span, ExprKind::Bool(false)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    let span = token.span.to(end);
                    return Ok(self.make(
                        span,
                        ExprKind::Call {
                            callee: name,
                            callee_span: token.span,
                            args,
                        },
                    ));
                }
                Ok(self.make(token.span, ExprKind::Var(name)))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => {
                self.sink
                    .error(token.span, format!("expected an expression, found {other}"));
                Err(Abort)
            }
        }
    }
}

/// Parses `u<width>` type names (`u1`..`u64`).
fn parse_width_type(name: &str) -> Option<u16> {
    let digits = name.strip_prefix('u')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let width: u16 = digits.parse().ok()?;
    (1..=64).contains(&width).then_some(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(source: &str) -> ProgramAst {
        parse(source).unwrap_or_else(|diags| {
            panic!(
                "expected clean parse, got: {}",
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        })
    }

    #[test]
    fn parses_function_with_params_and_body() {
        let program = parse_ok(
            "u8 max(u8 a, u8 b) {\n  u8 m;\n  if (a > b) { m = a; } else { m = b; }\n  return m;\n}",
        );
        assert_eq!(program.functions.len(), 1);
        let f = &program.functions[0];
        assert_eq!(f.name, "max");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 3);
        assert_eq!(f.ret, Some(Type::Bits(8)));
    }

    #[test]
    fn parses_out_array_param_and_for_loop() {
        let program = parse_ok(
            "void mark(u8 buf[12], out bool m[9]) {\n  u16 i;\n  for (i = 1; i <= 8; i = i + 1) {\n    m[i] = true;\n  }\n}",
        );
        let f = &program.functions[0];
        assert!(f.params[1].out);
        assert_eq!(f.params[1].array_len, Some(9));
        match &f.body[1].kind {
            StmtKind::For {
                start, cmp, step, ..
            } => {
                assert_eq!(*start, 1);
                assert_eq!(*cmp, ForCmp::Le);
                assert_eq!(*step, 1);
            }
            other => panic!("expected for loop, got {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let program = parse_ok("int f(int a) { int x; x = a + 2 * 3; return x; }");
        let f = &program.functions[0];
        let StmtKind::Assign { value, .. } = &f.body[1].kind else {
            panic!()
        };
        assert_eq!(value.to_string(), "(a + (2 * 3))");
    }

    #[test]
    fn slice_and_index_disambiguate() {
        let program = parse_ok("void f(u8 b[4]) { u8 x; bool c; x = b[2]; c = x[7:7]; }");
        let f = &program.functions[0];
        let StmtKind::Assign { value, .. } = &f.body[2].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Index { .. }));
        let StmtKind::Assign { value, .. } = &f.body[3].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Slice { hi: 7, lo: 7, .. }));
    }

    #[test]
    fn while_bound_annotation() {
        let program = parse_ok("void f() { u8 x; while (true) bound(16) { x = x + 1; } }");
        let StmtKind::While { bound, .. } = &program.functions[0].body[1].kind else {
            panic!()
        };
        assert_eq!(*bound, Some(16));
    }

    #[test]
    fn missing_semicolon_is_located() {
        let err = parse("int f() {\n  int x;\n  x = 1\n}").unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].to_string().starts_with("4:1: error: expected `;`"));
    }

    #[test]
    fn error_recovery_reports_multiple_statements() {
        let err = parse("int f() {\n  x = ;\n  y = ;\n  return 0;\n}").unwrap_err();
        assert_eq!(err.len(), 2);
    }

    #[test]
    fn ternary_parses() {
        let program = parse_ok("int f(int a, int b) { int m; m = a > b ? a : b; return m; }");
        let StmtKind::Assign { value, .. } = &program.functions[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Ternary { .. }));
    }
}
