//! Lowering from the SPARK-C AST to the behavioral IR's hierarchical task
//! graph, through the same [`FunctionBuilder`] API hand-written workloads
//! use.
//!
//! The lowering is *destination-hinted*: `x = a + b;` becomes a single
//! `add` operation writing `x` directly, and only proper subexpressions
//! materialize into fresh `t_N` temporaries (in left-to-right order). This
//! matters beyond aesthetics — a source program transliterated from a
//! builder-constructed workload lowers to a structurally identical
//! [`Function`](spark_ir::Function) (same arena ids, same names), which the
//! corpus tests exploit to pin the frontend against the builder twins
//! fingerprint-for-fingerprint.

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, ForCmp, FunctionAst, ProgramAst, Stmt, StmtKind, UnOp,
};
use crate::sema::Analysis;
use spark_ir::{FunctionBuilder, OpKind, Program, Type, Value, VarId};

/// Lowers an analyzed program to behavioral IR.
///
/// Must only be called with the [`Analysis`] produced for this exact AST;
/// the lowering assumes all semantic checks passed.
pub fn lower(program: &ProgramAst, analysis: &Analysis) -> Program {
    let mut out = Program::new();
    for function in &program.functions {
        out.add_function(lower_function(function, analysis));
    }
    out
}

fn lower_function(function: &FunctionAst, analysis: &Analysis) -> spark_ir::Function {
    let mut lowerer = Lowerer {
        builder: FunctionBuilder::new(&function.name),
        analysis,
    };
    for param in &function.params {
        lowerer.declare(param, true);
    }
    if let Some(ret) = function.ret {
        lowerer.builder.returns(ret);
    }
    lowerer.stmts(&function.body);
    lowerer.builder.finish()
}

struct Lowerer<'a> {
    builder: FunctionBuilder,
    analysis: &'a Analysis,
}

impl Lowerer<'_> {
    /// Resolves a (sema-checked) name to its variable id.
    fn var(&mut self, name: &str) -> VarId {
        self.builder
            .function_mut()
            .var_by_name(name)
            .expect("sema resolved every name")
    }

    fn declare(&mut self, decl: &Decl, is_param: bool) {
        match (decl.array_len, decl.out, is_param) {
            // `out` parameters and locals are primary outputs, not inputs.
            (Some(len), true, _) => {
                self.builder.output_array(&decl.name, decl.ty, len);
            }
            (Some(len), false, true) => {
                self.builder.param_array(&decl.name, decl.ty, len);
            }
            (Some(len), false, false) => {
                self.builder.array(&decl.name, decl.ty, len);
            }
            (None, true, _) => {
                self.builder.output(&decl.name, decl.ty);
            }
            (None, false, true) => {
                self.builder.param(&decl.name, decl.ty);
            }
            (None, false, false) => {
                self.builder.var(&decl.name, decl.ty);
            }
        }
        if let Some(init) = &decl.init {
            let dest = self.var(&decl.name);
            self.assign_into(dest, init);
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(decl) => self.declare(decl, false),
            StmtKind::Assign { target, value, .. } => {
                let dest = self.var(target);
                self.assign_into(dest, value);
            }
            StmtKind::Store {
                array,
                index,
                value,
                ..
            } => {
                let array = self.var(array);
                let index = self.value_of(index);
                let value = self.value_of(value);
                self.builder.array_write(array, index, value);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.value_of(cond);
                self.builder.if_begin(cond);
                self.stmts(then_body);
                if !else_body.is_empty() {
                    self.builder.else_begin();
                    self.stmts(else_body);
                }
                self.builder.if_end();
            }
            StmtKind::While { cond, bound, body } => {
                // The IR's while condition is a single `Value` re-read every
                // iteration; non-trivial conditions are materialized into a
                // temporary that the loop body recomputes at its end.
                match &cond.kind {
                    ExprKind::Bool(_) | ExprKind::Int(_) | ExprKind::Var(_) => {
                        let cond = self.value_of(cond);
                        self.builder.while_begin(cond, *bound);
                        self.stmts(body);
                        self.builder.loop_end();
                    }
                    _ => {
                        let ty = self.analysis.type_of(cond);
                        let cond_var = self.temp_of(cond, ty);
                        self.builder.while_begin(Value::Var(cond_var), *bound);
                        self.stmts(body);
                        self.assign_into(cond_var, cond);
                        self.builder.loop_end();
                    }
                }
            }
            StmtKind::For {
                index,
                start,
                cmp,
                end,
                step,
                body,
                ..
            } => {
                let index = self.var(index);
                // `i < LIT` lowers to the IR's inclusive bound `LIT - 1`
                // (sema guarantees the literal form and LIT >= 1).
                let end = match (cmp, &end.kind) {
                    (ForCmp::Lt, ExprKind::Int(value)) => Value::word(value - 1),
                    _ => self.value_of(end),
                };
                self.builder.for_begin(index, *start, end, *step as i64);
                self.stmts(body);
                self.builder.loop_end();
            }
            StmtKind::Return { value } => {
                let value = self.value_of(value);
                self.builder.ret(value);
            }
            StmtKind::CallStmt { call } => {
                let ExprKind::Call { callee, args, .. } = &call.kind else {
                    unreachable!("parser only builds CallStmt from calls");
                };
                let args = self.call_args(args);
                self.builder.call(None, callee, args);
            }
        }
    }

    /// Lowers `dest = expr` as one operation writing `dest` directly.
    fn assign_into(&mut self, dest: VarId, expr: &Expr) {
        match &expr.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {
                let value = self.value_of(expr);
                self.builder.copy(dest, value);
            }
            ExprKind::Unary { op, operand } => {
                let operand = self.value_of(operand);
                let kind = match op {
                    UnOp::Not | UnOp::BitNot => OpKind::Not,
                };
                self.builder.assign(kind, dest, vec![operand]);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs = self.value_of(lhs);
                let rhs = self.value_of(rhs);
                self.builder.assign(bin_op_kind(*op), dest, vec![lhs, rhs]);
            }
            ExprKind::Ternary {
                cond,
                then_value,
                else_value,
            } => {
                let cond = self.value_of(cond);
                let then_value = self.value_of(then_value);
                let else_value = self.value_of(else_value);
                self.builder
                    .assign(OpKind::Select, dest, vec![cond, then_value, else_value]);
            }
            ExprKind::Index { array, index, .. } => {
                let array = self.var(array);
                let index = self.value_of(index);
                self.builder.array_read(dest, array, index);
            }
            ExprKind::Slice { base, hi, lo } => {
                let base = self.value_of(base);
                self.builder
                    .assign(OpKind::Slice { hi: *hi, lo: *lo }, dest, vec![base]);
            }
            ExprKind::Call { callee, args, .. } => {
                let args = self.call_args(args);
                self.builder.call(Some(dest), callee, args);
            }
        }
    }

    /// Lowers an expression to an operand [`Value`], materializing compound
    /// expressions into fresh temporaries.
    fn value_of(&mut self, expr: &Expr) -> Value {
        match &expr.kind {
            ExprKind::Int(value) => Value::word(*value),
            ExprKind::Bool(value) => Value::bool(*value),
            ExprKind::Var(name) => Value::Var(self.var(name)),
            _ => {
                let ty = self.analysis.type_of(expr);
                Value::Var(self.temp_of(expr, ty))
            }
        }
    }

    /// Materializes a compound expression into a fresh temporary of type
    /// `ty` and returns the temporary.
    fn temp_of(&mut self, expr: &Expr, ty: Type) -> VarId {
        let temp = self.builder.function_mut().fresh_temp("t", ty);
        self.assign_into(temp, expr);
        temp
    }

    /// Lowers call arguments; array arguments stay bare variable references.
    fn call_args(&mut self, args: &[Expr]) -> Vec<Value> {
        args.iter().map(|arg| self.value_of(arg)).collect()
    }
}

fn bin_op_kind(op: BinOp) -> OpKind {
    match op {
        BinOp::Add => OpKind::Add,
        BinOp::Sub => OpKind::Sub,
        BinOp::Mul => OpKind::Mul,
        BinOp::And | BinOp::LogicAnd => OpKind::And,
        BinOp::Or | BinOp::LogicOr => OpKind::Or,
        BinOp::Xor => OpKind::Xor,
        BinOp::Shl => OpKind::Shl,
        BinOp::Shr => OpKind::Shr,
        BinOp::Eq => OpKind::Eq,
        BinOp::Ne => OpKind::Ne,
        BinOp::Lt => OpKind::Lt,
        BinOp::Le => OpKind::Le,
        BinOp::Gt => OpKind::Gt,
        BinOp::Ge => OpKind::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze_with_source;
    use spark_ir::{verify, Env, Interpreter};

    fn lower_src(source: &str) -> Program {
        let ast = parse(source).expect("parses");
        let analysis = analyze_with_source(&ast, source).expect("sema clean");
        let program = lower(&ast, &analysis);
        for function in &program.functions {
            verify(function).expect("lowered IR verifies");
        }
        program
    }

    #[test]
    fn lowers_if_else_to_htg() {
        let program = lower_src(
            "u8 max(u8 a, u8 b) {\n  u8 m;\n  if (a > b) { m = a; } else { m = b; }\n  return m;\n}",
        );
        let f = program.function("max").unwrap();
        assert_eq!(f.if_count(), 1);
        // gt-compare temp, two copies, return.
        assert_eq!(f.live_op_count(), 4);
        let out = Interpreter::new(&program)
            .run("max", &Env::new().with_scalar("a", 9).with_scalar("b", 4))
            .unwrap();
        assert_eq!(out.return_value, Some(9));
    }

    #[test]
    fn direct_assignment_avoids_temporaries() {
        let program = lower_src("u8 f(u8 a, u8 b) {\n  u8 x;\n  x = a + b;\n  return x;\n}");
        let f = program.function("f").unwrap();
        // One add (straight into x) and the return: no copy, no temp.
        assert_eq!(f.live_op_count(), 2);
        assert_eq!(f.vars.len(), 3);
    }

    #[test]
    fn nested_expression_materializes_left_to_right() {
        let program = lower_src("u8 f(u8 a) {\n  u8 x;\n  x = (a & 3) + 1;\n  return x;\n}");
        let f = program.function("f").unwrap();
        let ops = f.live_ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(f.ops[ops[0]].kind, OpKind::And);
        assert_eq!(f.ops[ops[1]].kind, OpKind::Add);
        // The temp carries the operand's width, not the literal's.
        let temp = f.ops[ops[0]].dest.unwrap();
        assert_eq!(f.vars[temp].ty, Type::Bits(8));
        assert_eq!(f.vars[temp].name, "t_0");
    }

    #[test]
    fn for_loop_with_lt_bound_lowers_to_inclusive_end() {
        let program = lower_src(
            "int f() {\n  int i;\n  int acc;\n  acc = 0;\n  for (i = 0; i < 4; i = i + 1) { acc = acc + i; }\n  return acc;\n}",
        );
        let out = Interpreter::new(&program).run("f", &Env::new()).unwrap();
        assert_eq!(out.return_value, Some(6)); // 0 + 1 + 2 + 3
    }

    #[test]
    fn while_with_computed_condition_recomputes_in_body() {
        let program = lower_src(
            "int f() {\n  int x;\n  x = 0;\n  while (x < 5) {\n    x = x + 1;\n  }\n  return x;\n}",
        );
        let out = Interpreter::new(&program).run("f", &Env::new()).unwrap();
        assert_eq!(out.return_value, Some(5));
    }

    #[test]
    fn out_params_become_primary_outputs() {
        let program = lower_src("void f(u8 a, out bool m[4]) {\n  m[1] = true;\n}");
        let f = program.function("f").unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.outputs().len(), 1);
        let out = Interpreter::new(&program)
            .run("f", &Env::new().with_scalar("a", 0))
            .unwrap();
        assert_eq!(out.array("m"), Some(&[0, 1, 0, 0][..]));
    }

    #[test]
    fn calls_lower_with_array_and_scalar_args() {
        let program = lower_src(
            "u8 get(u8 b[4], u16 i) { return b[i]; }\nu8 f(u8 b[4]) {\n  u8 x;\n  x = get(b, 2);\n  return x;\n}",
        );
        let out = Interpreter::new(&program)
            .run("f", &Env::new().with_array("b", vec![5, 6, 7, 8]))
            .unwrap();
        assert_eq!(out.return_value, Some(7));
    }

    #[test]
    fn ternary_lowers_to_select() {
        let program =
            lower_src("u8 f(u8 a, u8 b) {\n  u8 m;\n  m = a > b ? a : b;\n  return m;\n}");
        let out = Interpreter::new(&program)
            .run("f", &Env::new().with_scalar("a", 3).with_scalar("b", 200))
            .unwrap();
        assert_eq!(out.return_value, Some(200));
    }
}
