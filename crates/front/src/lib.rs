//! # spark-front — a SPARK-C textual frontend for the Spark HLS pipeline
//!
//! The paper's flow starts from behavioral ANSI-C; this crate provides the
//! corresponding textual entry point for the reproduction. It implements a
//! small, dependency-free compiler frontend for **SPARK-C** — the C subset
//! documented in `docs/LANGUAGE.md`: `int`/`bool`/`u<N>` scalars, fixed-size
//! arrays, functions with parameters and returns, `if`/`else`, `while`
//! (with a `bound(n)` trip-count annotation) and `for` loops, and the
//! arithmetic/logical/comparison operators of the IR's
//! [`OpKind`](spark_ir::OpKind) set.
//!
//! The stages are the classic ones, each a module:
//!
//! * a hand-written tokenizer with spans;
//! * [`parser`]: recursive descent to a span-carrying [`ast`];
//! * [`sema`]: scopes, kinds, call signatures, constant bounds, recursion —
//!   with source-located [`Diagnostic`] errors — plus per-expression type
//!   inference;
//! * [`lower`]: destination-hinted lowering onto
//!   [`spark_ir::FunctionBuilder`], producing HTG programs that
//!   [`spark_ir::verify`] accepts;
//! * [`eval`]: a direct AST evaluator, the frontend's own golden model.
//!
//! # Examples
//!
//! Compile a source program and execute its lowered IR:
//!
//! ```
//! use spark_front::compile;
//! use spark_ir::{Env, Interpreter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = compile(
//!     "u8 max(u8 a, u8 b) {
//!        u8 m;
//!        if (a > b) { m = a; } else { m = b; }
//!        return m;
//!      }",
//! )
//! .map_err(|diags| diags[0].clone())?;
//! let outcome = Interpreter::new(&compiled.program)
//!     .run("max", &Env::new().with_scalar("a", 3).with_scalar("b", 10))?;
//! assert_eq!(outcome.return_value, Some(10));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
mod diag;
pub mod eval;
mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;
mod token;

pub use diag::{Diagnostic, LineMap, Span};
pub use eval::{evaluate, AstEvalError};
pub use lower::lower;
pub use parser::parse;
pub use sema::{analyze_with_source, Analysis};

/// A fully compiled source program: the AST, its analysis, and the lowered
/// behavioral IR, ready for the coordinated synthesis pipeline.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The parsed AST (kept for `--dump-ast` and the reference evaluator).
    pub ast: ast::ProgramAst,
    /// Per-expression inferred types.
    pub analysis: Analysis,
    /// The lowered behavioral IR.
    pub program: spark_ir::Program,
    /// Name of the first function in the file — the default top level.
    pub top: String,
}

impl Compiled {
    /// Runs the frontend's reference evaluator on a function of this
    /// program.
    ///
    /// # Errors
    /// Returns [`AstEvalError`] on missing inputs or runtime faults.
    pub fn evaluate(
        &self,
        function: &str,
        env: &spark_ir::Env,
    ) -> Result<spark_ir::Outcome, AstEvalError> {
        evaluate(&self.ast, &self.analysis, function, env)
    }
}

/// Compiles SPARK-C source text: lex + parse + semantic checks + lowering.
///
/// The lowered functions are checked with [`spark_ir::verify`]; a frontend
/// that emits malformed IR is a bug, so violations panic rather than
/// surfacing as user diagnostics.
///
/// # Errors
/// Returns every lexical, syntactic and semantic [`Diagnostic`], in source
/// order.
pub fn compile(source: &str) -> Result<Compiled, Vec<Diagnostic>> {
    let ast = parse(source)?;
    if ast.functions.is_empty() {
        let mut sink = diag::DiagSink::new(source);
        sink.error(Span::new(0, 0), "source contains no functions");
        return Err(sink.into_diagnostics());
    }
    let analysis = analyze_with_source(&ast, source)?;
    let program = lower(&ast, &analysis);
    for function in &program.functions {
        if let Err(errors) = spark_ir::verify(function) {
            panic!(
                "frontend lowering produced malformed IR for `{}`: {}",
                function.name,
                errors
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
    let top = ast.functions[0].name.clone();
    Ok(Compiled {
        ast,
        analysis,
        program,
        top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_parse_and_sema_errors() {
        assert!(compile("int f() { return ; }").is_err());
        assert!(compile("int f() { return x; }").is_err());
        assert!(compile("").is_err());
    }

    #[test]
    fn compile_sets_top_to_first_function() {
        let compiled = compile("int a() { return 1; }\nint b() { return 2; }").unwrap();
        assert_eq!(compiled.top, "a");
        assert_eq!(compiled.program.functions.len(), 2);
    }
}
