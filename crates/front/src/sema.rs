//! Semantic analysis of SPARK-C programs.
//!
//! Checks names (duplicate declarations, undeclared uses), kinds (array vs
//! scalar misuse), call signatures (arity, argument kinds, recursion) and
//! constant array bounds, and infers a [`Type`] for every expression node.
//! The inferred types drive both the HTG lowering (temporary widths) and the
//! reference AST evaluator (intermediate truncation), so the two agree bit
//! for bit with the IR interpreter.
//!
//! Type discipline is deliberately C-like and permissive: everything is an
//! unsigned bit-vector, assignments truncate to the destination width, and
//! any scalar may be used as a condition (non-zero is true). The inference
//! rule for arithmetic mirrors what a designer would write with the
//! [`FunctionBuilder`](spark_ir::FunctionBuilder): an integer literal adopts
//! the width of the other operand, otherwise the result takes the wider
//! operand's width.

use std::collections::BTreeMap;

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, ForCmp, FunctionAst, ProgramAst, Stmt, StmtKind, UnOp,
};
use crate::diag::{DiagSink, Diagnostic, Span};
use spark_ir::Type;

/// What a name refers to inside one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symbol {
    /// A scalar variable of the given type.
    Scalar(Type),
    /// An array of `len` elements of the given element type.
    Array(Type, u32),
}

/// A callee signature visible to every function.
#[derive(Clone, Debug)]
struct Signature {
    params: Vec<Symbol>,
    /// `out` flags per parameter (outputs are not writable call inputs).
    outs: Vec<bool>,
    ret: Option<Type>,
}

/// The result of semantic analysis: per-expression inferred types.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Inferred type of each expression node, indexed by
    /// [`ExprId`](crate::ast::ExprId). Array-name expressions (legal only as
    /// index bases and call arguments) carry their element type.
    pub expr_types: Vec<Type>,
}

impl Analysis {
    /// The inferred type of an expression.
    pub fn type_of(&self, expr: &Expr) -> Type {
        self.expr_types[expr.id]
    }
}

/// Analyzes a parsed program, resolving diagnostic positions against
/// `source` (the text the program was parsed from).
///
/// # Errors
/// Returns every semantic diagnostic found, with `line:col` positions.
pub fn analyze_with_source(
    program: &ProgramAst,
    source: &str,
) -> Result<Analysis, Vec<Diagnostic>> {
    let mut sink = DiagSink::new(source);
    let mut analysis = Analysis {
        expr_types: vec![Type::Bits(32); program.expr_count],
    };

    // Pass 1: collect signatures (calls may reference later functions).
    let mut signatures: BTreeMap<String, Signature> = BTreeMap::new();
    for function in &program.functions {
        if signatures.contains_key(&function.name) {
            sink.error(
                function.name_span,
                format!("duplicate function `{}`", function.name),
            );
            continue;
        }
        let params = function
            .params
            .iter()
            .map(|p| match p.array_len {
                Some(len) => Symbol::Array(p.ty, len),
                None => Symbol::Scalar(p.ty),
            })
            .collect();
        let outs = function.params.iter().map(|p| p.out).collect();
        signatures.insert(
            function.name.clone(),
            Signature {
                params,
                outs,
                ret: function.ret,
            },
        );
    }

    // Pass 2: check each function body.
    for function in &program.functions {
        let mut checker = Checker {
            sink: &mut sink,
            signatures: &signatures,
            analysis: &mut analysis,
            scope: BTreeMap::new(),
            function,
        };
        checker.check_function();
    }

    // Pass 3: reject recursion (the inliner would loop on it).
    check_recursion(program, &mut sink);

    if sink.is_clean() {
        Ok(analysis)
    } else {
        Err(sink.into_diagnostics())
    }
}

struct Checker<'a> {
    sink: &'a mut DiagSink,
    signatures: &'a BTreeMap<String, Signature>,
    analysis: &'a mut Analysis,
    /// Function-level scope (C90-style: one namespace per function).
    scope: BTreeMap<String, Symbol>,
    function: &'a FunctionAst,
}

impl Checker<'_> {
    fn check_function(&mut self) {
        for param in &self.function.params {
            self.declare(param);
            if param.init.is_some() {
                self.sink
                    .error(param.name_span, "parameters cannot have initializers");
            }
        }
        // Pre-declare nothing else: locals must be declared before use, which
        // the statement walk enforces in order.
        let body = &self.function.body;
        self.check_stmts(body);
    }

    fn declare(&mut self, decl: &Decl) {
        if is_reserved_temp_name(&decl.name) {
            self.sink.error(
                decl.name_span,
                format!(
                    "`{}` is reserved for compiler-generated temporaries (t_<N>)",
                    decl.name
                ),
            );
            return;
        }
        if self.scope.contains_key(&decl.name) {
            self.sink.error(
                decl.name_span,
                format!("duplicate declaration of `{}`", decl.name),
            );
            return;
        }
        let symbol = match decl.array_len {
            Some(len) => Symbol::Array(decl.ty, len),
            None => Symbol::Scalar(decl.ty),
        };
        self.scope.insert(decl.name.clone(), symbol);
    }

    fn lookup(&mut self, name: &str, span: Span) -> Option<Symbol> {
        match self.scope.get(name) {
            Some(symbol) => Some(*symbol),
            None => {
                self.sink.error(span, format!("unknown variable `{name}`"));
                None
            }
        }
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.check_stmt(stmt);
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                self.declare(decl);
                if let Some(init) = &decl.init {
                    self.check_scalar_expr(init);
                }
            }
            StmtKind::Assign {
                target,
                target_span,
                value,
            } => {
                match self.lookup(target, *target_span) {
                    Some(Symbol::Scalar(_)) | None => {}
                    Some(Symbol::Array(..)) => self.sink.error(
                        *target_span,
                        format!("cannot assign to array `{target}` without an index"),
                    ),
                }
                self.check_scalar_expr(value);
            }
            StmtKind::Store {
                array,
                array_span,
                index,
                value,
            } => {
                let length = match self.lookup(array, *array_span) {
                    Some(Symbol::Array(_, len)) => Some(len),
                    Some(Symbol::Scalar(_)) => {
                        self.sink
                            .error(*array_span, format!("`{array}` is not an array"));
                        None
                    }
                    None => None,
                };
                self.check_scalar_expr(index);
                self.check_const_index(index, length);
                self.check_scalar_expr(value);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.check_scalar_expr(cond);
                self.check_stmts(then_body);
                self.check_stmts(else_body);
            }
            StmtKind::While { cond, body, .. } => {
                self.check_scalar_expr(cond);
                self.check_stmts(body);
            }
            StmtKind::For {
                index,
                index_span,
                start,
                cmp,
                end,
                body,
                ..
            } => {
                match self.lookup(index, *index_span) {
                    Some(Symbol::Scalar(ty)) if *start > ty.mask() => {
                        self.sink.error(
                            *index_span,
                            format!("for-loop start {start} does not fit index `{index}` ({ty})"),
                        );
                    }
                    Some(Symbol::Scalar(_)) => {}
                    Some(Symbol::Array(..)) => self.sink.error(
                        *index_span,
                        format!("for-loop index `{index}` must be a scalar"),
                    ),
                    None => {}
                }
                self.check_scalar_expr(end);
                if *cmp == ForCmp::Lt {
                    match end.kind {
                        ExprKind::Int(value) if value >= 1 => {}
                        ExprKind::Int(_) => self
                            .sink
                            .error(end.span, "`<` bound must be at least 1 (the loop maps to `<= bound - 1`)"),
                        _ => self.sink.error(
                            end.span,
                            "`<` for-loop bounds must be integer literals; use `<=` for variable bounds",
                        ),
                    }
                }
                self.check_stmts(body);
            }
            StmtKind::Return { value } => match self.function.ret {
                Some(_) => {
                    self.check_scalar_expr(value);
                }
                None => self
                    .sink
                    .error(stmt.span, "`return` with a value in a void function"),
            },
            StmtKind::CallStmt { call } => {
                // Statement position: void callees are fine here, so bypass
                // the value-context check in `check_expr`.
                if let ExprKind::Call {
                    callee,
                    callee_span,
                    args,
                } = &call.kind
                {
                    let ty = self.check_call(callee, *callee_span, args);
                    self.analysis.expr_types[call.id] = ty;
                } else {
                    self.check_expr(call);
                }
            }
        }
    }

    /// Checks an expression that must produce a scalar value.
    fn check_scalar_expr(&mut self, expr: &Expr) -> Type {
        let ty = self.check_expr(expr);
        if let ExprKind::Var(name) = &expr.kind {
            if let Some(Symbol::Array(..)) = self.scope.get(name.as_str()) {
                self.sink.error(
                    expr.span,
                    format!(
                        "array `{name}` used as a scalar value (index it or pass it to a call)"
                    ),
                );
            }
        }
        ty
    }

    /// Infers and records the type of `expr`, checking its children.
    fn check_expr(&mut self, expr: &Expr) -> Type {
        let ty = match &expr.kind {
            ExprKind::Int(_) => Type::Bits(32),
            ExprKind::Bool(_) => Type::Bool,
            ExprKind::Var(name) => match self.lookup(name, expr.span) {
                Some(Symbol::Scalar(ty)) => ty,
                // Element type; scalar misuse is reported by callers that
                // require scalars.
                Some(Symbol::Array(ty, _)) => ty,
                None => Type::Bits(32),
            },
            ExprKind::Unary { op, operand } => {
                let operand_ty = self.check_scalar_expr(operand);
                match op {
                    UnOp::Not => {
                        if !operand_ty.is_bool() && !is_comparison(operand) {
                            self.sink.error(
                                expr.span,
                                "`!` requires a boolean operand (use `~` for bitwise complement)",
                            );
                        }
                        Type::Bool
                    }
                    UnOp::BitNot => operand_ty,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs_ty = self.check_scalar_expr(lhs);
                let rhs_ty = self.check_scalar_expr(rhs);
                match op {
                    BinOp::LogicAnd | BinOp::LogicOr => {
                        for (side, ty) in [(lhs, lhs_ty), (rhs, rhs_ty)] {
                            if !ty.is_bool() {
                                self.sink.error(
                                    side.span,
                                    format!(
                                        "`{}` requires boolean operands (compare against 0 first)",
                                        op.symbol()
                                    ),
                                );
                            }
                        }
                        Type::Bool
                    }
                    _ if op.is_boolean() => Type::Bool,
                    BinOp::Shl | BinOp::Shr => lhs_ty,
                    _ => join_types(lhs, lhs_ty, rhs, rhs_ty),
                }
            }
            ExprKind::Ternary {
                cond,
                then_value,
                else_value,
            } => {
                self.check_scalar_expr(cond);
                let then_ty = self.check_scalar_expr(then_value);
                let else_ty = self.check_scalar_expr(else_value);
                join_types(then_value, then_ty, else_value, else_ty)
            }
            ExprKind::Index {
                array,
                array_span,
                index,
            } => {
                let (elem_ty, length) = match self.lookup(array, *array_span) {
                    Some(Symbol::Array(ty, len)) => (ty, Some(len)),
                    Some(Symbol::Scalar(_)) => {
                        self.sink
                            .error(*array_span, format!("`{array}` is not an array"));
                        (Type::Bits(32), None)
                    }
                    None => (Type::Bits(32), None),
                };
                self.check_scalar_expr(index);
                self.check_const_index(index, length);
                elem_ty
            }
            ExprKind::Slice { base, hi, lo } => {
                let base_ty = self.check_scalar_expr(base);
                if hi < lo {
                    self.sink.error(
                        expr.span,
                        format!("slice bounds reversed: [{hi}:{lo}] needs hi >= lo"),
                    );
                } else if *hi >= base_ty.width() {
                    self.sink.error(
                        expr.span,
                        format!(
                            "slice bit {hi} out of range for a {}-bit value",
                            base_ty.width()
                        ),
                    );
                }
                let width = hi.saturating_sub(*lo) + 1;
                if width == 1 {
                    Type::Bool
                } else {
                    Type::Bits(width)
                }
            }
            ExprKind::Call {
                callee,
                callee_span,
                args,
            } => {
                let ty = self.check_call(callee, *callee_span, args);
                if let Some(signature) = self.signatures.get(callee.as_str()) {
                    if signature.ret.is_none() {
                        self.sink.error(
                            expr.span,
                            format!("call to void function `{callee}` used as a value"),
                        );
                    }
                }
                ty
            }
        };
        self.analysis.expr_types[expr.id] = ty;
        ty
    }

    fn check_call(&mut self, callee: &str, callee_span: Span, args: &[Expr]) -> Type {
        let Some(signature) = self.signatures.get(callee).cloned() else {
            self.sink
                .error(callee_span, format!("unknown function `{callee}`"));
            for arg in args {
                self.check_expr(arg);
            }
            return Type::Bits(32);
        };
        if args.len() != signature.params.len() {
            self.sink.error(
                callee_span,
                format!(
                    "`{callee}` expects {} argument(s), found {}",
                    signature.params.len(),
                    args.len()
                ),
            );
        }
        for (position, arg) in args.iter().enumerate() {
            match signature.params.get(position) {
                Some(Symbol::Array(elem_ty, len)) => {
                    // Array arguments must be bare array names of matching
                    // shape (the IR passes arrays by reference-to-copy).
                    match &arg.kind {
                        ExprKind::Var(name) => match self.lookup(name, arg.span) {
                            Some(Symbol::Array(arg_ty, arg_len))
                                if arg_ty != *elem_ty || arg_len != *len =>
                            {
                                self.sink.error(
                                    arg.span,
                                    format!(
                                        "array argument `{name}` has shape {arg_ty}[{arg_len}], `{callee}` expects {elem_ty}[{len}]"
                                    ),
                                );
                            }
                            Some(Symbol::Array(..)) => {}
                            Some(Symbol::Scalar(_)) => self.sink.error(
                                arg.span,
                                format!("`{callee}` expects an array here, `{name}` is a scalar"),
                            ),
                            None => {}
                        },
                        _ => self.sink.error(
                            arg.span,
                            format!("array parameters of `{callee}` take a bare array name"),
                        ),
                    }
                    self.check_expr(arg);
                }
                Some(Symbol::Scalar(_)) | None => {
                    self.check_scalar_expr(arg);
                }
            }
            if signature.outs.get(position).copied().unwrap_or(false) {
                self.sink.error(
                    arg.span,
                    format!("parameter {position} of `{callee}` is an output; calls cannot bind outputs"),
                );
            }
        }
        match signature.ret {
            Some(ty) => ty,
            None => {
                // A void call used in expression position is caught by the
                // parser for statements and here for expressions; callers of
                // check_expr treat the placeholder as 32-bit.
                Type::Bits(32)
            }
        }
    }

    /// Bounds-checks constant indices against the array length.
    fn check_const_index(&mut self, index: &Expr, length: Option<u32>) {
        if let (ExprKind::Int(value), Some(length)) = (&index.kind, length) {
            if *value >= length as u64 {
                self.sink.error(
                    index.span,
                    format!("index {value} out of bounds for array of length {length}"),
                );
            }
        }
    }
}

/// The width-join rule for arithmetic: literals adopt the other operand's
/// type; otherwise the wider operand wins (ties keep the left type).
fn join_types(lhs: &Expr, lhs_ty: Type, rhs: &Expr, rhs_ty: Type) -> Type {
    let lhs_literal = matches!(lhs.kind, ExprKind::Int(_));
    let rhs_literal = matches!(rhs.kind, ExprKind::Int(_));
    match (lhs_literal, rhs_literal) {
        (true, false) => rhs_ty,
        (false, true) => lhs_ty,
        _ => {
            if rhs_ty.width() > lhs_ty.width() {
                rhs_ty
            } else {
                lhs_ty
            }
        }
    }
}

/// True for `t_<digits>` — the namespace `fresh_temp("t", ..)` draws from.
/// User variables there would collide with lowering temporaries, and the
/// interpreter's name-keyed [`Outcome`](spark_ir::Outcome) would then merge
/// the two.
fn is_reserved_temp_name(name: &str) -> bool {
    name.strip_prefix("t_")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

fn is_comparison(expr: &Expr) -> bool {
    matches!(&expr.kind, ExprKind::Binary { op, .. } if op.is_boolean())
}

/// Rejects call cycles: the coordinated flow inlines every call, which only
/// terminates on a DAG of functions.
fn check_recursion(program: &ProgramAst, sink: &mut DiagSink) {
    fn calls_of(stmts: &[Stmt], out: &mut Vec<(String, Span)>) {
        fn expr_calls(expr: &Expr, out: &mut Vec<(String, Span)>) {
            match &expr.kind {
                ExprKind::Call {
                    callee,
                    callee_span,
                    args,
                } => {
                    out.push((callee.clone(), *callee_span));
                    for arg in args {
                        expr_calls(arg, out);
                    }
                }
                ExprKind::Unary { operand, .. } => expr_calls(operand, out),
                ExprKind::Binary { lhs, rhs, .. } => {
                    expr_calls(lhs, out);
                    expr_calls(rhs, out);
                }
                ExprKind::Ternary {
                    cond,
                    then_value,
                    else_value,
                } => {
                    expr_calls(cond, out);
                    expr_calls(then_value, out);
                    expr_calls(else_value, out);
                }
                ExprKind::Index { index, .. } => expr_calls(index, out),
                ExprKind::Slice { base, .. } => expr_calls(base, out),
                ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
            }
        }
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Decl(decl) => {
                    if let Some(init) = &decl.init {
                        expr_calls(init, out);
                    }
                }
                StmtKind::Assign { value, .. } => expr_calls(value, out),
                StmtKind::Store { index, value, .. } => {
                    expr_calls(index, out);
                    expr_calls(value, out);
                }
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    expr_calls(cond, out);
                    calls_of(then_body, out);
                    calls_of(else_body, out);
                }
                StmtKind::While { cond, body, .. } => {
                    expr_calls(cond, out);
                    calls_of(body, out);
                }
                StmtKind::For { end, body, .. } => {
                    expr_calls(end, out);
                    calls_of(body, out);
                }
                StmtKind::Return { value } => expr_calls(value, out),
                StmtKind::CallStmt { call } => expr_calls(call, out),
            }
        }
    }

    let edges: BTreeMap<&str, Vec<(String, Span)>> = program
        .functions
        .iter()
        .map(|f| {
            let mut calls = Vec::new();
            calls_of(&f.body, &mut calls);
            (f.name.as_str(), calls)
        })
        .collect();

    // DFS from each function; a back edge into the active stack is a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = edges.keys().map(|&k| (k, Mark::White)).collect();

    fn dfs<'a>(
        name: &'a str,
        edges: &'a BTreeMap<&str, Vec<(String, Span)>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        sink: &mut DiagSink,
    ) {
        marks.insert(name, Mark::Grey);
        if let Some(calls) = edges.get(name) {
            for (callee, span) in calls {
                match marks.get(callee.as_str()).copied() {
                    Some(Mark::Grey) => sink.error(
                        *span,
                        format!(
                            "recursive call cycle involving `{callee}` (calls cannot be inlined)"
                        ),
                    ),
                    Some(Mark::White) => {
                        // Re-borrow with the owning key so the lifetime holds.
                        if let Some((&key, _)) = edges.get_key_value(callee.as_str()) {
                            dfs(key, edges, marks, sink);
                        }
                    }
                    _ => {}
                }
            }
        }
        marks.insert(name, Mark::Black);
    }

    let names: Vec<&str> = edges.keys().copied().collect();
    for name in names {
        if marks[name] == Mark::White {
            dfs(name, &edges, &mut marks, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(source: &str) -> Result<Analysis, Vec<Diagnostic>> {
        let ast = parse(source).expect("parse is clean");
        analyze_with_source(&ast, source)
    }

    fn first_error(source: &str) -> String {
        analyze_src(source).unwrap_err()[0].to_string()
    }

    #[test]
    fn clean_program_passes() {
        let analysis = analyze_src(
            "u8 f(u8 a, u8 b) {\n  u8 m;\n  if (a > b) { m = a; } else { m = b; }\n  return m;\n}",
        )
        .expect("clean");
        assert!(!analysis.expr_types.is_empty());
    }

    #[test]
    fn undeclared_variable_is_reported_with_position() {
        assert_eq!(
            first_error("int f() {\n  x = 1;\n  return 0;\n}"),
            "2:3: error: unknown variable `x`"
        );
    }

    #[test]
    fn duplicate_declaration_is_reported() {
        let msg = first_error("int f() {\n  int a;\n  u8 a;\n  return 0;\n}");
        assert_eq!(msg, "3:6: error: duplicate declaration of `a`");
    }

    #[test]
    fn const_index_bounds_are_checked() {
        let msg = first_error("int f(u8 b[4]) {\n  int x;\n  x = b[4];\n  return x;\n}");
        assert!(msg.contains("out of bounds"), "{msg}");
    }

    #[test]
    fn call_arity_is_checked() {
        let msg = first_error(
            "u8 g(u8 x) { return x; }\nint f() {\n  int y;\n  y = g(1, 2);\n  return y;\n}",
        );
        assert!(msg.contains("expects 1 argument(s), found 2"), "{msg}");
    }

    #[test]
    fn recursion_is_rejected() {
        let msg = first_error("int f(int x) {\n  int y;\n  y = f(x);\n  return y;\n}");
        assert!(msg.contains("recursive call cycle"), "{msg}");
    }

    #[test]
    fn literal_adopts_other_operand_width() {
        let source = "u8 f(u8 a) {\n  u8 x;\n  x = a & 3;\n  return x;\n}";
        let ast = parse(source).unwrap();
        let analysis = analyze_with_source(&ast, source).unwrap();
        let StmtKind::Assign { value, .. } = &ast.functions[0].body[1].kind else {
            panic!()
        };
        assert_eq!(analysis.type_of(value), Type::Bits(8));
    }

    #[test]
    fn comparisons_are_boolean() {
        let source = "bool f(u16 a, u16 b) {\n  bool c;\n  c = a == b;\n  return c;\n}";
        let ast = parse(source).unwrap();
        let analysis = analyze_with_source(&ast, source).unwrap();
        let StmtKind::Assign { value, .. } = &ast.functions[0].body[1].kind else {
            panic!()
        };
        assert_eq!(analysis.type_of(value), Type::Bool);
    }

    #[test]
    fn reserved_temp_names_are_rejected() {
        let msg = first_error("int f() {\n  u8 t_0;\n  t_0 = 1;\n  return 0;\n}");
        assert!(msg.contains("reserved for compiler-generated"), "{msg}");
        // `t_x`, `t0` and plain `t` are fine.
        assert!(analyze_src("int f() {\n  u8 t_x;\n  u8 t0;\n  u8 t;\n  return 0;\n}").is_ok());
    }

    #[test]
    fn array_used_as_scalar_is_reported() {
        let msg = first_error("int f(u8 b[4]) {\n  int x;\n  x = b + 1;\n  return x;\n}");
        assert!(msg.contains("used as a scalar"), "{msg}");
    }

    #[test]
    fn array_call_arguments_check_shape() {
        let msg = first_error(
            "u8 g(u8 data[8]) { return data[0]; }\nu8 f(u8 b[4]) {\n  u8 x;\n  x = g(b);\n  return x;\n}",
        );
        assert!(msg.contains("has shape u8[4]"), "{msg}");
    }
}
