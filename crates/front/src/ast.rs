//! The SPARK-C abstract syntax tree.
//!
//! Every expression node carries a unique [`ExprId`] assigned by the parser;
//! the semantic pass fills a side table mapping each id to its inferred
//! [`Type`], which both the HTG lowering and the reference AST evaluator
//! consult so that intermediate results are truncated identically.

use crate::diag::Span;
use spark_ir::Type;
use std::fmt;

/// Index of an expression node, unique within one [`ProgramAst`].
pub type ExprId = usize;

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Logical not (`!`), defined on booleans.
    Not,
    /// Bitwise complement (`~`) within the operand's width.
    BitNot,
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit boolean and — this is hardware)
    LogicAnd,
    /// `||` (non-short-circuit boolean or)
    LogicOr,
}

impl BinOp {
    /// True for operators that produce a boolean.
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LogicAnd
                | BinOp::LogicOr
        )
    }

    /// Source-level spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LogicAnd => "&&",
            BinOp::LogicOr => "||",
        }
    }
}

/// An expression node.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Unique id within the program (index into the sema type table).
    pub id: ExprId,
    /// Source range of the expression.
    pub span: Span,
    /// The expression itself.
    pub kind: ExprKind,
}

/// The shape of an expression.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// An unsigned integer literal (32-bit, like the IR's `Value::word`).
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// A variable read (scalars; array names may appear only as index bases
    /// or call arguments).
    Var(String),
    /// `!e` or `~e`.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// `lhs op rhs`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then_value : else_value` — a hardware multiplexer.
    Ternary {
        /// The select condition.
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_value: Box<Expr>,
        /// Value when the condition is zero.
        else_value: Box<Expr>,
    },
    /// `array[index]`.
    Index {
        /// Name of the array variable.
        array: String,
        /// Span of the array name.
        array_span: Span,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `base[hi:lo]` — bit-field extraction with constant bounds.
    Slice {
        /// The scalar being sliced.
        base: Box<Expr>,
        /// Most-significant extracted bit (inclusive).
        hi: u16,
        /// Least-significant extracted bit (inclusive).
        lo: u16,
    },
    /// `callee(args...)`.
    Call {
        /// Name of the called function.
        callee: String,
        /// Span of the callee name.
        callee_span: Span,
        /// Argument expressions (array arguments must be bare names).
        args: Vec<Expr>,
    },
}

/// How a `for` loop compares its index against the bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForCmp {
    /// `index <= bound` — maps directly onto the IR's loop semantics.
    Le,
    /// `index < bound` — the (constant) bound is lowered as `bound - 1`.
    Lt,
}

/// A variable declaration (parameter or local).
#[derive(Clone, Debug)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Element type (for arrays, the element type).
    pub ty: Type,
    /// `Some(len)` for arrays.
    pub array_len: Option<u32>,
    /// Declared with the `out` qualifier (a primary output of the block).
    pub out: bool,
    /// Optional initializer (locals only).
    pub init: Option<Expr>,
}

/// A statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Source range.
    pub span: Span,
    /// The statement itself.
    pub kind: StmtKind,
}

/// The shape of a statement.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// A local declaration, optionally initialized.
    Decl(Decl),
    /// `target = value;`
    Assign {
        /// Destination variable name.
        target: String,
        /// Span of the destination name.
        target_span: Span,
        /// Assigned value.
        value: Expr,
    },
    /// `array[index] = value;`
    Store {
        /// Destination array name.
        array: String,
        /// Span of the array name.
        array_span: Span,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// The branch condition.
        cond: Expr,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (empty when absent).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) bound(n) { ... }`
    While {
        /// The loop condition.
        cond: Expr,
        /// Designer-supplied trip bound, needed to unroll `while (1)`.
        bound: Option<u64>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (i = start; i <= end; i = i + step) { ... }`
    For {
        /// Loop index variable name.
        index: String,
        /// Span of the index name.
        index_span: Span,
        /// Constant start value.
        start: u64,
        /// `<=` or `<`.
        cmp: ForCmp,
        /// Bound expression.
        end: Box<Expr>,
        /// Constant positive step.
        step: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return value;`
    Return {
        /// Returned value.
        value: Expr,
    },
    /// A call evaluated for its side effects: `f(a, b);`
    CallStmt {
        /// The call expression (always `ExprKind::Call`).
        call: Expr,
    },
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FunctionAst {
    /// Function name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Declared return type; `None` for `void`.
    pub ret: Option<Type>,
    /// Parameters in declaration order (`out` parameters become primary
    /// outputs rather than inputs).
    pub params: Vec<Decl>,
    /// Statements of the body.
    pub body: Vec<Stmt>,
}

/// A whole parsed source file.
#[derive(Clone, Debug, Default)]
pub struct ProgramAst {
    /// Functions in source order (the first is the default top level).
    pub functions: Vec<FunctionAst>,
    /// Total number of expression ids handed out by the parser.
    pub expr_count: usize,
}

// ---------------------------------------------------------------------------
// Pretty-printing (the `sparkc --dump-ast` output)
// ---------------------------------------------------------------------------

fn fmt_type(ty: Type) -> String {
    match ty {
        Type::Bool => "bool".to_string(),
        Type::Bits(32) => "int".to_string(),
        Type::Bits(w) => format!("u{w}"),
    }
}

fn fmt_decl(d: &Decl) -> String {
    let out = if d.out { "out " } else { "" };
    match d.array_len {
        Some(len) => format!("{out}{} {}[{len}]", fmt_type(d.ty), d.name),
        None => format!("{out}{} {}", fmt_type(d.ty), d.name),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Int(v) => write!(f, "{v}"),
            ExprKind::Bool(b) => write!(f, "{b}"),
            ExprKind::Var(name) => write!(f, "{name}"),
            ExprKind::Unary { op, operand } => {
                let symbol = match op {
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                write!(f, "{symbol}{operand}")
            }
            ExprKind::Binary { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            ExprKind::Ternary {
                cond,
                then_value,
                else_value,
            } => write!(f, "({cond} ? {then_value} : {else_value})"),
            ExprKind::Index { array, index, .. } => write!(f, "{array}[{index}]"),
            ExprKind::Slice { base, hi, lo } => write!(f, "{base}[{hi}:{lo}]"),
            ExprKind::Call { callee, args, .. } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{callee}({})", rendered.join(", "))
            }
        }
    }
}

fn fmt_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                write!(f, "{pad}{}", fmt_decl(d))?;
                if let Some(init) = &d.init {
                    write!(f, " = {init}")?;
                }
                writeln!(f, ";")?;
            }
            StmtKind::Assign { target, value, .. } => writeln!(f, "{pad}{target} = {value};")?,
            StmtKind::Store {
                array,
                index,
                value,
                ..
            } => writeln!(f, "{pad}{array}[{index}] = {value};")?,
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                fmt_stmts(f, then_body, indent + 1)?;
                if else_body.is_empty() {
                    writeln!(f, "{pad}}}")?;
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    fmt_stmts(f, else_body, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
            StmtKind::While { cond, bound, body } => {
                match bound {
                    Some(bound) => writeln!(f, "{pad}while ({cond}) bound({bound}) {{")?,
                    None => writeln!(f, "{pad}while ({cond}) {{")?,
                }
                fmt_stmts(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            StmtKind::For {
                index,
                start,
                cmp,
                end,
                step,
                body,
                ..
            } => {
                let cmp = match cmp {
                    ForCmp::Le => "<=",
                    ForCmp::Lt => "<",
                };
                writeln!(
                    f,
                    "{pad}for ({index} = {start}; {index} {cmp} {end}; {index} = {index} + {step}) {{"
                )?;
                fmt_stmts(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            StmtKind::Return { value } => writeln!(f, "{pad}return {value};")?,
            StmtKind::CallStmt { call } => writeln!(f, "{pad}{call};")?,
        }
    }
    Ok(())
}

impl fmt::Display for FunctionAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ret = match self.ret {
            Some(ty) => fmt_type(ty),
            None => "void".to_string(),
        };
        let params: Vec<String> = self.params.iter().map(fmt_decl).collect();
        writeln!(f, "{ret} {}({}) {{", self.name, params.join(", "))?;
        fmt_stmts(f, &self.body, 1)?;
        writeln!(f, "}}")
    }
}

impl fmt::Display for ProgramAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, function) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{function}")?;
        }
        Ok(())
    }
}
