//! Hand-written lexer for SPARK-C.
//!
//! Whitespace, `//` line comments and `/* ... */` block comments are
//! skipped. Unknown characters and malformed literals are reported through
//! the shared [`DiagSink`] and skipped, so the parser always receives a
//! well-formed (if possibly truncated) token stream ending in `Eof`.

use crate::diag::{DiagSink, Span};
use crate::token::{Token, TokenKind};

/// Tokenizes `source`, reporting lexical errors into `sink`.
pub fn lex(source: &str, sink: &mut DiagSink) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        sink,
    }
    .run()
}

struct Lexer<'a, 'd> {
    bytes: &'a [u8],
    pos: usize,
    sink: &'d mut DiagSink,
}

impl Lexer<'_, '_> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(byte) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32),
                });
                return tokens;
            };
            let kind = match byte {
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => Some(self.ident_or_keyword()),
                _ => self.punct(),
            };
            if let Some(kind) = kind {
                tokens.push(Token {
                    kind,
                    span: Span::new(start as u32, self.pos as u32),
                });
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek();
        if byte.is_some() {
            self.pos += 1;
        }
        byte
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                self.sink.error(
                                    Span::new(start as u32, self.pos as u32),
                                    "unterminated block comment",
                                );
                                break;
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        let hex = self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X'));
        if hex {
            self.pos += 2;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("source slices at ascii boundaries")
            .replace('_', "");
        let span = Span::new(start as u32, self.pos as u32);
        let parsed = if hex {
            u64::from_str_radix(&text[2..], 16)
        } else {
            text.parse::<u64>()
        };
        match parsed {
            Ok(value) => Some(TokenKind::Int(value)),
            Err(_) => {
                self.sink
                    .error(span, format!("malformed integer literal `{text}`"));
                None
            }
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("source slices at ascii boundaries");
        match text {
            "int" => TokenKind::KwInt,
            "bool" => TokenKind::KwBool,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "out" => TokenKind::KwOut,
            "bound" => TokenKind::KwBound,
            _ => TokenKind::Ident(text.to_string()),
        }
    }

    fn punct(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        let byte = self.bump().expect("caller checked non-empty");
        let two = |lexer: &mut Self, kind| {
            lexer.pos += 1;
            Some(kind)
        };
        match byte {
            b'(' => Some(TokenKind::LParen),
            b')' => Some(TokenKind::RParen),
            b'{' => Some(TokenKind::LBrace),
            b'}' => Some(TokenKind::RBrace),
            b'[' => Some(TokenKind::LBracket),
            b']' => Some(TokenKind::RBracket),
            b',' => Some(TokenKind::Comma),
            b';' => Some(TokenKind::Semi),
            b':' => Some(TokenKind::Colon),
            b'?' => Some(TokenKind::Question),
            b'+' if self.peek() == Some(b'+') => two(self, TokenKind::PlusPlus),
            b'+' => Some(TokenKind::Plus),
            b'-' => Some(TokenKind::Minus),
            b'*' => Some(TokenKind::Star),
            b'&' if self.peek() == Some(b'&') => two(self, TokenKind::AndAnd),
            b'&' => Some(TokenKind::Amp),
            b'|' if self.peek() == Some(b'|') => two(self, TokenKind::OrOr),
            b'|' => Some(TokenKind::Pipe),
            b'^' => Some(TokenKind::Caret),
            b'~' => Some(TokenKind::Tilde),
            b'!' if self.peek() == Some(b'=') => two(self, TokenKind::Ne),
            b'!' => Some(TokenKind::Bang),
            b'<' if self.peek() == Some(b'<') => two(self, TokenKind::Shl),
            b'<' if self.peek() == Some(b'=') => two(self, TokenKind::Le),
            b'<' => Some(TokenKind::Lt),
            b'>' if self.peek() == Some(b'>') => two(self, TokenKind::Shr),
            b'>' if self.peek() == Some(b'=') => two(self, TokenKind::Ge),
            b'>' => Some(TokenKind::Gt),
            b'=' if self.peek() == Some(b'=') => two(self, TokenKind::EqEq),
            b'=' => Some(TokenKind::Assign),
            other => {
                self.sink.error(
                    Span::new(start as u32, self.pos as u32),
                    format!("unexpected character `{}`", other as char),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        let mut sink = DiagSink::new(source);
        let tokens = lex(source, &mut sink);
        assert!(sink.is_clean(), "{:?}", sink.into_diagnostics());
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("u8 x = 0x1F;"),
            vec![
                TokenKind::Ident("u8".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(0x1F),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && || ++"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::PlusPlus,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n /* block\n still */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(
            kinds("if else while for return true false out bound int bool void"),
            vec![
                TokenKind::KwIf,
                TokenKind::KwElse,
                TokenKind::KwWhile,
                TokenKind::KwFor,
                TokenKind::KwReturn,
                TokenKind::KwTrue,
                TokenKind::KwFalse,
                TokenKind::KwOut,
                TokenKind::KwBound,
                TokenKind::KwInt,
                TokenKind::KwBool,
                TokenKind::KwVoid,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_unknown_character_with_position() {
        let source = "a\n  @";
        let mut sink = DiagSink::new(source);
        let _ = lex(source, &mut sink);
        let diags = sink.into_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].to_string(), "2:3: error: unexpected character `@`");
    }
}
