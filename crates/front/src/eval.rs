//! A direct AST evaluator for SPARK-C — the frontend's own golden model.
//!
//! Evaluates the *source* semantics without going through the IR at all:
//! unsigned arithmetic truncated at every inferred intermediate width,
//! C-style control flow, arrays passed to calls by value. Because the
//! truncation points mirror exactly where the lowering materializes
//! temporaries, running [`spark_ir::Interpreter`] on the lowered IR must
//! produce identical results — the round-trip property the test suite
//! checks on generated programs.

use std::collections::BTreeMap;

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, ForCmp, FunctionAst, ProgramAst, Stmt, StmtKind, UnOp,
};
use crate::sema::Analysis;
use spark_ir::{Env, Outcome, Type};

/// Errors raised by the AST evaluator (mirrors
/// [`spark_ir::EvalError`](spark_ir::EvalError) where the cases overlap).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstEvalError {
    /// A named input was expected but not provided.
    MissingInput(String),
    /// A call referenced an unknown function.
    UnknownFunction(String),
    /// An array access was out of bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: u64,
    },
    /// A loop exceeded the evaluator's iteration limit.
    LoopLimit(u64),
}

impl std::fmt::Display for AstEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AstEvalError::MissingInput(name) => write!(f, "missing input `{name}`"),
            AstEvalError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            AstEvalError::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds for array `{array}`")
            }
            AstEvalError::LoopLimit(limit) => write!(f, "loop exceeded {limit} iterations"),
        }
    }
}

impl std::error::Error for AstEvalError {}

const LOOP_LIMIT: u64 = 1 << 20;

/// Evaluates `function` of the analyzed AST `program` on the inputs of
/// `env`, returning the same [`Outcome`] shape the IR interpreter produces
/// (restricted to source-declared variables — lowering temporaries do not
/// exist here).
///
/// # Errors
/// Returns [`AstEvalError`] on missing inputs, unknown functions,
/// out-of-bounds accesses or runaway loops.
pub fn evaluate(
    program: &ProgramAst,
    analysis: &Analysis,
    function: &str,
    env: &Env,
) -> Result<Outcome, AstEvalError> {
    let func = program
        .functions
        .iter()
        .find(|f| f.name == function)
        .ok_or_else(|| AstEvalError::UnknownFunction(function.to_string()))?;

    let mut frame = Frame::init(func, env)?;
    let mut ctx = Evaluator { program, analysis };
    let flow = ctx.exec_stmts(&func.body, &mut frame)?;

    let mut outcome = Outcome {
        return_value: match flow {
            Flow::Return(v) => Some(v),
            Flow::Continue => None,
        },
        ..Outcome::default()
    };
    for (name, (value, _)) in &frame.scalars {
        outcome.scalars.insert(name.clone(), *value);
    }
    for (name, (contents, _)) in &frame.arrays {
        outcome.arrays.insert(name.clone(), contents.clone());
    }
    Ok(outcome)
}

enum Flow {
    Continue,
    Return(u64),
}

struct Frame {
    scalars: BTreeMap<String, (u64, Type)>,
    arrays: BTreeMap<String, (Vec<u64>, Type)>,
}

impl Frame {
    /// Mirrors the IR interpreter's frame initialization: every declared
    /// variable exists from function entry with value zero, inputs are
    /// masked to their declared width, missing parameters are errors.
    fn init(func: &FunctionAst, env: &Env) -> Result<Frame, AstEvalError> {
        let mut frame = Frame {
            scalars: BTreeMap::new(),
            arrays: BTreeMap::new(),
        };
        let mut declare = |decl: &Decl| match decl.array_len {
            Some(len) => {
                let mut contents = env
                    .array_bindings()
                    .get(&decl.name)
                    .cloned()
                    .unwrap_or_default();
                contents.resize(len as usize, 0);
                contents.iter_mut().for_each(|v| *v &= decl.ty.mask());
                frame.arrays.insert(decl.name.clone(), (contents, decl.ty));
            }
            None => {
                let value =
                    env.scalar_bindings().get(&decl.name).copied().unwrap_or(0) & decl.ty.mask();
                frame.scalars.insert(decl.name.clone(), (value, decl.ty));
            }
        };
        for param in &func.params {
            declare(param);
        }
        collect_decls(&func.body, &mut declare);
        // Non-output parameters are required inputs, like the interpreter's.
        for param in &func.params {
            if param.out {
                continue;
            }
            let provided = match param.array_len {
                Some(_) => env.array_bindings().contains_key(&param.name),
                None => env.scalar_bindings().contains_key(&param.name),
            };
            if !provided {
                return Err(AstEvalError::MissingInput(param.name.clone()));
            }
        }
        Ok(frame)
    }

    fn store(&mut self, name: &str, value: u64) {
        if let Some((slot, ty)) = self.scalars.get_mut(name) {
            *slot = value & ty.mask();
        }
    }

    fn load(&self, name: &str) -> u64 {
        self.scalars.get(name).map(|(v, _)| *v).unwrap_or(0)
    }
}

/// Walks every declaration in a statement tree (all locals are
/// function-scoped, like the IR's flat variable arena).
fn collect_decls(stmts: &[Stmt], declare: &mut impl FnMut(&Decl)) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Decl(decl) => declare(decl),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(then_body, declare);
                collect_decls(else_body, declare);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                collect_decls(body, declare);
            }
            _ => {}
        }
    }
}

struct Evaluator<'a> {
    program: &'a ProgramAst,
    analysis: &'a Analysis,
}

impl Evaluator<'_> {
    fn exec_stmts(&mut self, stmts: &[Stmt], frame: &mut Frame) -> Result<Flow, AstEvalError> {
        for stmt in stmts {
            if let Flow::Return(v) = self.exec_stmt(stmt, frame)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Flow, AstEvalError> {
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                if let Some(init) = &decl.init {
                    let value = self.eval_raw(init, frame)?;
                    frame.store(&decl.name, value);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                // Top-level masking happens at the destination width, exactly
                // like the destination-hinted lowering.
                let value = self.eval_raw(value, frame)?;
                frame.store(target, value);
            }
            StmtKind::Store {
                array,
                index,
                value,
                ..
            } => {
                let index = self.eval(index, frame)?;
                let raw = self.eval(value, frame)?;
                let (contents, ty) = frame
                    .arrays
                    .get_mut(array.as_str())
                    .expect("sema checked array names");
                let masked = raw & ty.mask();
                let slot =
                    contents
                        .get_mut(index as usize)
                        .ok_or_else(|| AstEvalError::OutOfBounds {
                            array: array.clone(),
                            index,
                        })?;
                *slot = masked;
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.eval(cond, frame)? != 0;
                let body = if cond { then_body } else { else_body };
                return self.exec_stmts(body, frame);
            }
            StmtKind::While { cond, bound, body } => {
                let limit = bound.unwrap_or(LOOP_LIMIT);
                let mut iterations = 0u64;
                loop {
                    if self.eval(cond, frame)? == 0 {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_stmts(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                    iterations += 1;
                    if iterations >= limit {
                        if bound.is_none() {
                            return Err(AstEvalError::LoopLimit(LOOP_LIMIT));
                        }
                        break;
                    }
                }
            }
            StmtKind::For {
                index,
                start,
                cmp,
                end,
                step,
                body,
                ..
            } => {
                let index_ty = frame
                    .scalars
                    .get(index.as_str())
                    .map(|(_, ty)| *ty)
                    .unwrap_or_default();
                frame.store(index, *start);
                // Mirror the lowering's bound handling: `i < LIT` becomes the
                // inclusive constant `LIT - 1`; a compound bound materializes
                // into a temporary *before* the loop (a loop-invariant
                // snapshot); only a bare variable bound is re-read each
                // iteration.
                let static_bound = match (cmp, &end.kind) {
                    (ForCmp::Lt, ExprKind::Int(value)) => Some(value - 1),
                    (_, ExprKind::Var(_)) => None,
                    _ => Some(self.eval(end, frame)?),
                };
                let mut iterations = 0u64;
                loop {
                    let current = frame.load(index);
                    let bound = match static_bound {
                        Some(bound) => bound,
                        None => self.eval(end, frame)?,
                    };
                    if current > bound {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_stmts(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                    let next = current.wrapping_add(*step) & index_ty.mask();
                    frame.store(index, next);
                    iterations += 1;
                    if iterations > LOOP_LIMIT {
                        return Err(AstEvalError::LoopLimit(LOOP_LIMIT));
                    }
                }
            }
            StmtKind::Return { value } => {
                let value = self.eval(value, frame)?;
                return Ok(Flow::Return(value));
            }
            StmtKind::CallStmt { call } => {
                self.eval_raw(call, frame)?;
            }
        }
        Ok(Flow::Continue)
    }

    /// Evaluates an expression, masked to its inferred type — the value a
    /// materialized temporary would hold.
    fn eval(&mut self, expr: &Expr, frame: &mut Frame) -> Result<u64, AstEvalError> {
        let raw = self.eval_raw(expr, frame)?;
        Ok(raw & self.analysis.type_of(expr).mask())
    }

    /// Evaluates an expression *without* the final mask (the destination
    /// applies its own width when the value is stored).
    fn eval_raw(&mut self, expr: &Expr, frame: &mut Frame) -> Result<u64, AstEvalError> {
        match &expr.kind {
            ExprKind::Int(value) => Ok(*value),
            ExprKind::Bool(value) => Ok(*value as u64),
            ExprKind::Var(name) => Ok(frame.load(name)),
            ExprKind::Unary { op, operand } => {
                let operand = self.eval(operand, frame)?;
                Ok(match op {
                    UnOp::Not | UnOp::BitNot => !operand,
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, frame)?;
                let r = self.eval(rhs, frame)?;
                Ok(match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::And | BinOp::LogicAnd => l & r,
                    BinOp::Or | BinOp::LogicOr => l | r,
                    BinOp::Xor => l ^ r,
                    BinOp::Shl => l << r.min(63),
                    BinOp::Shr => l >> r.min(63),
                    BinOp::Eq => (l == r) as u64,
                    BinOp::Ne => (l != r) as u64,
                    BinOp::Lt => (l < r) as u64,
                    BinOp::Le => (l <= r) as u64,
                    BinOp::Gt => (l > r) as u64,
                    BinOp::Ge => (l >= r) as u64,
                })
            }
            ExprKind::Ternary {
                cond,
                then_value,
                else_value,
            } => {
                let cond = self.eval(cond, frame)?;
                // Both branches evaluate (this is a multiplexer, not control
                // flow), exactly like the IR's `select`.
                let t = self.eval(then_value, frame)?;
                let e = self.eval(else_value, frame)?;
                Ok(if cond != 0 { t } else { e })
            }
            ExprKind::Index { array, index, .. } => {
                let index = self.eval(index, frame)?;
                let (contents, _) = frame
                    .arrays
                    .get(array.as_str())
                    .expect("sema checked array names");
                contents
                    .get(index as usize)
                    .copied()
                    .ok_or_else(|| AstEvalError::OutOfBounds {
                        array: array.clone(),
                        index,
                    })
            }
            ExprKind::Slice { base, hi, lo } => {
                let value = self.eval(base, frame)?;
                let width = hi - lo + 1;
                Ok((value >> lo) & Type::Bits(width).mask())
            }
            ExprKind::Call { callee, args, .. } => self.eval_call(callee, args, frame),
        }
    }

    fn eval_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        frame: &mut Frame,
    ) -> Result<u64, AstEvalError> {
        let func = self
            .program
            .functions
            .iter()
            .find(|f| f.name == *callee)
            .ok_or_else(|| AstEvalError::UnknownFunction(callee.to_string()))?;
        let mut env = Env::new();
        for (param, arg) in func.params.iter().zip(args) {
            match param.array_len {
                Some(_) => {
                    let ExprKind::Var(name) = &arg.kind else {
                        unreachable!("sema requires bare array arguments");
                    };
                    let contents = frame
                        .arrays
                        .get(name.as_str())
                        .map(|(c, _)| c.clone())
                        .unwrap_or_default();
                    env.set_array(&param.name, contents);
                }
                None => {
                    env.set_scalar(&param.name, self.eval(arg, frame)?);
                }
            }
        }
        let outcome = evaluate(self.program, self.analysis, callee, &env)?;
        Ok(outcome.return_value.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;
    use crate::sema::analyze_with_source;
    use spark_ir::Interpreter;

    fn both(source: &str, top: &str, env: &Env) -> (Outcome, Outcome) {
        let ast = parse(source).expect("parses");
        let analysis = analyze_with_source(&ast, source).expect("sema clean");
        let lowered = lower(&ast, &analysis);
        let interp = Interpreter::new(&lowered).run(top, env).expect("interp");
        let direct = evaluate(&ast, &analysis, top, env).expect("eval");
        (direct, interp)
    }

    fn assert_agree(source: &str, top: &str, env: &Env) {
        let (direct, interp) = both(source, top, env);
        assert_eq!(direct.return_value, interp.return_value, "return value");
        for (name, value) in &direct.scalars {
            assert_eq!(
                Some(*value),
                interp.scalar(name),
                "scalar `{name}` disagrees"
            );
        }
        for (name, contents) in &direct.arrays {
            assert_eq!(
                Some(contents.as_slice()),
                interp.array(name),
                "array `{name}` disagrees"
            );
        }
    }

    #[test]
    fn arithmetic_and_truncation_agree() {
        assert_agree(
            "u8 f(u8 a, u8 b) {\n  u8 x;\n  x = (a + b) * 3;\n  return x;\n}",
            "f",
            &Env::new().with_scalar("a", 200).with_scalar("b", 100),
        );
    }

    #[test]
    fn control_flow_agrees() {
        for a in [0u64, 5, 200] {
            assert_agree(
                "u8 f(u8 a) {\n  u8 x;\n  if (a > 100) { x = a - 100; } else { x = a; }\n  return x;\n}",
                "f",
                &Env::new().with_scalar("a", a),
            );
        }
    }

    #[test]
    fn loops_and_arrays_agree() {
        assert_agree(
            "u16 sum(u8 data[8]) {\n  u16 acc;\n  u16 i;\n  acc = 0;\n  for (i = 0; i <= 7; i = i + 1) { acc = acc + data[i]; }\n  return acc;\n}",
            "sum",
            &Env::new().with_array("data", vec![1, 2, 3, 4, 5, 6, 7, 8]),
        );
    }

    #[test]
    fn while_loop_agrees() {
        assert_agree(
            "int f() {\n  int x;\n  x = 1;\n  while (x < 100) { x = x * 2; }\n  return x;\n}",
            "f",
            &Env::new(),
        );
    }

    #[test]
    fn calls_agree() {
        assert_agree(
            "u8 inc(u8 x) { return x + 1; }\nu8 f(u8 a) {\n  u8 y;\n  y = inc(inc(a));\n  return y;\n}",
            "f",
            &Env::new().with_scalar("a", 254),
        );
    }

    #[test]
    fn oob_is_reported() {
        let source = "u8 f(u8 b[4], u8 i) { return b[i]; }";
        let ast = parse(source).unwrap();
        let analysis = analyze_with_source(&ast, source).unwrap();
        let err = evaluate(
            &ast,
            &analysis,
            "f",
            &Env::new().with_array("b", vec![0; 4]).with_scalar("i", 9),
        )
        .unwrap_err();
        assert!(matches!(err, AstEvalError::OutOfBounds { .. }));
    }
}
