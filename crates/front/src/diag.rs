//! Source spans and diagnostics.
//!
//! Every token, AST node and semantic error carries a [`Span`] of byte
//! offsets into the original source. Diagnostics resolve their span to a
//! 1-based `line:col` location eagerly (through [`LineMap`]) so they stay
//! meaningful after the source text is dropped, and render in the familiar
//! compiler shape `line:col: error: message`.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Maps byte offsets to 1-based line/column positions.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds the map for one source text.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (offset, byte) in source.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(offset as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// The 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        let col = offset - self.line_starts[line] + 1;
        (line as u32 + 1, col)
    }
}

/// A source-located error produced by the lexer, parser or semantic checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable description of the problem.
    pub message: String,
    /// The offending source range.
    pub span: Span,
    /// 1-based source line of `span.start`.
    pub line: u32,
    /// 1-based source column of `span.start`.
    pub col: u32,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: error: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Collects diagnostics, resolving spans to line/column eagerly.
#[derive(Debug)]
pub struct DiagSink {
    line_map: LineMap,
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// Creates a sink for one source text.
    pub fn new(source: &str) -> Self {
        DiagSink {
            line_map: LineMap::new(source),
            diags: Vec::new(),
        }
    }

    /// Records an error at `span`.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        let (line, col) = self.line_map.line_col(span.start);
        self.diags.push(Diagnostic {
            message: message.into(),
            span,
            line,
            col,
        });
    }

    /// True when no errors have been recorded.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Consumes the sink, yielding the recorded diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_map_resolves_lines_and_columns() {
        let map = LineMap::new("ab\ncde\n\nf");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(1), (1, 2));
        assert_eq!(map.line_col(3), (2, 1));
        assert_eq!(map.line_col(5), (2, 3));
        assert_eq!(map.line_col(7), (3, 1));
        assert_eq!(map.line_col(8), (4, 1));
    }

    #[test]
    fn diagnostics_render_line_col() {
        let mut sink = DiagSink::new("int f() {\n  x = 1;\n}");
        sink.error(Span::new(12, 13), "unknown variable `x`");
        let diags = sink.into_diagnostics();
        assert_eq!(diags[0].to_string(), "2:3: error: unknown variable `x`");
    }

    #[test]
    fn span_union() {
        assert_eq!(Span::new(3, 5).to(Span::new(1, 4)), Span::new(1, 5));
    }
}
