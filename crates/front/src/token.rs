//! Tokens of the SPARK-C surface language.

use crate::diag::Span;
use std::fmt;

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (also carries type names such as `u8`).
    Ident(String),
    /// An unsigned integer literal (decimal or `0x` hexadecimal).
    Int(u64),

    // Keywords.
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `out`
    KwOut,
    /// `bound`
    KwBound,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `?`
    Question,

    // Operators.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `++`
    PlusPlus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(value) => format!("integer `{value}`"),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwBool => "`bool`".into(),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwWhile => "`while`".into(),
            TokenKind::KwFor => "`for`".into(),
            TokenKind::KwReturn => "`return`".into(),
            TokenKind::KwTrue => "`true`".into(),
            TokenKind::KwFalse => "`false`".into(),
            TokenKind::KwOut => "`out`".into(),
            TokenKind::KwBound => "`bound`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Question => "`?`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Shl => "`<<`".into(),
            TokenKind::Shr => "`>>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::PlusPlus => "`++`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}
