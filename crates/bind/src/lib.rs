//! # spark-bind — register and functional-unit binding
//!
//! Binding support for the Spark HLS reproduction (Gupta et al., DAC 2002):
//! variable [`LifetimeAnalysis`] over scheduled control steps (deciding which
//! variables become registers and which collapse into wires — Section 3.1.2),
//! left-edge register allocation, functional-unit sharing between mutually
//! exclusive operations, and a steering-logic/area estimate consumed by the
//! RTL generator and the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use spark_bind::{Binding, LifetimeAnalysis};
//! use spark_ir::{FunctionBuilder, OpKind, Type, Value};
//! use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("f");
//! let a = b.param("a", Type::Bits(8));
//! let out = b.output("out", Type::Bits(8));
//! b.assign(OpKind::Add, out, vec![Value::Var(a), Value::word(1)]);
//! let f = b.finish();
//!
//! let graph = DependenceGraph::build(&f)?;
//! let library = ResourceLibrary::new();
//! let sched = schedule(&f, &graph, &library, &Constraints::microprocessor_block(10.0))?;
//! let lifetimes = LifetimeAnalysis::compute(&f, &sched);
//! let binding = Binding::compute(&f, &sched, &lifetimes, &library);
//! assert_eq!(binding.register_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod binding;
mod lifetime;

pub use binding::{Binding, FuInstance, PhysicalRegister};
pub use lifetime::{Lifetime, LifetimeAnalysis};
