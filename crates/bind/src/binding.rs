//! Register and functional-unit binding.
//!
//! Registers are allocated with the classical left-edge algorithm over the
//! variable lifetimes; functional units are shared between mutually exclusive
//! operations (Section 2 of the paper: "in synthesis, mutually exclusive
//! operations can be scheduled in the same clock cycle on the same
//! resource"), and the steering (multiplexer) cost of that sharing is
//! accounted for explicitly, since "mapping an operation to a resource can
//! lead to the generation of additional steering logic".

use spark_ir::{Function, OpId, PortDirection, SecondaryMap, VarId};
use spark_sched::{FuClass, ResourceLibrary, Schedule};

use crate::lifetime::LifetimeAnalysis;

/// A physical register produced by the left-edge allocator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhysicalRegister {
    /// Variables packed into this register (non-overlapping lifetimes).
    pub variables: Vec<VarId>,
    /// Width in bits (the widest packed variable).
    pub width: u16,
}

/// A bound functional-unit instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuInstance {
    /// Class of the unit.
    pub class: Option<FuClass>,
    /// Operations mapped onto it.
    pub ops: Vec<OpId>,
}

/// The complete binding of a scheduled function.
#[derive(Clone, Debug, Default)]
pub struct Binding {
    /// Physical registers after left-edge packing.
    pub registers: Vec<PhysicalRegister>,
    /// Register index per registered variable.
    pub register_of: SecondaryMap<VarId, usize>,
    /// Functional-unit instances per class.
    pub fu_instances: SecondaryMap<FuClass, Vec<FuInstance>>,
    /// Number of two-input multiplexers needed for operand steering.
    pub steering_muxes: usize,
    /// Estimated datapath area (gate-equivalents).
    pub area_estimate: f64,
}

impl Binding {
    /// Binds `function` given its schedule and lifetimes.
    pub fn compute(
        function: &Function,
        schedule: &Schedule,
        lifetimes: &LifetimeAnalysis,
        library: &ResourceLibrary,
    ) -> Self {
        let mut binding = Binding::default();

        // ---- Register binding: left-edge over lifetimes.
        let mut intervals: Vec<(VarId, crate::lifetime::Lifetime)> =
            lifetimes.registered.iter().map(|(v, &l)| (v, l)).collect();
        intervals.sort_by_key(|(v, l)| (l.first_def, l.last_use, *v));
        // Primary outputs keep dedicated registers (they are architectural
        // state visible at the ports); everything else may share.
        for (var, lifetime) in intervals {
            let width = function.vars[var].ty.width();
            let is_output = function.vars[var].direction == PortDirection::Output;
            let slot = if is_output {
                None
            } else {
                binding.registers.iter().position(|reg| {
                    reg.variables.iter().all(|&other| {
                        function.vars[other].direction != PortDirection::Output
                            && !lifetimes.registered[&other].overlaps(&lifetime)
                    })
                })
            };
            let index = match slot {
                Some(index) => index,
                None => {
                    binding.registers.push(PhysicalRegister::default());
                    binding.registers.len() - 1
                }
            };
            let register = &mut binding.registers[index];
            register.variables.push(var);
            register.width = register.width.max(width);
            binding.register_of.insert(var, index);
        }

        // ---- Functional-unit binding: reuse the scheduler's instance packing.
        for op_id in function.live_ops() {
            let Some(&instance) = schedule.op_instance.get(&op_id) else {
                continue;
            };
            let op = &function.ops[op_id];
            let class = FuClass::for_op(&op.kind);
            if class.is_free() || library.op_area(&op.kind, &op.args) == 0.0 {
                continue;
            }
            let instances = binding.fu_instances.get_or_insert_with(class, Vec::new);
            while instances.len() <= instance {
                instances.push(FuInstance {
                    class: Some(class),
                    ops: Vec::new(),
                });
            }
            instances[instance].ops.push(op_id);
        }

        // ---- Steering logic: a unit executing k > 1 operations needs a
        // (k-1)-deep 2:1 mux tree per operand port (2 ports assumed).
        binding.steering_muxes = binding
            .fu_instances
            .values()
            .flatten()
            .map(|fu| fu.ops.len().saturating_sub(1) * 2)
            .sum();

        // ---- Area estimate: units + registers + steering.
        let mut area = 0.0;
        for (class, instances) in &binding.fu_instances {
            area += library.spec(class).area
                * instances.iter().filter(|i| !i.ops.is_empty()).count() as f64;
        }
        for register in &binding.registers {
            area += library.register_bit_area * f64::from(register.width);
        }
        // Output arrays (e.g. Mark[]) are per-element registers.
        for (_, var) in function.vars.iter() {
            if var.direction == PortDirection::Output {
                if let Some(length) = var.array_length() {
                    area +=
                        library.register_bit_area * f64::from(var.ty.width()) * f64::from(length);
                }
            }
        }
        area += library.spec(FuClass::Mux).area * binding.steering_muxes as f64;
        binding.area_estimate = area;
        binding
    }

    /// Total number of physical registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Total number of (non-free) functional-unit instances.
    pub fn fu_count(&self) -> usize {
        self.fu_instances
            .values()
            .flatten()
            .filter(|i| !i.ops.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeAnalysis;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};
    use spark_sched::{schedule, Allocation, Constraints, DependenceGraph};

    fn bind(f: &Function, constraints: &Constraints) -> (Schedule, Binding) {
        let graph = DependenceGraph::build(f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(f, &graph, &lib, constraints).unwrap();
        let lifetimes = LifetimeAnalysis::compute(f, &sched);
        let binding = Binding::compute(f, &sched, &lifetimes, &lib);
        (sched, binding)
    }

    /// Sequential accumulations that are forced into separate states by a
    /// single-adder allocation.
    fn serial_design() -> Function {
        let mut b = FunctionBuilder::new("serial");
        let a = b.param("a", Type::Bits(8));
        let t0 = b.var("t0", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, t0, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, t1, vec![Value::Var(t0), Value::word(2)]);
        b.assign(OpKind::Add, t2, vec![Value::Var(t1), Value::word(3)]);
        b.assign(OpKind::Add, out, vec![Value::Var(t2), Value::word(4)]);
        b.finish()
    }

    #[test]
    fn left_edge_packs_disjoint_lifetimes() {
        let f = serial_design();
        // No chaining: each add in its own state, so t0..t2 have short,
        // staggered lifetimes that can share registers.
        let constraints = Constraints::microprocessor_block(10.0)
            .without_chaining()
            .with_allocation(Allocation::constrained().with_limit(FuClass::Adder, 1));
        let (sched, binding) = bind(&f, &constraints);
        assert_eq!(sched.num_states, 4);
        // t0 dies when t1 is born, etc.: left-edge shares one register for the
        // temporaries plus a dedicated register for the output.
        assert!(binding.register_count() <= 3);
        assert!(binding.register_of.len() >= 3);
        assert_eq!(binding.fu_instances[&FuClass::Adder].len(), 1);
        // One adder executing four ops needs steering muxes.
        assert!(binding.steering_muxes >= 6);
        assert!(binding.area_estimate > 0.0);
    }

    #[test]
    fn single_cycle_design_has_no_intermediate_registers() {
        let f = serial_design();
        let (sched, binding) = bind(&f, &Constraints::microprocessor_block(20.0));
        assert_eq!(sched.num_states, 1);
        // Only the primary output is registered.
        assert_eq!(binding.register_count(), 1);
        // Four adders, no sharing, no steering.
        assert_eq!(binding.fu_instances[&FuClass::Adder].len(), 4);
        assert_eq!(binding.steering_muxes, 0);
    }

    #[test]
    fn outputs_get_dedicated_registers() {
        let mut b = FunctionBuilder::new("two_outs");
        let a = b.param("a", Type::Bits(8));
        let x = b.output("x", Type::Bits(8));
        let y = b.output("y", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Sub, y, vec![Value::Var(a), Value::word(1)]);
        let f = b.finish();
        let (_, binding) = bind(&f, &Constraints::microprocessor_block(10.0));
        assert_eq!(binding.register_count(), 2);
        let rx = binding.register_of[&x];
        let ry = binding.register_of[&y];
        assert_ne!(rx, ry);
    }

    #[test]
    fn output_arrays_contribute_register_area() {
        let mut b = FunctionBuilder::new("marks");
        let mark = b.output_array("Mark", Type::Bool, 16);
        b.array_write(mark, Value::word(0), Value::bool(true));
        let f = b.finish();
        let (_, binding) = bind(&f, &Constraints::microprocessor_block(10.0));
        let lib = ResourceLibrary::new();
        assert!(binding.area_estimate >= lib.register_bit_area * 16.0);
    }
}
