//! Variable lifetime analysis over the scheduled control steps.
//!
//! "The Spark synthesis tool initially assumes that each variable in the
//! input behavioral description is mapped to a virtual register. After
//! scheduling, during register binding, a variable life-time analysis pass
//! determines which variables are actually mapped to registers"
//! (Section 3.1.2). A variable needs a register only if it carries a value
//! across a state boundary or holds an architectural result (a primary
//! output); wire-variables never get registers.

use spark_ir::{Function, PortDirection, SecondaryMap, VarId};
use spark_sched::Schedule;

/// The lifetime of one variable in terms of control steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lifetime {
    /// First state in which the variable is written.
    pub first_def: usize,
    /// Last state in which the variable is read (or written, for outputs).
    pub last_use: usize,
}

impl Lifetime {
    /// Returns `true` if this lifetime overlaps another (they cannot share a
    /// register).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.first_def <= other.last_use && other.first_def <= self.last_use
    }
}

/// Result of lifetime analysis.
#[derive(Clone, Debug, Default)]
pub struct LifetimeAnalysis {
    /// Variables that must be stored in registers, with their lifetimes.
    pub registered: SecondaryMap<VarId, Lifetime>,
    /// Variables that turn into plain wires (written and consumed within a
    /// single state, or explicitly marked as wire-variables).
    pub wires: Vec<VarId>,
}

impl LifetimeAnalysis {
    /// Analyses `function` under `schedule`.
    ///
    /// Arrays are excluded: input arrays are ports and output arrays are
    /// per-element registers counted by the datapath generator.
    pub fn compute(function: &Function, schedule: &Schedule) -> Self {
        let capacity = function.vars.len();
        let mut first_def: SecondaryMap<VarId, usize> = SecondaryMap::with_capacity(capacity);
        let mut last_def: SecondaryMap<VarId, usize> = SecondaryMap::with_capacity(capacity);
        let mut last_use: SecondaryMap<VarId, usize> = SecondaryMap::with_capacity(capacity);
        for op_id in function.live_ops() {
            let Some(&state) = schedule.op_state.get(&op_id) else {
                continue;
            };
            let op = &function.ops[op_id];
            for used in op.uses() {
                let entry = last_use.get_or_insert_with(used, || state);
                *entry = (*entry).max(state);
            }
            if let Some(defined) = op.def() {
                first_def.get_or_insert_with(defined, || state);
                let entry = last_def.get_or_insert_with(defined, || state);
                *entry = (*entry).max(state);
            }
        }

        let mut analysis = LifetimeAnalysis::default();
        for (var_id, var) in function.vars.iter() {
            if var.is_array() {
                continue;
            }
            if var.is_wire() {
                analysis.wires.push(var_id);
                continue;
            }
            let Some(&def_state) = first_def.get(&var_id) else {
                // Never written: an input port (or dead), not a register.
                continue;
            };
            let is_output = var.direction == PortDirection::Output;
            let read_state = last_use.get(&var_id).copied();
            let crosses_state = read_state.map(|r| r > def_state).unwrap_or(false);
            if is_output || crosses_state {
                let last = read_state
                    .unwrap_or(def_state)
                    .max(last_def.get(&var_id).copied().unwrap_or(def_state));
                analysis.registered.insert(
                    var_id,
                    Lifetime {
                        first_def: def_state,
                        last_use: last,
                    },
                );
            } else {
                analysis.wires.push(var_id);
            }
        }
        analysis
    }

    /// Number of variables that need registers.
    pub fn register_count(&self) -> usize {
        self.registered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};
    use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};

    fn analyse(f: &Function, period: f64) -> (Schedule, LifetimeAnalysis) {
        let graph = DependenceGraph::build(f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(f, &graph, &lib, &Constraints::microprocessor_block(period)).unwrap();
        let analysis = LifetimeAnalysis::compute(f, &sched);
        (sched, analysis)
    }

    #[test]
    fn single_cycle_intermediates_become_wires() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, out, vec![Value::Var(t), Value::word(2)]);
        let f = b.finish();
        let (sched, analysis) = analyse(&f, 10.0);
        assert_eq!(sched.num_states, 1);
        assert!(analysis.wires.contains(&t), "t lives within one cycle");
        assert!(
            analysis.registered.contains_key(&out),
            "outputs are registered"
        );
        assert_eq!(analysis.register_count(), 1);
    }

    #[test]
    fn multi_cycle_values_need_registers() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, out, vec![Value::Var(t), Value::word(2)]);
        let f = b.finish();
        // A 2.5 ns clock fits only one 2.0 ns adder per state.
        let (sched, analysis) = analyse(&f, 2.5);
        assert_eq!(sched.num_states, 2);
        assert!(
            analysis.registered.contains_key(&t),
            "t crosses a state boundary"
        );
        let lifetime = analysis.registered[&t];
        assert_eq!(lifetime.first_def, 0);
        assert_eq!(lifetime.last_use, 1);
    }

    #[test]
    fn explicit_wire_variables_are_never_registered() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let w = b.wire("w", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, w, vec![Value::Var(a), Value::word(1)]);
        b.copy(out, Value::Var(w));
        let f = b.finish();
        let (_, analysis) = analyse(&f, 10.0);
        assert!(analysis.wires.contains(&w));
        assert!(!analysis.registered.contains_key(&w));
    }

    #[test]
    fn lifetime_overlap() {
        let a = Lifetime {
            first_def: 0,
            last_use: 2,
        };
        let b = Lifetime {
            first_def: 2,
            last_use: 3,
        };
        let c = Lifetime {
            first_def: 3,
            last_use: 4,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }
}
