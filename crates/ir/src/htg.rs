//! The hierarchical task graph (HTG).
//!
//! Spark represents a behavioral description as a hierarchy of compound
//! nodes: basic blocks at the leaves, `if-then-else` nodes and loop nodes as
//! compound interior nodes, grouped into *regions* (ordered sequences of
//! nodes). Code motions such as speculation and Trailblazing move operations
//! across compound nodes without having to visit every basic block inside
//! them, and loop transformations (unrolling) operate on whole loop nodes.

use crate::arena::Id;
use crate::block::BlockId;
use crate::value::{Constant, Value};
use crate::var::VarId;

/// Typed id of an [`HtgNode`].
pub type NodeId = Id<HtgNode>;
/// Typed id of a [`Region`].
pub type RegionId = Id<Region>;

/// An ordered sequence of HTG nodes executed one after another.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Region {
    /// Nodes in execution order.
    pub nodes: Vec<NodeId>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Returns `true` if the region contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An `if-then-else` compound node.
///
/// The condition is a value (usually a boolean variable computed by an
/// earlier comparison); the two branches are regions. An empty else region
/// models a plain `if`.
#[derive(Clone, Debug, PartialEq)]
pub struct IfNode {
    /// Branch condition.
    pub cond: Value,
    /// Region executed when the condition is true.
    pub then_region: RegionId,
    /// Region executed when the condition is false (possibly empty).
    pub else_region: RegionId,
}

/// The iteration scheme of a loop node.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopKind {
    /// `for (index = start; index <= end; index += step)` — the form used by
    /// the ILD byte loop (Figure 10). `end` may be a constant or a variable;
    /// full unrolling requires it to be (or to become) a constant.
    For {
        /// Loop index variable.
        index: VarId,
        /// Initial value of the index.
        start: Constant,
        /// Inclusive upper bound.
        end: Value,
        /// Increment applied after each iteration (must be non-zero).
        step: i64,
    },
    /// `while (cond)` — used for the natural `while(1)` description of
    /// Figure 16. `cond` is evaluated at the loop head.
    While {
        /// Continuation condition (a constant `true` models `while(1)`).
        cond: Value,
    },
}

/// A loop compound node.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNode {
    /// Iteration scheme.
    pub kind: LoopKind,
    /// Loop body region.
    pub body: RegionId,
    /// Optional designer-supplied bound on the number of iterations, used by
    /// loop unrolling when the bound cannot be derived from `kind` (e.g. for
    /// `while(1)` loops over a finite buffer).
    pub trip_bound: Option<u64>,
}

/// A node of the hierarchical task graph.
#[derive(Clone, Debug, PartialEq)]
pub enum HtgNode {
    /// A leaf basic block.
    Block(BlockId),
    /// An `if-then-else` compound node.
    If(IfNode),
    /// A loop compound node.
    Loop(LoopNode),
}

impl HtgNode {
    /// Returns the block id if this node is a leaf basic block.
    pub fn as_block(&self) -> Option<BlockId> {
        match self {
            HtgNode::Block(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the if-node payload if this is a conditional node.
    pub fn as_if(&self) -> Option<&IfNode> {
        match self {
            HtgNode::If(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the loop payload if this is a loop node.
    pub fn as_loop(&self) -> Option<&LoopNode> {
        match self {
            HtgNode::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// Returns `true` for compound (non-leaf) nodes.
    pub fn is_compound(&self) -> bool {
        !matches!(self, HtgNode::Block(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn node_accessors() {
        let block = HtgNode::Block(BlockId::from_raw(0));
        assert_eq!(block.as_block(), Some(BlockId::from_raw(0)));
        assert!(block.as_if().is_none());
        assert!(!block.is_compound());

        let if_node = HtgNode::If(IfNode {
            cond: Value::bool(true),
            then_region: RegionId::from_raw(0),
            else_region: RegionId::from_raw(1),
        });
        assert!(if_node.as_if().is_some());
        assert!(if_node.is_compound());
        assert!(if_node.as_block().is_none());

        let loop_node = HtgNode::Loop(LoopNode {
            kind: LoopKind::While {
                cond: Value::bool(true),
            },
            body: RegionId::from_raw(2),
            trip_bound: Some(8),
        });
        assert!(loop_node.as_loop().is_some());
        assert!(loop_node.is_compound());
    }

    #[test]
    fn for_loop_kind_carries_bounds() {
        let kind = LoopKind::For {
            index: VarId::from_raw(0),
            start: Constant::new(1, Type::Bits(32)),
            end: Value::word(16),
            step: 1,
        };
        match kind {
            LoopKind::For { start, step, .. } => {
                assert_eq!(start.value(), 1);
                assert_eq!(step, 1);
            }
            _ => panic!("expected for loop"),
        }
    }

    #[test]
    fn region_default_is_empty() {
        assert!(Region::new().is_empty());
    }
}
