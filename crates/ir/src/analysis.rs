//! Def–use information over the live operations of a function.
//!
//! Several transformations (copy propagation, dead code elimination, the
//! wire-variable pass) need to know, for every variable, which live
//! operations read it and which write it. [`DefUse`] computes that once per
//! pass over the HTG; passes invalidate it simply by recomputing.

use std::collections::{BTreeMap, BTreeSet};

use crate::function::Function;
use crate::htg::{HtgNode, LoopKind};
use crate::op::OpId;
use crate::value::Value;
use crate::var::{PortDirection, VarId};

/// Def–use chains for one function.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    /// For each variable, the live operations that read it (in program order).
    pub uses: BTreeMap<VarId, Vec<OpId>>,
    /// For each variable, the live operations that write it (in program order).
    pub defs: BTreeMap<VarId, Vec<OpId>>,
    /// Variables read by control structure rather than operations: `if`
    /// conditions, `while` conditions and `for` bounds/indices. These have no
    /// defining [`OpId`] but still keep their producers alive.
    pub control_uses: BTreeSet<VarId>,
}

impl DefUse {
    /// Computes def–use chains over the live operations of `function`'s body.
    pub fn compute(function: &Function) -> Self {
        let mut info = DefUse::default();
        for op_id in function.live_ops() {
            let op = &function.ops[op_id];
            for used in op.uses_iter() {
                info.uses.entry(used).or_default().push(op_id);
            }
            if let Some(defined) = op.def() {
                info.defs.entry(defined).or_default().push(op_id);
            }
        }
        // Conditions and loop bounds are uses too: an operation computing an
        // `if` condition must never be considered dead.
        fn record(set: &mut BTreeSet<VarId>, value: Value) {
            if let Value::Var(v) = value {
                set.insert(v);
            }
        }
        for (_, node) in function.nodes.iter() {
            match node {
                HtgNode::Block(_) => {}
                HtgNode::If(i) => record(&mut info.control_uses, i.cond),
                HtgNode::Loop(l) => match &l.kind {
                    LoopKind::For { index, end, .. } => {
                        record(&mut info.control_uses, *end);
                        info.control_uses.insert(*index);
                    }
                    LoopKind::While { cond } => record(&mut info.control_uses, *cond),
                },
            }
        }
        info
    }

    /// Operations reading `var` (empty slice if none).
    pub fn uses_of(&self, var: VarId) -> &[OpId] {
        self.uses.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Operations writing `var` (empty slice if none).
    pub fn defs_of(&self, var: VarId) -> &[OpId] {
        self.defs.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if `var` has no live readers (neither operations nor
    /// control structure) and is not a primary output of the function — i.e.
    /// writes to it are dead unless they have other side effects.
    pub fn is_dead(&self, function: &Function, var: VarId) -> bool {
        self.uses_of(var).is_empty()
            && !self.control_uses.contains(&var)
            && function.vars[var].direction != PortDirection::Output
    }

    /// Returns `true` if `var` is written by exactly one live operation.
    pub fn has_single_def(&self, var: VarId) -> bool {
        self.defs_of(var).len() == 1
    }
}

/// Summary statistics of a function, used by reports and benchmarks to record
/// the effect of each transformation stage (operation counts per Figure of
/// the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FunctionStats {
    /// Live operations in the body.
    pub operations: usize,
    /// Basic blocks reachable from the body.
    pub blocks: usize,
    /// Conditional (`if`) HTG nodes.
    pub conditionals: usize,
    /// Loop HTG nodes.
    pub loops: usize,
    /// Maximum compound-node nesting depth.
    pub nesting_depth: usize,
    /// Declared variables (live or not).
    pub variables: usize,
}

impl FunctionStats {
    /// Gathers statistics for `function`.
    pub fn of(function: &Function) -> Self {
        FunctionStats {
            operations: function.live_op_count(),
            blocks: function.block_count(),
            conditionals: function.if_count(),
            loops: function.loop_count(),
            nesting_depth: function.nesting_depth(),
            variables: function.vars.len(),
        }
    }
}

impl std::fmt::Display for FunctionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops, {} blocks, {} ifs, {} loops, depth {}, {} vars",
            self.operations,
            self.blocks,
            self.conditionals,
            self.loops,
            self.nesting_depth,
            self.variables
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn def_use_chains() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let op1 = b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let op2 = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::Var(x)]);
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert_eq!(du.defs_of(x), &[op1]);
        assert_eq!(du.uses_of(x), &[op2, op2]);
        assert_eq!(du.uses_of(a), &[op1]);
        assert!(du.has_single_def(x));
        assert!(du.is_dead(&f, y));
        assert!(!du.is_dead(&f, x));
    }

    #[test]
    fn outputs_are_never_dead() {
        let mut b = FunctionBuilder::new("f");
        let o = b.output("o", Type::Bits(8));
        b.copy(o, Value::word(1));
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert!(!du.is_dead(&f, o));
    }

    #[test]
    fn stats_capture_structure() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.if_end();
        let f = b.finish();
        let stats = FunctionStats::of(&f);
        assert_eq!(stats.operations, 1);
        assert_eq!(stats.conditionals, 1);
        assert_eq!(stats.loops, 0);
        assert_eq!(stats.nesting_depth, 1);
        assert!(stats.to_string().contains("1 ops"));
    }
}
