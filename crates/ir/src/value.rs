//! Values: operands of operations.
//!
//! An operand is either a reference to a variable or an immediate constant.
//! After full loop unrolling and constant propagation (Figures 13–14 of the
//! paper) most index operands become constants, which is precisely what frees
//! the parallelizing code motions.

use crate::types::Type;
use crate::var::VarId;
use std::fmt;

/// A compile-time constant with an explicit width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Constant {
    /// The numeric value, already truncated to `ty.width()` bits.
    value: u64,
    /// The type (width) of the constant.
    ty: Type,
}

impl Constant {
    /// Creates a constant, truncating `value` to the width of `ty`.
    ///
    /// # Examples
    /// ```
    /// use spark_ir::{Constant, Type};
    /// let c = Constant::new(0x1FF, Type::Bits(8));
    /// assert_eq!(c.value(), 0xFF);
    /// ```
    pub fn new(value: u64, ty: Type) -> Self {
        Constant {
            value: value & ty.mask(),
            ty,
        }
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Self {
        Constant::new(b as u64, Type::Bool)
    }

    /// A 32-bit constant, the default integer width of the behavioral language.
    pub fn word(value: u64) -> Self {
        Constant::new(value, Type::Bits(32))
    }

    /// The numeric value (always `< 2^width`).
    pub fn value(self) -> u64 {
        self.value
    }

    /// The type of the constant.
    pub fn ty(self) -> Type {
        self.ty
    }

    /// Returns `true` if the constant is zero.
    pub fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Interprets the constant as a boolean (non-zero is true).
    pub fn as_bool(self) -> bool {
        self.value != 0
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::Bool => write!(f, "{}", if self.value != 0 { "true" } else { "false" }),
            Type::Bits(_) => write!(f, "{}", self.value),
        }
    }
}

/// An operand of an operation: a variable read or an immediate constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The current contents of a variable.
    Var(VarId),
    /// An immediate constant.
    Const(Constant),
}

impl Value {
    /// Convenience constructor for an immediate of the default (32-bit) width.
    pub fn word(value: u64) -> Self {
        Value::Const(Constant::word(value))
    }

    /// Convenience constructor for a boolean immediate.
    pub fn bool(b: bool) -> Self {
        Value::Const(Constant::bool(b))
    }

    /// Returns the variable id if this is a variable read.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Value::Var(v) => Some(v),
            Value::Const(_) => None,
        }
    }

    /// Returns the constant if this is an immediate.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Var(_) => None,
            Value::Const(c) => Some(c),
        }
    }

    /// Returns `true` if this operand is an immediate constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }
}

impl From<VarId> for Value {
    fn from(v: VarId) -> Self {
        Value::Var(v)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_truncates_to_width() {
        let c = Constant::new(300, Type::Bits(8));
        assert_eq!(c.value(), 300 & 0xFF);
        assert_eq!(c.ty(), Type::Bits(8));
    }

    #[test]
    fn bool_constants() {
        assert!(Constant::bool(true).as_bool());
        assert!(!Constant::bool(false).as_bool());
        assert!(Constant::bool(false).is_zero());
        assert_eq!(Constant::bool(true).to_string(), "true");
    }

    #[test]
    fn value_accessors() {
        let v = Value::word(5);
        assert!(v.is_const());
        assert_eq!(v.as_const().unwrap().value(), 5);
        assert!(v.as_var().is_none());

        let var = VarId::from_raw(3);
        let v = Value::Var(var);
        assert_eq!(v.as_var(), Some(var));
        assert!(v.as_const().is_none());
    }

    #[test]
    fn conversions() {
        let var = VarId::from_raw(0);
        let v: Value = var.into();
        assert_eq!(v, Value::Var(var));
        let c: Value = Constant::word(9).into();
        assert_eq!(c.as_const().unwrap().value(), 9);
    }
}
