//! Variables of a behavioral description.
//!
//! Spark initially assumes every variable maps to a virtual register; later,
//! register binding (after a variable lifetime analysis) decides what is truly
//! stored. *Wire-variables* (Section 3.1.2 of the paper) are explicitly marked
//! as wires so they may be read in the same cycle they are written, enabling
//! operation chaining across conditional boundaries.

use crate::arena::Id;
use crate::types::Type;
use std::fmt;

/// Typed id of a [`Var`] inside its owning function.
pub type VarId = Id<Var>;

/// How a variable is stored in the eventual hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageClass {
    /// A virtual register: may be bound to a real register after lifetime
    /// analysis. Reads observe the value written in a *previous* cycle.
    Register,
    /// A wire-variable: never registered; reads observe the value written in
    /// the *same* cycle. Introduced by the chaining transformation.
    Wire,
    /// A fixed-size array of scalars (e.g. the instruction buffer or `Mark[]`).
    Array {
        /// Number of elements.
        length: u32,
    },
}

impl StorageClass {
    /// Returns `true` for [`StorageClass::Wire`].
    pub fn is_wire(self) -> bool {
        matches!(self, StorageClass::Wire)
    }

    /// Returns `true` for [`StorageClass::Array`].
    pub fn is_array(self) -> bool {
        matches!(self, StorageClass::Array { .. })
    }
}

/// Direction of a variable with respect to the synthesized block's ports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortDirection {
    /// An internal variable, not visible at the block boundary.
    #[default]
    Internal,
    /// A primary input of the block (e.g. the instruction buffer bytes).
    Input,
    /// A primary output of the block (e.g. the `Mark[]` bit-vector).
    Output,
}

/// A named variable of the behavioral description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Var {
    /// Source-level (or synthesized) name. Not required to be unique, but the
    /// builder generates unique names for temporaries.
    pub name: String,
    /// Element type (for arrays, the element type).
    pub ty: Type,
    /// Register / wire / array storage.
    pub storage: StorageClass,
    /// Whether the variable is a primary input, primary output or internal.
    pub direction: PortDirection,
}

impl Var {
    /// Creates an internal register variable.
    pub fn register(name: impl Into<String>, ty: Type) -> Self {
        Var {
            name: name.into(),
            ty,
            storage: StorageClass::Register,
            direction: PortDirection::Internal,
        }
    }

    /// Creates an internal wire-variable.
    pub fn wire(name: impl Into<String>, ty: Type) -> Self {
        Var {
            name: name.into(),
            ty,
            storage: StorageClass::Wire,
            direction: PortDirection::Internal,
        }
    }

    /// Creates an array variable of `length` elements of type `ty`.
    pub fn array(name: impl Into<String>, ty: Type, length: u32) -> Self {
        Var {
            name: name.into(),
            ty,
            storage: StorageClass::Array { length },
            direction: PortDirection::Internal,
        }
    }

    /// Returns `true` if this is a wire-variable.
    pub fn is_wire(&self) -> bool {
        self.storage.is_wire()
    }

    /// Returns `true` if this is an array.
    pub fn is_array(&self) -> bool {
        self.storage.is_array()
    }

    /// Array length, or `None` for scalars.
    pub fn array_length(&self) -> Option<u32> {
        match self.storage {
            StorageClass::Array { length } => Some(length),
            _ => None,
        }
    }

    /// Marks the variable as a primary input and returns it (builder style).
    pub fn as_input(mut self) -> Self {
        self.direction = PortDirection::Input;
        self
    }

    /// Marks the variable as a primary output and returns it (builder style).
    pub fn as_output(mut self) -> Self {
        self.direction = PortDirection::Output;
        self
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.storage {
            StorageClass::Register => "reg",
            StorageClass::Wire => "wire",
            StorageClass::Array { length } => {
                return write!(f, "{}: {}[{}]", self.name, self.ty, length)
            }
        };
        write!(f, "{}: {} {}", self.name, kind, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_storage() {
        let r = Var::register("a", Type::Bits(8));
        assert_eq!(r.storage, StorageClass::Register);
        assert!(!r.is_wire());

        let w = Var::wire("t1", Type::Bits(8));
        assert!(w.is_wire());

        let arr = Var::array("mark", Type::Bool, 16);
        assert!(arr.is_array());
        assert_eq!(arr.array_length(), Some(16));
        assert_eq!(r.array_length(), None);
    }

    #[test]
    fn port_direction_markers() {
        let v = Var::array("buffer", Type::Bits(8), 16).as_input();
        assert_eq!(v.direction, PortDirection::Input);
        let v = Var::array("mark", Type::Bool, 16).as_output();
        assert_eq!(v.direction, PortDirection::Output);
        let v = Var::register("x", Type::Bits(32));
        assert_eq!(v.direction, PortDirection::Internal);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::register("a", Type::Bits(8)).to_string(), "a: reg u8");
        assert_eq!(Var::wire("t", Type::Bool).to_string(), "t: wire bool");
        assert_eq!(Var::array("m", Type::Bool, 4).to_string(), "m: bool[4]");
    }
}
