//! Basic blocks: maximal straight-line sequences of operations.

use crate::arena::Id;
use crate::op::OpId;

/// Typed id of a [`BasicBlock`] inside its owning function.
pub type BlockId = Id<BasicBlock>;

/// A straight-line sequence of operations with no internal control flow.
///
/// Blocks are the leaves of the hierarchical task graph. Operation order
/// within a block encodes the original program order; scheduling may later
/// place several operations of one block (and of different blocks) into the
/// same control step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BasicBlock {
    /// Human-readable label (`BB0`, `then.1`, ...), used by the printer and
    /// by diagnostics.
    pub label: String,
    /// Operation ids in program order. Dead operations are retained here and
    /// filtered by traversals.
    pub ops: Vec<OpId>,
}

impl BasicBlock {
    /// Creates an empty block with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        BasicBlock {
            label: label.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an operation to the end of the block.
    pub fn push(&mut self, op: OpId) {
        self.ops.push(op);
    }

    /// Inserts an operation at `index` (program order position).
    ///
    /// # Panics
    /// Panics if `index > self.ops.len()`.
    pub fn insert(&mut self, index: usize, op: OpId) {
        self.ops.insert(index, op);
    }

    /// Removes the first occurrence of `op` from the block, returning whether
    /// it was present.
    pub fn remove(&mut self, op: OpId) -> bool {
        if let Some(pos) = self.ops.iter().position(|&o| o == op) {
            self.ops.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of operation slots (including dead operations).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the block holds no operations at all.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_insert_remove() {
        let mut bb = BasicBlock::new("BB0");
        let a = OpId::from_raw(0);
        let b = OpId::from_raw(1);
        let c = OpId::from_raw(2);
        bb.push(a);
        bb.push(c);
        bb.insert(1, b);
        assert_eq!(bb.ops, vec![a, b, c]);
        assert!(bb.remove(b));
        assert!(!bb.remove(b));
        assert_eq!(bb.ops, vec![a, c]);
        assert_eq!(bb.len(), 2);
        assert!(!bb.is_empty());
    }

    #[test]
    fn empty_block() {
        let bb = BasicBlock::new("BB1");
        assert!(bb.is_empty());
        assert_eq!(bb.label, "BB1");
    }
}
