//! Typed index arenas.
//!
//! Every IR entity (variable, operation, basic block, HTG node, region) lives
//! in an arena owned by its [`Function`](crate::Function) and is referred to
//! by a small, copyable, typed id. This mirrors how Spark keeps its CDFG and
//! hierarchical task graph in flat tables and lets transformations clone and
//! splice program fragments cheaply.

use std::fmt;
use std::marker::PhantomData;

/// A typed index into an [`Arena`].
///
/// `Id<T>` is `Copy` and ordered, which makes it usable as a key in
/// `BTreeMap`/`BTreeSet` for deterministic iteration — determinism matters for
/// reproducible schedules and RTL output.
pub struct Id<T> {
    index: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Id<T> {
    /// Creates an id from a raw index. Intended for use by [`Arena`] and tests.
    #[inline]
    pub fn from_raw(index: u32) -> Self {
        Id {
            index,
            _marker: PhantomData,
        }
    }

    /// Returns the raw index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Returns the raw index as `u32`.
    #[inline]
    pub fn raw(self) -> u32 {
        self.index
    }
}

impl<T> Clone for Id<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Id<T> {}
impl<T> PartialEq for Id<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<T> Eq for Id<T> {}
impl<T> PartialOrd for Id<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Id<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}
impl<T> std::hash::Hash for Id<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}
impl<T> fmt::Debug for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.index)
    }
}

/// A growable, index-stable container of IR entities.
///
/// Entities are never removed from an arena (transformations mark them dead
/// instead); this keeps all outstanding ids valid for the lifetime of the
/// owning function.
#[derive(Clone, Debug)]
pub struct Arena<T> {
    items: Vec<T>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { items: Vec::new() }
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `item` and returns its id.
    pub fn alloc(&mut self, item: T) -> Id<T> {
        let id = Id::from_raw(self.items.len() as u32);
        self.items.push(item);
        id
    }

    /// Number of entities ever allocated (including dead ones).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Immutable access. Panics on an id from a different arena that is out of
    /// range.
    pub fn get(&self, id: Id<T>) -> &T {
        &self.items[id.index()]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: Id<T>) -> &mut T {
        &mut self.items[id.index()]
    }

    /// Checked access.
    pub fn try_get(&self, id: Id<T>) -> Option<&T> {
        self.items.get(id.index())
    }

    /// Iterates over `(id, &item)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<T>, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (Id::from_raw(i as u32), item))
    }

    /// Iterates over `(id, &mut item)` pairs in allocation order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Id<T>, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| (Id::from_raw(i as u32), item))
    }

    /// Iterates over all ids in allocation order.
    pub fn ids(&self) -> impl Iterator<Item = Id<T>> + '_ {
        (0..self.items.len() as u32).map(Id::from_raw)
    }
}

impl<T> std::ops::Index<Id<T>> for Arena<T> {
    type Output = T;
    fn index(&self, id: Id<T>) -> &T {
        self.get(id)
    }
}

impl<T> std::ops::IndexMut<Id<T>> for Arena<T> {
    fn index_mut(&mut self, id: Id<T>) -> &mut T {
        self.get_mut(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_roundtrip() {
        let mut arena: Arena<String> = Arena::new();
        let a = arena.alloc("a".to_string());
        let b = arena.alloc("b".to_string());
        assert_eq!(arena[a], "a");
        assert_eq!(arena[b], "b");
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
    }

    #[test]
    fn ids_are_ordered_by_allocation() {
        let mut arena: Arena<u32> = Arena::new();
        let a = arena.alloc(10);
        let b = arena.alloc(20);
        assert!(a < b);
        let collected: Vec<_> = arena.ids().collect();
        assert_eq!(collected, vec![a, b]);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut arena: Arena<u32> = Arena::new();
        arena.alloc(1);
        arena.alloc(2);
        for (_, v) in arena.iter_mut() {
            *v += 10;
        }
        let values: Vec<_> = arena.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![11, 12]);
    }

    #[test]
    fn try_get_out_of_range_is_none() {
        let arena: Arena<u32> = Arena::new();
        assert!(arena.try_get(Id::from_raw(3)).is_none());
    }

    #[test]
    fn id_debug_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Id::<u32>::from_raw(1));
        set.insert(Id::<u32>::from_raw(1));
        assert_eq!(set.len(), 1);
        assert_eq!(format!("{:?}", Id::<u32>::from_raw(7)), "Id(7)");
    }
}
