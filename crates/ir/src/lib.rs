//! # spark-ir — behavioral IR for the Spark HLS reproduction
//!
//! This crate provides the intermediate representation used throughout the
//! reproduction of *"Coordinated Transformations for High-Level Synthesis of
//! High Performance Microprocessor Blocks"* (Gupta et al., DAC 2002):
//!
//! * a variable-based (non-SSA) operation set ([`OpKind`], [`Operation`]),
//!   matching Spark's model in which every variable is initially a virtual
//!   register and *wire-variables* are explicitly marked;
//! * basic blocks and a **hierarchical task graph** ([`HtgNode`], [`Region`])
//!   with `if` and loop compound nodes, the structure on which speculative
//!   code motions and loop transformations operate;
//! * a structured [`FunctionBuilder`], a flattened [`Cfg`] with backward
//!   *chaining trails*, def–use analysis, a reference [`Interpreter`] (the
//!   golden semantics every transformation must preserve) and a structural
//!   [`verify`] pass.
//!
//! # Examples
//!
//! Build a small conditional function and execute it:
//!
//! ```
//! use spark_ir::{Env, FunctionBuilder, Interpreter, OpKind, Program, Type, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("abs_diff");
//! let x = b.param("x", Type::Bits(8));
//! let y = b.param("y", Type::Bits(8));
//! let out = b.var("out", Type::Bits(8));
//! let gt = b.compute(OpKind::Gt, Type::Bool, vec![Value::Var(x), Value::Var(y)]);
//! b.if_begin(Value::Var(gt));
//! b.assign(OpKind::Sub, out, vec![Value::Var(x), Value::Var(y)]);
//! b.else_begin();
//! b.assign(OpKind::Sub, out, vec![Value::Var(y), Value::Var(x)]);
//! b.if_end();
//! b.ret(Value::Var(out));
//!
//! let mut program = Program::new();
//! program.add_function(b.finish());
//! let outcome = Interpreter::new(&program)
//!     .run("abs_diff", &Env::new().with_scalar("x", 3).with_scalar("y", 10))?;
//! assert_eq!(outcome.return_value, Some(7));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod analysis;
mod arena;
mod block;
mod builder;
mod cfg;
mod defuse;
mod dense;
mod display;
mod function;
mod htg;
mod interp;
mod op;
mod program;
mod types;
mod value;
mod var;
mod verify;

pub use analysis::{DefUse, FunctionStats};
pub use arena::{Arena, Id};
pub use block::{BasicBlock, BlockId};
pub use builder::FunctionBuilder;
pub use cfg::{Cfg, CfgNode, CfgNodeKind, TrailCounter};
pub use defuse::{DefUseGraph, EditLog, Rewriter};
pub use dense::{DenseKey, SecondaryMap};
pub use function::Function;
pub use htg::{HtgNode, IfNode, LoopKind, LoopNode, NodeId, Region, RegionId};
pub use interp::{Env, EvalError, Interpreter, Outcome};
pub use op::{OpId, OpKind, Operation};
pub use program::Program;
pub use types::Type;
pub use value::{Constant, Value};
pub use var::{PortDirection, StorageClass, Var, VarId};
pub use verify::{verify, VerifyError};
