//! Operations: the nodes of the control/data flow graph.
//!
//! Each operation reads a small number of [`Value`] operands, optionally
//! writes a destination variable, and belongs to exactly one basic block.
//! Scheduling assigns operations to control steps; binding maps them onto
//! functional units.

use crate::arena::Id;
use crate::value::Value;
use crate::var::VarId;
use std::fmt;

/// Typed id of an [`Operation`] inside its owning function.
pub type OpId = Id<Operation>;

/// The computation performed by an operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dest = a + b`
    Add,
    /// `dest = a - b`
    Sub,
    /// `dest = a * b`
    Mul,
    /// `dest = a & b`
    And,
    /// `dest = a | b`
    Or,
    /// `dest = a ^ b`
    Xor,
    /// `dest = !a` (bitwise complement within the destination width)
    Not,
    /// `dest = a << b`
    Shl,
    /// `dest = a >> b` (logical)
    Shr,
    /// `dest = a == b`
    Eq,
    /// `dest = a != b`
    Ne,
    /// `dest = a < b` (unsigned)
    Lt,
    /// `dest = a <= b` (unsigned)
    Le,
    /// `dest = a > b` (unsigned)
    Gt,
    /// `dest = a >= b` (unsigned)
    Ge,
    /// `dest = a` — a variable copy. Copies are free in hardware (wires) and
    /// are inserted/removed liberally by the wire-variable transformation and
    /// copy propagation.
    Copy,
    /// `dest = cond ? a : b` — a multiplexer. Produced when control logic is
    /// collapsed into steering logic (speculation, Figure 11).
    Select,
    /// `dest = a[hi:lo]` — bit-field extraction; `hi`/`lo` are stored in the
    /// kind, the single operand is the source.
    Slice {
        /// Most-significant extracted bit (inclusive).
        hi: u16,
        /// Least-significant extracted bit (inclusive).
        lo: u16,
    },
    /// `dest = {a, b}` — bit concatenation, `a` forms the high bits.
    Concat,
    /// `dest = array[index]` — operands are `[index]`, the array is named by
    /// the kind so def/use analysis can distinguish element data flow.
    ArrayRead {
        /// The array variable being read.
        array: VarId,
    },
    /// `array[index] = value` — operands are `[index, value]`; there is no
    /// scalar destination. Array writes to output arrays are side effects.
    ArrayWrite {
        /// The array variable being written.
        array: VarId,
    },
    /// `dest = callee(args...)` — a call to another behavioral function.
    /// Removed by inlining before scheduling.
    Call {
        /// Name of the called function within the program.
        callee: String,
    },
    /// `return a` — terminates the function, yielding `a` as its result.
    Return,
}

impl OpKind {
    /// Returns `true` for comparison operations producing a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            OpKind::Eq | OpKind::Ne | OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge
        )
    }

    /// Returns `true` for two-operand arithmetic/logical operations whose
    /// operands may be commuted.
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Eq
                | OpKind::Ne
        )
    }

    /// Returns `true` if the operation has side effects beyond writing its
    /// destination variable (array writes, calls, returns). Such operations
    /// are never removed by dead code elimination on the basis of an unused
    /// destination alone.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            OpKind::ArrayWrite { .. } | OpKind::Call { .. } | OpKind::Return
        )
    }

    /// Number of value operands the kind expects, or `None` for variadic
    /// kinds (calls).
    pub fn arity(&self) -> Option<usize> {
        Some(match self {
            OpKind::Not | OpKind::Copy | OpKind::Slice { .. } | OpKind::Return => 1,
            OpKind::ArrayRead { .. } => 1,
            OpKind::ArrayWrite { .. } => 2,
            OpKind::Select => 3,
            OpKind::Call { .. } => return None,
            _ => 2,
        })
    }

    /// A short mnemonic used by the pretty-printer and RTL naming.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Gt => "gt",
            OpKind::Ge => "ge",
            OpKind::Copy => "copy",
            OpKind::Select => "select",
            OpKind::Slice { .. } => "slice",
            OpKind::Concat => "concat",
            OpKind::ArrayRead { .. } => "aread",
            OpKind::ArrayWrite { .. } => "awrite",
            OpKind::Call { .. } => "call",
            OpKind::Return => "return",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single operation of the behavioral description.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// What the operation computes.
    pub kind: OpKind,
    /// Destination variable, if the operation produces a scalar result.
    pub dest: Option<VarId>,
    /// Operand values, in positional order (see [`OpKind`] docs).
    pub args: Vec<Value>,
    /// Set when the operation has been removed by a transformation. Dead
    /// operations stay in the arena (ids remain stable) but are skipped by
    /// every traversal.
    pub dead: bool,
    /// Set when the operation was hoisted speculatively above the condition it
    /// originally depended on (Section 3 of the paper). Purely informational:
    /// used in reports and pretty-printing.
    pub speculative: bool,
}

impl Operation {
    /// Creates a new live operation.
    pub fn new(kind: OpKind, dest: Option<VarId>, args: Vec<Value>) -> Self {
        Operation {
            kind,
            dest,
            args,
            dead: false,
            speculative: false,
        }
    }

    /// Variables read by this operation (operands plus array sources).
    pub fn uses(&self) -> Vec<VarId> {
        self.uses_iter().collect()
    }

    /// Allocation-free variant of [`Operation::uses`], yielding one variable
    /// per operand *occurrence* (a twice-used variable appears twice) in the
    /// same order — for the analysis inner loops that visit every operation.
    pub fn uses_iter(&self) -> impl Iterator<Item = VarId> + '_ {
        let array = match self.kind {
            OpKind::ArrayRead { array } => Some(array),
            _ => None,
        };
        self.args.iter().filter_map(|v| v.as_var()).chain(array)
    }

    /// Variable defined by this operation: the scalar destination, or the
    /// array for an array write.
    pub fn def(&self) -> Option<VarId> {
        match self.kind {
            OpKind::ArrayWrite { array } => Some(array),
            _ => self.dest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn v(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    #[test]
    fn classification() {
        assert!(OpKind::Eq.is_comparison());
        assert!(!OpKind::Add.is_comparison());
        assert!(OpKind::Add.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(OpKind::ArrayWrite { array: v(0) }.has_side_effects());
        assert!(OpKind::Call { callee: "f".into() }.has_side_effects());
        assert!(!OpKind::Add.has_side_effects());
    }

    #[test]
    fn arity() {
        assert_eq!(OpKind::Add.arity(), Some(2));
        assert_eq!(OpKind::Not.arity(), Some(1));
        assert_eq!(OpKind::Select.arity(), Some(3));
        assert_eq!(OpKind::Call { callee: "f".into() }.arity(), None);
        assert_eq!(OpKind::ArrayWrite { array: v(0) }.arity(), Some(2));
    }

    #[test]
    fn uses_and_defs() {
        let op = Operation::new(
            OpKind::Add,
            Some(v(2)),
            vec![Value::Var(v(0)), Value::word(1)],
        );
        assert_eq!(op.uses(), vec![v(0)]);
        assert_eq!(op.def(), Some(v(2)));

        let read = Operation::new(
            OpKind::ArrayRead { array: v(5) },
            Some(v(1)),
            vec![Value::word(3)],
        );
        assert_eq!(read.uses(), vec![v(5)]);
        assert_eq!(read.def(), Some(v(1)));

        let write = Operation::new(
            OpKind::ArrayWrite { array: v(5) },
            None,
            vec![Value::word(3), Value::Var(v(1))],
        );
        assert_eq!(write.uses(), vec![v(1)]);
        assert_eq!(write.def(), Some(v(5)));
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(OpKind::Add.mnemonic(), "add");
        assert_eq!(OpKind::Select.to_string(), "select");
        assert_eq!(OpKind::Slice { hi: 3, lo: 0 }.mnemonic(), "slice");
    }
}
