//! Data types carried by variables and values.
//!
//! Spark operates on C integer types and maps them to bit-vectors in the
//! generated RTL. We keep the model minimal: booleans (conditions), unsigned
//! bit-vectors of a known width, and fixed-size arrays of bit-vectors (the
//! instruction buffer and the `Mark[]` output of the ILD).

use std::fmt;

/// The type of a scalar variable or constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// A single-bit condition value (`Need_2nd_Byte`, `cond`, ...).
    Bool,
    /// An unsigned bit-vector of the given width in bits (1..=64).
    Bits(u16),
}

impl Type {
    /// Width in bits of a value of this type.
    ///
    /// # Examples
    /// ```
    /// use spark_ir::Type;
    /// assert_eq!(Type::Bool.width(), 1);
    /// assert_eq!(Type::Bits(8).width(), 8);
    /// ```
    pub fn width(self) -> u16 {
        match self {
            Type::Bool => 1,
            Type::Bits(w) => w,
        }
    }

    /// Mask that keeps only the low `width()` bits of a `u64`.
    pub fn mask(self) -> u64 {
        let w = self.width();
        if w >= 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    /// Returns `true` for [`Type::Bool`].
    pub fn is_bool(self) -> bool {
        matches!(self, Type::Bool)
    }
}

impl Default for Type {
    fn default() -> Self {
        Type::Bits(32)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Bits(w) => write!(f, "u{w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_masks() {
        assert_eq!(Type::Bool.width(), 1);
        assert_eq!(Type::Bool.mask(), 1);
        assert_eq!(Type::Bits(4).mask(), 0xF);
        assert_eq!(Type::Bits(64).mask(), u64::MAX);
        assert_eq!(Type::Bits(32).mask(), 0xFFFF_FFFF);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::Bits(8).to_string(), "u8");
    }

    #[test]
    fn default_is_word() {
        assert_eq!(Type::default(), Type::Bits(32));
    }
}
