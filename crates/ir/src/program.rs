//! Programs: collections of behavioral functions.

use crate::function::Function;
use std::fmt;

/// A whole behavioral description: one or more functions, one of which is the
/// top-level block to synthesize (by convention the first, or the one named
/// explicitly when driving the pipeline).
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Functions in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a function and returns its index.
    pub fn add_function(&mut self, function: Function) -> usize {
        self.functions.push(function);
        self.functions.len() - 1
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Returns the index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Total number of live operations across all functions.
    pub fn total_live_ops(&self) -> usize {
        self.functions.iter().map(|f| f.live_op_count()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = Program::new();
        p.add_function(Function::new("main"));
        p.add_function(Function::new("helper"));
        assert!(p.function("main").is_some());
        assert!(p.function("missing").is_none());
        assert_eq!(p.function_index("helper"), Some(1));
        assert_eq!(p.total_live_ops(), 0);
    }

    #[test]
    fn function_mut_allows_edits() {
        let mut p = Program::new();
        p.add_function(Function::new("main"));
        p.function_mut("main").unwrap().name = "renamed".to_string();
        assert!(p.function("renamed").is_some());
    }
}
