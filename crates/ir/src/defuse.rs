//! Incrementally-maintained def–use information and the mutation API that
//! keeps it consistent.
//!
//! [`DefUse`](crate::DefUse) recomputes its chains from scratch on every
//! query round, which made the fine-grain transformation passes O(n) per
//! *change* instead of per *pass*. [`DefUseGraph`] stores the same
//! information in dense [`SecondaryMap`] side tables and is kept exactly
//! consistent through every edit by routing all IR mutations through a
//! [`Rewriter`]: operand replacement, whole-operation rewrites, erasure and
//! insertion all unlink and relink the affected chains in O(degree) time.
//!
//! The worklist-driven passes in `spark-transforms` are built on this pair:
//! they query the graph instead of rescanning the function, and they learn
//! which operations a previous pass touched from the rewriter's
//! [`EditLog`]. In debug builds the passes cross-check the incrementally
//! maintained graph against a from-scratch [`DefUseGraph::compute`] rebuild
//! after every run (see [`DefUseGraph::consistency_errors`]).

use crate::block::BlockId;
use crate::dense::SecondaryMap;
use crate::function::Function;
use crate::htg::{HtgNode, LoopKind};
use crate::op::{OpId, OpKind};
use crate::value::Value;
use crate::var::{PortDirection, VarId};

/// Dense def–use chains over the live operations of one function, designed
/// to be kept consistent through edits instead of recomputed.
///
/// The contents mirror [`DefUse`](crate::DefUse): per-variable use and def
/// chains over the live operations reachable from the function body, plus
/// the variables read by control structure (`if` conditions, loop bounds and
/// indices) of **every** HTG node in the arena — detached nodes included,
/// matching the recompute-based analysis, so a variable that was once a loop
/// bound keeps its producers alive. In addition the graph tracks the owning
/// block of every live operation, which turns erasure from an O(blocks)
/// scan into an O(1) lookup.
#[derive(Clone, Debug, Default)]
pub struct DefUseGraph {
    /// Per variable: live operations reading it, one entry per reading
    /// operand occurrence.
    uses: SecondaryMap<VarId, Vec<OpId>>,
    /// Per variable: live operations writing it (scalar destinations and
    /// array-write targets).
    defs: SecondaryMap<VarId, Vec<OpId>>,
    /// Per variable: number of control-structure sites reading it.
    control: SecondaryMap<VarId, u32>,
    /// Owning block of every live operation reachable from the body.
    op_block: SecondaryMap<OpId, BlockId>,
}

impl DefUseGraph {
    /// Builds the graph from scratch by walking the live operations and HTG
    /// nodes of `function`.
    pub fn compute(function: &Function) -> Self {
        let mut graph = DefUseGraph::default();
        for block in function.blocks_in_region(function.body) {
            for &op in &function.blocks[block].ops {
                if function.ops[op].dead {
                    continue;
                }
                graph.link_op(function, op);
                graph.op_block.insert(op, block);
            }
        }
        // Control reads come from every node ever allocated, live or
        // detached, mirroring `DefUse::compute`.
        let record = |value: Value, graph: &mut DefUseGraph| {
            if let Value::Var(v) = value {
                *graph.control.get_or_insert_with(v, || 0) += 1;
            }
        };
        for (_, node) in function.nodes.iter() {
            match node {
                HtgNode::Block(_) => {}
                HtgNode::If(i) => record(i.cond, &mut graph),
                HtgNode::Loop(l) => match &l.kind {
                    LoopKind::For { index, end, .. } => {
                        record(*end, &mut graph);
                        *graph.control.get_or_insert_with(*index, || 0) += 1;
                    }
                    LoopKind::While { cond } => record(*cond, &mut graph),
                },
            }
        }
        graph
    }

    /// Live operations reading `var`, one entry per operand occurrence.
    pub fn uses_of(&self, var: VarId) -> &[OpId] {
        self.uses.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Live operations writing `var`.
    pub fn defs_of(&self, var: VarId) -> &[OpId] {
        self.defs.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if `var` is written by exactly one live operation.
    pub fn has_single_def(&self, var: VarId) -> bool {
        self.defs_of(var).len() == 1
    }

    /// Returns `true` if `var` is read by control structure (an `if`
    /// condition, a loop bound or a loop index).
    pub fn is_control_used(&self, var: VarId) -> bool {
        self.control.get(&var).copied().unwrap_or(0) > 0
    }

    /// Returns `true` if `var` has no live readers (neither operations nor
    /// control structure) and is not a primary output — i.e. writes to it
    /// are dead unless they have other side effects. Mirrors
    /// [`DefUse::is_dead`](crate::DefUse::is_dead).
    pub fn is_dead(&self, function: &Function, var: VarId) -> bool {
        self.uses_of(var).is_empty()
            && !self.is_control_used(var)
            && function.vars[var].direction != PortDirection::Output
    }

    /// The block owning live operation `op`, if it is reachable from the
    /// function body.
    pub fn block_of(&self, op: OpId) -> Option<BlockId> {
        self.op_block.get(&op).copied()
    }

    /// Compares this (incrementally maintained) graph against a from-scratch
    /// rebuild, returning a description of every divergence. Chain order is
    /// compared as a multiset: maintenance preserves determinism but not
    /// program order within a chain.
    pub fn consistency_errors(&self, function: &Function) -> Vec<String> {
        let fresh = DefUseGraph::compute(function);
        let mut errors = Vec::new();
        let sorted = |ops: &[OpId]| {
            let mut v = ops.to_vec();
            v.sort_unstable();
            v
        };
        for (var, _) in function.vars.iter() {
            if sorted(self.uses_of(var)) != sorted(fresh.uses_of(var)) {
                errors.push(format!(
                    "uses of v{} diverged: {:?} vs fresh {:?}",
                    var.raw(),
                    self.uses_of(var),
                    fresh.uses_of(var)
                ));
            }
            if sorted(self.defs_of(var)) != sorted(fresh.defs_of(var)) {
                errors.push(format!(
                    "defs of v{} diverged: {:?} vs fresh {:?}",
                    var.raw(),
                    self.defs_of(var),
                    fresh.defs_of(var)
                ));
            }
            if self.is_control_used(var) != fresh.is_control_used(var) {
                errors.push(format!("control use of v{} diverged", var.raw()));
            }
        }
        for (op, _) in function.ops.iter() {
            if self.block_of(op) != fresh.block_of(op) {
                errors.push(format!(
                    "owning block of op{} diverged: {:?} vs fresh {:?}",
                    op.raw(),
                    self.block_of(op),
                    fresh.block_of(op)
                ));
            }
        }
        errors
    }

    /// Panics with a diagnostic if the graph has drifted from the function.
    ///
    /// The worklist passes call this (in debug builds) after every run, so a
    /// maintenance bug fails loudly at the pass that introduced it.
    pub fn assert_consistent(&self, function: &Function) {
        let errors = self.consistency_errors(function);
        assert!(
            errors.is_empty(),
            "DefUseGraph inconsistent with `{}`:\n  {}",
            function.name,
            errors.join("\n  ")
        );
    }

    // ------------------------------------------------------------------
    // Link maintenance (crate-internal; used by `Rewriter`)
    // ------------------------------------------------------------------

    fn link_use(&mut self, var: VarId, op: OpId) {
        self.uses.get_or_insert_with(var, Vec::new).push(op);
    }

    fn unlink_use(&mut self, var: VarId, op: OpId) {
        let chain = self
            .uses
            .get_mut(&var)
            .unwrap_or_else(|| panic!("no use chain for v{}", var.raw()));
        let position = chain
            .iter()
            .position(|&o| o == op)
            .unwrap_or_else(|| panic!("op{} not in use chain of v{}", op.raw(), var.raw()));
        chain.remove(position);
    }

    fn link_def(&mut self, var: VarId, op: OpId) {
        self.defs.get_or_insert_with(var, Vec::new).push(op);
    }

    fn unlink_def(&mut self, var: VarId, op: OpId) {
        let chain = self
            .defs
            .get_mut(&var)
            .unwrap_or_else(|| panic!("no def chain for v{}", var.raw()));
        let position = chain
            .iter()
            .position(|&o| o == op)
            .unwrap_or_else(|| panic!("op{} not in def chain of v{}", op.raw(), var.raw()));
        chain.remove(position);
    }

    /// Links every use and the def of a live operation.
    fn link_op(&mut self, function: &Function, op: OpId) {
        let data = &function.ops[op];
        for used in data.uses_iter() {
            self.link_use(used, op);
        }
        if let Some(defined) = data.def() {
            self.link_def(defined, op);
        }
    }

    fn unlink_op(&mut self, function: &Function, op: OpId) {
        let data = &function.ops[op];
        for used in data.uses_iter() {
            self.unlink_use(used, op);
        }
        if let Some(defined) = data.def() {
            self.unlink_def(defined, op);
        }
    }
}

/// What a sequence of [`Rewriter`] edits changed, for worklist seeding.
#[derive(Clone, Debug, Default)]
pub struct EditLog {
    /// Operations whose kind, operands or liveness changed (erased and
    /// inserted operations included). May contain duplicates.
    pub touched: Vec<OpId>,
    /// Variables that lost at least one reading operand occurrence — the
    /// candidates whose definitions dead-code elimination should re-examine.
    /// May contain duplicates.
    pub released: Vec<VarId>,
}

impl EditLog {
    /// Appends another log (e.g. from a later rewriter over the same graph).
    pub fn merge(&mut self, other: EditLog) {
        self.touched.extend(other.touched);
        self.released.extend(other.released);
    }
}

/// A mutation handle over a function that keeps a [`DefUseGraph`] exactly
/// consistent through every edit and records what changed.
///
/// All fine-grain passes go through this API; editing the function behind
/// the graph's back is what the debug-mode consistency check exists to
/// catch.
pub struct Rewriter<'a> {
    function: &'a mut Function,
    graph: &'a mut DefUseGraph,
    log: EditLog,
}

impl<'a> Rewriter<'a> {
    /// Wraps a function and its (consistent) graph.
    pub fn new(function: &'a mut Function, graph: &'a mut DefUseGraph) -> Self {
        Rewriter {
            function,
            graph,
            log: EditLog::default(),
        }
    }

    /// Read access to the function being edited.
    pub fn function(&self) -> &Function {
        self.function
    }

    /// Read access to the maintained graph.
    pub fn graph(&self) -> &DefUseGraph {
        self.graph
    }

    /// Replaces operand `index` of `op` with `value`, returning `true` if
    /// the operand actually changed.
    pub fn replace_operand(&mut self, op: OpId, index: usize, value: Value) -> bool {
        let old = self.function.ops[op].args[index];
        if old == value {
            return false;
        }
        if let Value::Var(v) = old {
            self.graph.unlink_use(v, op);
            self.log.released.push(v);
        }
        if let Value::Var(v) = value {
            self.graph.link_use(v, op);
        }
        self.function.ops[op].args[index] = value;
        self.log.touched.push(op);
        true
    }

    /// Replaces every operand occurrence of variable `from` with `to` across
    /// all live operations reading it. Returns the number of rewritten
    /// operands.
    pub fn replace_all_uses(&mut self, from: VarId, to: Value) -> usize {
        let readers: Vec<OpId> = self.graph.uses_of(from).to_vec();
        let mut count = 0;
        for op in readers {
            for index in 0..self.function.ops[op].args.len() {
                if self.function.ops[op].args[index] == Value::Var(from)
                    && self.replace_operand(op, index, to)
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// Rewrites the kind and operands of `op` in place (the destination is
    /// kept). Used to turn a computed operation into a `Copy` of a constant
    /// or an earlier result.
    pub fn rewrite_op(&mut self, op: OpId, kind: OpKind, args: Vec<Value>) {
        let old_uses = self.function.ops[op].uses();
        let old_def = self.function.ops[op].def();
        for v in old_uses {
            self.graph.unlink_use(v, op);
            self.log.released.push(v);
        }
        {
            let data = &mut self.function.ops[op];
            data.kind = kind;
            data.args = args;
        }
        let new_uses = self.function.ops[op].uses();
        let new_def = self.function.ops[op].def();
        for v in new_uses {
            self.graph.link_use(v, op);
        }
        if old_def != new_def {
            if let Some(d) = old_def {
                self.graph.unlink_def(d, op);
            }
            if let Some(d) = new_def {
                self.graph.link_def(d, op);
            }
        }
        self.log.touched.push(op);
    }

    /// Erases `op`: marks it dead, detaches it from its block and unlinks
    /// all of its chains. O(degree) — no block scan.
    pub fn erase_op(&mut self, op: OpId) {
        for v in self.function.ops[op].uses() {
            self.log.released.push(v);
        }
        self.graph.unlink_op(self.function, op);
        self.function.ops[op].dead = true;
        if let Some(block) = self.graph.op_block.remove(&op) {
            self.function.blocks[block].remove(op);
        }
        self.log.touched.push(op);
    }

    /// Creates a new live operation and inserts it into `block` at position
    /// `index`, linking its chains.
    pub fn insert_op(
        &mut self,
        block: BlockId,
        index: usize,
        kind: OpKind,
        dest: Option<VarId>,
        args: Vec<Value>,
    ) -> OpId {
        let op = self.function.add_op(kind, dest, args);
        self.function.blocks[block].insert(index, op);
        self.graph.link_op(self.function, op);
        self.graph.op_block.insert(op, block);
        self.log.touched.push(op);
        op
    }

    /// Finishes editing, returning the log of what changed.
    pub fn finish(self) -> EditLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Constant;

    fn sample() -> (Function, VarId, VarId, VarId) {
        // x = a + 1; y = x + x; out = y
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::Var(x)]);
        b.copy(out, Value::Var(y));
        (b.finish(), a, x, y)
    }

    #[test]
    fn compute_matches_recompute_based_analysis() {
        let (f, a, x, y) = sample();
        let graph = DefUseGraph::compute(&f);
        let old = crate::DefUse::compute(&f);
        assert_eq!(graph.uses_of(x), old.uses_of(x));
        assert_eq!(graph.defs_of(y), old.defs_of(y));
        assert_eq!(graph.uses_of(a), old.uses_of(a));
        assert!(graph.has_single_def(x));
        assert!(!graph.is_dead(&f, x));
        assert!(graph.consistency_errors(&f).is_empty());
    }

    #[test]
    fn replace_operand_keeps_graph_consistent() {
        let (mut f, _, x, _) = sample();
        let mut graph = DefUseGraph::compute(&f);
        let use_op = graph.defs_of(x)[0];
        let reader = graph.uses_of(x)[0];
        let mut rw = Rewriter::new(&mut f, &mut graph);
        assert!(rw.replace_operand(reader, 0, Value::word(7)));
        assert!(!rw.replace_operand(reader, 0, Value::word(7)), "idempotent");
        let log = rw.finish();
        assert_eq!(log.touched, vec![reader]);
        assert_eq!(log.released, vec![x]);
        assert_eq!(graph.uses_of(x).len(), 1);
        let _ = use_op;
        graph.assert_consistent(&f);
    }

    #[test]
    fn replace_all_uses_rewrites_every_occurrence() {
        let (mut f, _, x, _) = sample();
        let mut graph = DefUseGraph::compute(&f);
        let mut rw = Rewriter::new(&mut f, &mut graph);
        let n = rw.replace_all_uses(x, Value::Const(Constant::word(3)));
        assert_eq!(n, 2);
        rw.finish();
        assert!(graph.uses_of(x).is_empty());
        graph.assert_consistent(&f);
    }

    #[test]
    fn rewrite_and_erase_keep_graph_consistent() {
        let (mut f, a, x, y) = sample();
        let mut graph = DefUseGraph::compute(&f);
        let def_y = graph.defs_of(y)[0];
        let mut rw = Rewriter::new(&mut f, &mut graph);
        // y = x + x  becomes  y = copy a
        rw.rewrite_op(def_y, OpKind::Copy, vec![Value::Var(a)]);
        rw.finish();
        assert!(graph.uses_of(x).is_empty());
        assert_eq!(graph.uses_of(a).len(), 2);
        graph.assert_consistent(&f);

        let def_x = graph.defs_of(x)[0];
        let mut rw = Rewriter::new(&mut f, &mut graph);
        rw.erase_op(def_x);
        let log = rw.finish();
        assert!(log.released.contains(&a));
        assert!(f.ops[def_x].dead);
        assert!(graph.block_of(def_x).is_none());
        assert!(graph.defs_of(x).is_empty());
        graph.assert_consistent(&f);
    }

    #[test]
    fn insert_op_links_the_new_operation() {
        let (mut f, a, x, _) = sample();
        let mut graph = DefUseGraph::compute(&f);
        let block = graph.block_of(graph.defs_of(x)[0]).unwrap();
        let mut rw = Rewriter::new(&mut f, &mut graph);
        let t = rw.insert_op(block, 0, OpKind::Not, None, vec![Value::Var(a)]);
        rw.finish();
        assert!(graph.uses_of(a).contains(&t));
        assert_eq!(graph.block_of(t), Some(block));
        graph.assert_consistent(&f);
    }

    #[test]
    fn control_uses_cover_detached_nodes() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.if_end();
        let f = b.finish();
        let graph = DefUseGraph::compute(&f);
        assert!(graph.is_control_used(c));
        assert!(!graph.is_dead(&f, c));
    }

    #[test]
    fn consistency_check_reports_drift() {
        let (mut f, _, x, _) = sample();
        let graph = DefUseGraph::compute(&f);
        // Edit behind the graph's back: kill the def of x.
        let def_x = graph.defs_of(x)[0];
        f.kill_op(def_x);
        assert!(!graph.consistency_errors(&f).is_empty());
    }
}
