//! Structural well-formedness checks.
//!
//! Transformations are required to keep the IR well formed; the test suites
//! call [`verify`] after every pass (and property tests call it on generated
//! programs) to catch structural corruption early: dangling ids, operations
//! owned by two blocks, wrong operand counts, and the like.

use std::collections::BTreeSet;
use std::fmt;

use crate::function::Function;
use crate::htg::{HtgNode, LoopKind, RegionId};
use crate::op::OpKind;
use crate::value::Value;

/// A single well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the violation was found.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies the structural invariants of a function.
///
/// # Errors
/// Returns every violation found (an empty `Ok(())` means the function is
/// well formed).
pub fn verify(function: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let mut err = |message: String| {
        errors.push(VerifyError {
            function: function.name.clone(),
            message,
        });
    };

    // 1. Region tree: every node appears in at most one region, the body is a
    //    valid region, and all referenced regions/blocks exist.
    let mut seen_nodes = BTreeSet::new();
    let mut seen_regions = BTreeSet::new();
    let mut stack: Vec<RegionId> = vec![function.body];
    while let Some(region) = stack.pop() {
        if !seen_regions.insert(region) {
            err(format!("region {region:?} reachable twice"));
            continue;
        }
        let Some(region_data) = function.regions.try_get(region) else {
            err(format!("dangling region id {region:?}"));
            continue;
        };
        for &node in &region_data.nodes {
            if !seen_nodes.insert(node) {
                err(format!("HTG node {node:?} appears in more than one region"));
            }
            let Some(node_data) = function.nodes.try_get(node) else {
                err(format!("dangling node id {node:?}"));
                continue;
            };
            match node_data {
                HtgNode::Block(b) => {
                    if function.blocks.try_get(*b).is_none() {
                        err(format!("dangling block id {b:?}"));
                    }
                }
                HtgNode::If(i) => {
                    stack.push(i.then_region);
                    stack.push(i.else_region);
                    check_value(function, i.cond, "if condition", &mut err);
                }
                HtgNode::Loop(l) => {
                    stack.push(l.body);
                    match &l.kind {
                        LoopKind::For {
                            index, end, step, ..
                        } => {
                            if function.vars.try_get(*index).is_none() {
                                err(format!("loop index {index:?} is dangling"));
                            }
                            check_value(function, *end, "loop bound", &mut err);
                            if *step == 0 {
                                err("loop step must be non-zero".to_string());
                            }
                        }
                        LoopKind::While { cond } => {
                            check_value(function, *cond, "while condition", &mut err)
                        }
                    }
                }
            }
        }
    }

    // 2. Each live operation appears in exactly one block reachable from the
    //    body; operands and destinations reference declared variables and
    //    match the kind's arity.
    let mut op_owner = BTreeSet::new();
    for block in function.blocks_in_region(function.body) {
        for &op_id in &function.blocks[block].ops {
            let Some(op) = function.ops.try_get(op_id) else {
                err(format!("dangling op id {op_id:?} in block {block:?}"));
                continue;
            };
            if op.dead {
                continue;
            }
            if !op_owner.insert(op_id) {
                err(format!(
                    "operation {op_id:?} appears in more than one block"
                ));
            }
            if let Some(arity) = op.kind.arity() {
                if op.args.len() != arity {
                    err(format!(
                        "operation {op_id:?} ({}) has {} operands, expected {arity}",
                        op.kind,
                        op.args.len()
                    ));
                }
            }
            for &arg in &op.args {
                check_value(function, arg, "operand", &mut err);
            }
            if let Some(dest) = op.dest {
                if function.vars.try_get(dest).is_none() {
                    err(format!(
                        "operation {op_id:?} writes dangling variable {dest:?}"
                    ));
                } else if function.vars[dest].is_array() {
                    err(format!(
                        "operation {op_id:?} writes array `{}` as a scalar",
                        function.vars[dest].name
                    ));
                }
            }
            match &op.kind {
                OpKind::ArrayRead { array } | OpKind::ArrayWrite { array } => {
                    match function.vars.try_get(*array) {
                        None => err(format!(
                            "operation {op_id:?} references dangling array {array:?}"
                        )),
                        Some(var) if !var.is_array() => err(format!(
                            "operation {op_id:?} indexes non-array `{}`",
                            var.name
                        )),
                        _ => {}
                    }
                }
                _ => {}
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_value(function: &Function, value: Value, what: &str, err: &mut impl FnMut(String)) {
    if let Value::Var(v) = value {
        if function.vars.try_get(v).is_none() {
            err(format!("{what} references dangling variable {v:?}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::{OpKind, Operation};
    use crate::types::Type;
    use crate::value::Value;
    use crate::var::VarId;

    #[test]
    fn well_formed_function_passes() {
        let mut b = FunctionBuilder::new("ok");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(a));
        b.copy(x, Value::word(1));
        b.if_end();
        let f = b.finish();
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn dangling_variable_is_reported() {
        let mut f = Function::new("bad");
        let bb = f.add_block("BB0");
        let node = f.add_block_node(bb);
        let body = f.body;
        f.region_push(body, node);
        // Reference a variable that was never declared.
        let ghost = VarId::from_raw(42);
        let op = f.ops.alloc(Operation::new(
            OpKind::Copy,
            Some(ghost),
            vec![Value::word(1)],
        ));
        f.blocks[bb].push(op);
        let errors = verify(&f).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| e.message.contains("dangling variable")));
    }

    #[test]
    fn wrong_arity_is_reported() {
        let mut f = Function::new("bad");
        let x = f.add_var(crate::var::Var::register("x", Type::Bits(8)));
        let bb = f.add_block("BB0");
        let node = f.add_block_node(bb);
        let body = f.body;
        f.region_push(body, node);
        let op = f
            .ops
            .alloc(Operation::new(OpKind::Add, Some(x), vec![Value::word(1)]));
        f.blocks[bb].push(op);
        let errors = verify(&f).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("expected 2")));
    }

    #[test]
    fn duplicated_op_is_reported() {
        let mut f = Function::new("bad");
        let x = f.add_var(crate::var::Var::register("x", Type::Bits(8)));
        let bb1 = f.add_block("BB0");
        let bb2 = f.add_block("BB1");
        let n1 = f.add_block_node(bb1);
        let n2 = f.add_block_node(bb2);
        let body = f.body;
        f.region_push(body, n1);
        f.region_push(body, n2);
        let op = f
            .ops
            .alloc(Operation::new(OpKind::Copy, Some(x), vec![Value::word(1)]));
        f.blocks[bb1].push(op);
        f.blocks[bb2].push(op);
        let errors = verify(&f).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| e.message.contains("more than one block")));
    }

    #[test]
    fn scalar_write_to_array_is_reported() {
        let mut f = Function::new("bad");
        let arr = f.add_var(crate::var::Var::array("m", Type::Bool, 4));
        let bb = f.add_block("BB0");
        let node = f.add_block_node(bb);
        let body = f.body;
        f.region_push(body, node);
        let op = f.ops.alloc(Operation::new(
            OpKind::Copy,
            Some(arr),
            vec![Value::word(1)],
        ));
        f.blocks[bb].push(op);
        let errors = verify(&f).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("as a scalar")));
    }
}
