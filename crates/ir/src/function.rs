//! Behavioral functions: the unit of synthesis.

use std::collections::{BTreeMap, HashMap};

use crate::arena::Arena;
use crate::block::{BasicBlock, BlockId};
use crate::htg::{HtgNode, IfNode, LoopKind, LoopNode, NodeId, Region, RegionId};
use crate::op::{OpId, OpKind, Operation};
use crate::types::Type;
use crate::value::Value;
use crate::var::{PortDirection, Var, VarId};

/// A behavioral function: parameters, variables, operations and a
/// hierarchical task graph describing its control structure.
///
/// A function is the unit on which transformations, scheduling, binding and
/// RTL generation operate. The top-level function of a
/// [`Program`](crate::Program) describes the synthesized block; other
/// functions (such as the ILD's `CalculateLength`) are callees that inlining
/// folds into their callers.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name, unique within its program.
    pub name: String,
    /// Parameter variables in declaration order.
    pub params: Vec<VarId>,
    /// Declared return type, if the function returns a value.
    pub return_type: Option<Type>,
    /// All variables (parameters, locals, temporaries, arrays).
    pub vars: Arena<Var>,
    /// All operations, live and dead.
    pub ops: Arena<Operation>,
    /// All basic blocks.
    pub blocks: Arena<BasicBlock>,
    /// All HTG nodes.
    pub nodes: Arena<HtgNode>,
    /// All regions.
    pub regions: Arena<Region>,
    /// The top-level region: the function body.
    pub body: RegionId,
    /// Counter used to generate unique temporary names.
    next_temp: u32,
    /// First-declaration name → id index backing [`Function::var_by_name`].
    /// Maintained by [`Function::add_var`]; names are immutable after
    /// declaration, so the index never goes stale.
    name_index: HashMap<String, VarId>,
}

impl Function {
    /// Creates an empty function with an empty body region.
    pub fn new(name: impl Into<String>) -> Self {
        let mut regions = Arena::new();
        let body = regions.alloc(Region::new());
        Function {
            name: name.into(),
            params: Vec::new(),
            return_type: None,
            vars: Arena::new(),
            ops: Arena::new(),
            blocks: Arena::new(),
            nodes: Arena::new(),
            regions,
            body,
            next_temp: 0,
            name_index: HashMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Entity creation
    // ------------------------------------------------------------------

    /// Declares a variable and returns its id.
    pub fn add_var(&mut self, var: Var) -> VarId {
        let name = var.name.clone();
        let id = self.vars.alloc(var);
        // First declaration wins, preserving `var_by_name`'s historical
        // first-match semantics for duplicate names.
        self.name_index.entry(name).or_insert(id);
        id
    }

    /// Declares a parameter variable. Parameters default to primary inputs.
    pub fn add_param(&mut self, mut var: Var) -> VarId {
        if var.direction == PortDirection::Internal {
            var.direction = PortDirection::Input;
        }
        let id = self.add_var(var);
        self.params.push(id);
        id
    }

    /// Creates a fresh uniquely-named register temporary of type `ty`.
    pub fn fresh_temp(&mut self, prefix: &str, ty: Type) -> VarId {
        let name = format!("{prefix}_{}", self.next_temp);
        self.next_temp += 1;
        self.add_var(Var::register(name, ty))
    }

    /// Creates a fresh uniquely-named wire-variable of type `ty`.
    pub fn fresh_wire(&mut self, prefix: &str, ty: Type) -> VarId {
        let name = format!("{prefix}_{}", self.next_temp);
        self.next_temp += 1;
        self.add_var(Var::wire(name, ty))
    }

    /// Creates an empty basic block.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        self.blocks.alloc(BasicBlock::new(label))
    }

    /// Creates an empty region.
    pub fn add_region(&mut self) -> RegionId {
        self.regions.alloc(Region::new())
    }

    /// Creates an operation (not yet placed into any block).
    pub fn add_op(&mut self, kind: OpKind, dest: Option<VarId>, args: Vec<Value>) -> OpId {
        self.ops.alloc(Operation::new(kind, dest, args))
    }

    /// Creates an operation and appends it to `block`.
    pub fn push_op(
        &mut self,
        block: BlockId,
        kind: OpKind,
        dest: Option<VarId>,
        args: Vec<Value>,
    ) -> OpId {
        let op = self.add_op(kind, dest, args);
        self.blocks[block].push(op);
        op
    }

    /// Wraps a basic block into a leaf HTG node.
    pub fn add_block_node(&mut self, block: BlockId) -> NodeId {
        self.nodes.alloc(HtgNode::Block(block))
    }

    /// Creates an `if` HTG node.
    pub fn add_if_node(
        &mut self,
        cond: Value,
        then_region: RegionId,
        else_region: RegionId,
    ) -> NodeId {
        self.nodes.alloc(HtgNode::If(IfNode {
            cond,
            then_region,
            else_region,
        }))
    }

    /// Creates a loop HTG node.
    pub fn add_loop_node(
        &mut self,
        kind: LoopKind,
        body: RegionId,
        trip_bound: Option<u64>,
    ) -> NodeId {
        self.nodes.alloc(HtgNode::Loop(LoopNode {
            kind,
            body,
            trip_bound,
        }))
    }

    /// Appends a node to a region.
    pub fn region_push(&mut self, region: RegionId, node: NodeId) {
        self.regions[region].nodes.push(node);
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// All basic blocks inside `region`, in execution order, recursing into
    /// compound nodes (then-branch before else-branch, loop bodies inline).
    pub fn blocks_in_region(&self, region: RegionId) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.collect_blocks(region, &mut out);
        out
    }

    fn collect_blocks(&self, region: RegionId, out: &mut Vec<BlockId>) {
        for &node in &self.regions[region].nodes {
            match &self.nodes[node] {
                HtgNode::Block(b) => out.push(*b),
                HtgNode::If(i) => {
                    self.collect_blocks(i.then_region, out);
                    self.collect_blocks(i.else_region, out);
                }
                HtgNode::Loop(l) => self.collect_blocks(l.body, out),
            }
        }
    }

    /// All live operations inside `region` in program order.
    pub fn ops_in_region(&self, region: RegionId) -> Vec<OpId> {
        self.blocks_in_region(region)
            .into_iter()
            .flat_map(|b| self.blocks[b].ops.iter().copied())
            .filter(|&op| !self.ops[op].dead)
            .collect()
    }

    /// All live operations of the function body in program order.
    pub fn live_ops(&self) -> Vec<OpId> {
        self.ops_in_region(self.body)
    }

    /// Number of live operations in the function body.
    pub fn live_op_count(&self) -> usize {
        self.live_ops().len()
    }

    /// Number of basic blocks reachable from the function body.
    pub fn block_count(&self) -> usize {
        self.blocks_in_region(self.body).len()
    }

    /// Maximum nesting depth of compound nodes in the body (a straight-line
    /// function has depth 0).
    pub fn nesting_depth(&self) -> usize {
        self.region_depth(self.body)
    }

    fn region_depth(&self, region: RegionId) -> usize {
        self.regions[region]
            .nodes
            .iter()
            .map(|&node| match &self.nodes[node] {
                HtgNode::Block(_) => 0,
                HtgNode::If(i) => {
                    1 + self
                        .region_depth(i.then_region)
                        .max(self.region_depth(i.else_region))
                }
                HtgNode::Loop(l) => 1 + self.region_depth(l.body),
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of loop nodes reachable from the body.
    pub fn loop_count(&self) -> usize {
        fn walk(f: &Function, region: RegionId, count: &mut usize) {
            for &node in &f.regions[region].nodes {
                match &f.nodes[node] {
                    HtgNode::Block(_) => {}
                    HtgNode::If(i) => {
                        walk(f, i.then_region, count);
                        walk(f, i.else_region, count);
                    }
                    HtgNode::Loop(l) => {
                        *count += 1;
                        walk(f, l.body, count);
                    }
                }
            }
        }
        let mut count = 0;
        walk(self, self.body, &mut count);
        count
    }

    /// Number of conditional (`if`) nodes reachable from the body.
    pub fn if_count(&self) -> usize {
        fn walk(f: &Function, region: RegionId, count: &mut usize) {
            for &node in &f.regions[region].nodes {
                match &f.nodes[node] {
                    HtgNode::Block(_) => {}
                    HtgNode::If(i) => {
                        *count += 1;
                        walk(f, i.then_region, count);
                        walk(f, i.else_region, count);
                    }
                    HtgNode::Loop(l) => walk(f, l.body, count),
                }
            }
        }
        let mut count = 0;
        walk(self, self.body, &mut count);
        count
    }

    /// Looks up the block that contains `op`, if any (searching live blocks).
    ///
    /// This scans every block; passes that need the owning block of many
    /// operations should build the dense index once with
    /// [`Function::op_blocks`] instead.
    pub fn block_of(&self, op: OpId) -> Option<BlockId> {
        self.blocks
            .iter()
            .find(|(_, bb)| bb.ops.contains(&op))
            .map(|(id, _)| id)
    }

    /// Builds the operation → containing-block index in one pass over all
    /// blocks. Detached (dead) operations are absent from the map.
    pub fn op_blocks(&self) -> crate::SecondaryMap<OpId, BlockId> {
        let mut map = crate::SecondaryMap::with_capacity(self.ops.len());
        for (block, bb) in self.blocks.iter() {
            for &op in &bb.ops {
                map.insert(op, block);
            }
        }
        map
    }

    /// Finds a variable by name (first match, O(1)).
    ///
    /// Backed by a name index maintained at declaration time — this is a hot
    /// path for the frontend lowering, which resolves every identifier
    /// through it.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.name_index.get(name).copied()
    }

    /// Primary output variables of the function.
    pub fn outputs(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|(_, v)| v.direction == PortDirection::Output)
            .map(|(id, _)| id)
            .collect()
    }

    /// Primary input variables (parameters plus any input-marked variables).
    pub fn inputs(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|(_, v)| v.direction == PortDirection::Input)
            .map(|(id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Mutation helpers used by transformations
    // ------------------------------------------------------------------

    /// Marks an operation dead and detaches it from its block.
    pub fn kill_op(&mut self, op: OpId) {
        self.ops[op].dead = true;
        if let Some(block) = self.block_of(op) {
            self.blocks[block].remove(op);
        }
    }

    /// Replaces every use of variable `from` with `to` in all live operations
    /// (operand positions only; destinations are untouched). Returns the
    /// number of rewritten operands.
    pub fn replace_uses(&mut self, from: VarId, to: Value) -> usize {
        let mut count = 0;
        for (_, op) in self.ops.iter_mut() {
            if op.dead {
                continue;
            }
            for arg in &mut op.args {
                if *arg == Value::Var(from) {
                    *arg = to;
                    count += 1;
                }
            }
        }
        count
    }

    /// Deep-clones `region` (its nodes, blocks and operations) applying the
    /// variable substitution `var_map` to every operand, destination and loop
    /// index. Variables not present in the map are shared with the original.
    ///
    /// Used by loop unrolling (each iteration body is a clone), inlining
    /// (callee body cloned into the caller) and conditional speculation
    /// (duplicating operations into both branches).
    pub fn clone_region_mapped(
        &mut self,
        region: RegionId,
        var_map: &BTreeMap<VarId, VarId>,
    ) -> RegionId {
        let map_var = |v: VarId, map: &BTreeMap<VarId, VarId>| *map.get(&v).unwrap_or(&v);
        let map_val = |val: Value, map: &BTreeMap<VarId, VarId>| match val {
            Value::Var(v) => Value::Var(map_var(v, map)),
            c @ Value::Const(_) => c,
        };

        // Recursive clone. We gather the node list first to avoid holding a
        // borrow of the region while allocating.
        let nodes: Vec<NodeId> = self.regions[region].nodes.clone();
        let new_region = self.add_region();
        for node in nodes {
            let cloned = match self.nodes[node].clone() {
                HtgNode::Block(b) => {
                    let label = format!("{}c", self.blocks[b].label);
                    let new_block = self.add_block(label);
                    let ops: Vec<OpId> = self.blocks[b].ops.clone();
                    for op in ops {
                        let original = self.ops[op].clone();
                        if original.dead {
                            continue;
                        }
                        let mut kind = original.kind.clone();
                        match &mut kind {
                            OpKind::ArrayRead { array } | OpKind::ArrayWrite { array } => {
                                *array = map_var(*array, var_map);
                            }
                            _ => {}
                        }
                        let dest = original.dest.map(|d| map_var(d, var_map));
                        let args = original.args.iter().map(|&a| map_val(a, var_map)).collect();
                        let new_op = self.add_op(kind, dest, args);
                        self.ops[new_op].speculative = original.speculative;
                        self.blocks[new_block].push(new_op);
                    }
                    self.add_block_node(new_block)
                }
                HtgNode::If(i) => {
                    let cond = map_val(i.cond, var_map);
                    let then_region = self.clone_region_mapped(i.then_region, var_map);
                    let else_region = self.clone_region_mapped(i.else_region, var_map);
                    self.add_if_node(cond, then_region, else_region)
                }
                HtgNode::Loop(l) => {
                    let kind = match l.kind {
                        LoopKind::For {
                            index,
                            start,
                            end,
                            step,
                        } => LoopKind::For {
                            index: map_var(index, var_map),
                            start,
                            end: map_val(end, var_map),
                            step,
                        },
                        LoopKind::While { cond } => LoopKind::While {
                            cond: map_val(cond, var_map),
                        },
                    };
                    let body = self.clone_region_mapped(l.body, var_map);
                    self.add_loop_node(kind, body, l.trip_bound)
                }
            };
            self.region_push(new_region, cloned);
        }
        new_region
    }

    /// Removes empty basic blocks and empty `if` nodes from every region.
    /// Returns the number of nodes removed.
    pub fn prune_empty(&mut self) -> usize {
        let mut removed = 0;
        // Iterate to a fixed point: removing an inner node may empty a region.
        loop {
            let mut changed = 0;
            let region_ids: Vec<RegionId> = self.regions.ids().collect();
            for region in region_ids {
                let nodes = self.regions[region].nodes.clone();
                let mut kept = Vec::with_capacity(nodes.len());
                for node in nodes {
                    let keep = match &self.nodes[node] {
                        HtgNode::Block(b) => {
                            self.blocks[*b].ops.iter().any(|&op| !self.ops[op].dead)
                        }
                        HtgNode::If(i) => {
                            !(self.regions[i.then_region].is_empty()
                                && self.regions[i.else_region].is_empty())
                        }
                        HtgNode::Loop(l) => !self.regions[l.body].is_empty(),
                    };
                    if keep {
                        kept.push(node);
                    } else {
                        changed += 1;
                    }
                }
                self.regions[region].nodes = kept;
            }
            removed += changed;
            if changed == 0 {
                break;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Constant;

    fn sample_function() -> (Function, VarId, VarId, VarId) {
        // if (c) { x = a + 1 } else { x = a - 1 }
        let mut f = Function::new("sample");
        let a = f.add_param(Var::register("a", Type::Bits(8)));
        let c = f.add_param(Var::register("c", Type::Bool));
        let x = f.add_var(Var::register("x", Type::Bits(8)));

        let then_bb = f.add_block("then");
        f.push_op(
            then_bb,
            OpKind::Add,
            Some(x),
            vec![Value::Var(a), Value::word(1)],
        );
        let then_region = f.add_region();
        let then_node = f.add_block_node(then_bb);
        f.region_push(then_region, then_node);

        let else_bb = f.add_block("else");
        f.push_op(
            else_bb,
            OpKind::Sub,
            Some(x),
            vec![Value::Var(a), Value::word(1)],
        );
        let else_region = f.add_region();
        let else_node = f.add_block_node(else_bb);
        f.region_push(else_region, else_node);

        let if_node = f.add_if_node(Value::Var(c), then_region, else_region);
        let body = f.body;
        f.region_push(body, if_node);
        (f, a, c, x)
    }

    #[test]
    fn traversal_counts() {
        let (f, ..) = sample_function();
        assert_eq!(f.live_op_count(), 2);
        assert_eq!(f.block_count(), 2);
        assert_eq!(f.if_count(), 1);
        assert_eq!(f.loop_count(), 0);
        assert_eq!(f.nesting_depth(), 1);
    }

    #[test]
    fn kill_op_detaches_and_marks_dead() {
        let (mut f, ..) = sample_function();
        let op = f.live_ops()[0];
        f.kill_op(op);
        assert_eq!(f.live_op_count(), 1);
        assert!(f.ops[op].dead);
        assert!(f.block_of(op).is_none());
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let (mut f, a, _, _) = sample_function();
        let n = f.replace_uses(a, Value::Const(Constant::word(7)));
        assert_eq!(n, 2);
        for op in f.live_ops() {
            assert_eq!(f.ops[op].args[0], Value::word(7));
        }
    }

    #[test]
    fn clone_region_with_substitution() {
        let (mut f, a, _, x) = sample_function();
        let x2 = f.add_var(Var::register("x2", Type::Bits(8)));
        let mut map = BTreeMap::new();
        map.insert(x, x2);
        let body = f.body;
        let cloned = f.clone_region_mapped(body, &map);
        // The clone has the same structure.
        assert_eq!(f.ops_in_region(cloned).len(), 2);
        // Destinations were remapped, operands that were not in the map are shared.
        for op in f.ops_in_region(cloned) {
            assert_eq!(f.ops[op].dest, Some(x2));
            assert_eq!(f.ops[op].args[0], Value::Var(a));
        }
        // The original is untouched.
        for op in f.ops_in_region(body) {
            assert_eq!(f.ops[op].dest, Some(x));
        }
    }

    #[test]
    fn prune_empty_removes_hollow_structure() {
        let mut f = Function::new("empty");
        let bb = f.add_block("BB0");
        let node = f.add_block_node(bb);
        let body = f.body;
        f.region_push(body, node);
        let empty_then = f.add_region();
        let empty_else = f.add_region();
        let if_node = f.add_if_node(Value::bool(true), empty_then, empty_else);
        f.region_push(body, if_node);
        let removed = f.prune_empty();
        assert_eq!(removed, 2);
        assert!(f.regions[f.body].is_empty());
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut f = Function::new("t");
        let a = f.fresh_temp("tmp", Type::Bits(8));
        let b = f.fresh_wire("tmp", Type::Bits(8));
        assert_ne!(f.vars[a].name, f.vars[b].name);
        assert!(f.vars[b].is_wire());
    }

    #[test]
    fn var_by_name_is_indexed_with_first_match_semantics() {
        let mut f = Function::new("n");
        let a = f.add_param(Var::register("a", Type::Bits(8)));
        let dup_first = f.add_var(Var::register("dup", Type::Bits(8)));
        let _dup_second = f.add_var(Var::register("dup", Type::Bits(16)));
        let t = f.fresh_temp("t", Type::Bool);
        assert_eq!(f.var_by_name("a"), Some(a));
        assert_eq!(f.var_by_name("dup"), Some(dup_first));
        assert_eq!(f.var_by_name(&f.vars[t].name.clone()), Some(t));
        assert_eq!(f.var_by_name("missing"), None);
        // Clones carry the index.
        assert_eq!(f.clone().var_by_name("dup"), Some(dup_first));
    }

    #[test]
    fn outputs_and_inputs() {
        let mut f = Function::new("io");
        let i = f.add_param(Var::array("buf", Type::Bits(8), 4));
        let o = f.add_var(Var::array("mark", Type::Bool, 4).as_output());
        assert_eq!(f.inputs(), vec![i]);
        assert_eq!(f.outputs(), vec![o]);
    }
}
