//! A reference interpreter for behavioral descriptions.
//!
//! The interpreter executes the *untransformed* semantics of a function:
//! structured control flow, sequential operation order, registers and arrays
//! as plain values. It is the golden model every transformation must
//! preserve: tests run the same inputs through the original description, the
//! transformed description, the scheduled FSM and the generated netlist, and
//! require identical outputs.

use std::collections::BTreeMap;
use std::fmt;

use crate::function::Function;
use crate::htg::{HtgNode, LoopKind, RegionId};
use crate::op::{OpId, OpKind};
use crate::program::Program;
use crate::types::Type;
use crate::value::Value;
use crate::var::{StorageClass, VarId};

/// Errors raised while interpreting a behavioral description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A named input was expected but not provided.
    MissingInput(String),
    /// A call referenced a function that does not exist in the program.
    UnknownFunction(String),
    /// An array access was out of bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: u64,
        /// Declared length.
        length: u32,
    },
    /// A loop exceeded the interpreter's iteration limit.
    LoopLimit(u64),
    /// Call nesting exceeded the interpreter's depth limit.
    CallDepth(usize),
    /// An operation had the wrong number of operands.
    Malformed(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput(name) => write!(f, "missing input `{name}`"),
            EvalError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EvalError::OutOfBounds {
                array,
                index,
                length,
            } => {
                write!(
                    f,
                    "index {index} out of bounds for array `{array}` of length {length}"
                )
            }
            EvalError::LoopLimit(limit) => write!(f, "loop exceeded {limit} iterations"),
            EvalError::CallDepth(limit) => write!(f, "call depth exceeded {limit}"),
            EvalError::Malformed(msg) => write!(f, "malformed operation: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Named input bindings for one execution.
#[derive(Clone, Debug, Default)]
pub struct Env {
    scalars: BTreeMap<String, u64>,
    arrays: BTreeMap<String, Vec<u64>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds a scalar input by variable name (builder style).
    pub fn with_scalar(mut self, name: &str, value: u64) -> Self {
        self.scalars.insert(name.to_string(), value);
        self
    }

    /// Binds an array input by variable name (builder style).
    pub fn with_array(mut self, name: &str, values: Vec<u64>) -> Self {
        self.arrays.insert(name.to_string(), values);
        self
    }

    /// Binds a scalar input by variable name.
    pub fn set_scalar(&mut self, name: &str, value: u64) {
        self.scalars.insert(name.to_string(), value);
    }

    /// Binds an array input by variable name.
    pub fn set_array(&mut self, name: &str, values: Vec<u64>) {
        self.arrays.insert(name.to_string(), values);
    }

    /// All scalar bindings, by name.
    pub fn scalar_bindings(&self) -> &BTreeMap<String, u64> {
        &self.scalars
    }

    /// All array bindings, by name.
    pub fn array_bindings(&self) -> &BTreeMap<String, Vec<u64>> {
        &self.arrays
    }
}

/// The result of executing a function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Value produced by a `return` operation, if one executed.
    pub return_value: Option<u64>,
    /// Final values of all scalar variables, by name.
    pub scalars: BTreeMap<String, u64>,
    /// Final contents of all array variables, by name.
    pub arrays: BTreeMap<String, Vec<u64>>,
}

impl Outcome {
    /// Final value of the named scalar, if it exists.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars.get(name).copied()
    }

    /// Final contents of the named array, if it exists.
    pub fn array(&self, name: &str) -> Option<&[u64]> {
        self.arrays.get(name).map(Vec::as_slice)
    }
}

enum Flow {
    Continue,
    Return(u64),
}

struct Frame {
    scalars: BTreeMap<VarId, u64>,
    arrays: BTreeMap<VarId, Vec<u64>>,
}

/// Interprets behavioral programs.
#[derive(Clone, Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    /// Upper bound on iterations of any single loop execution.
    pub max_loop_iterations: u64,
    /// Upper bound on call nesting.
    pub max_call_depth: usize,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program` with default limits.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            max_loop_iterations: 1 << 20,
            max_call_depth: 64,
        }
    }

    /// Runs the named function with the given input bindings.
    ///
    /// # Errors
    /// Returns an [`EvalError`] if the function is unknown, an input is
    /// missing, an array access is out of bounds, or a loop/call limit is
    /// exceeded.
    pub fn run(&self, function: &str, env: &Env) -> Result<Outcome, EvalError> {
        let func = self
            .program
            .function(function)
            .ok_or_else(|| EvalError::UnknownFunction(function.to_string()))?;
        let mut frame = self.init_frame(func, env)?;
        let flow = self.exec_region(func, func.body, &mut frame, 0)?;
        let return_value = match flow {
            Flow::Return(v) => Some(v),
            Flow::Continue => None,
        };
        let mut outcome = Outcome {
            return_value,
            ..Outcome::default()
        };
        for (var_id, var) in func.vars.iter() {
            match var.storage {
                StorageClass::Array { .. } => {
                    if let Some(contents) = frame.arrays.get(&var_id) {
                        outcome.arrays.insert(var.name.clone(), contents.clone());
                    }
                }
                _ => {
                    if let Some(&value) = frame.scalars.get(&var_id) {
                        outcome.scalars.insert(var.name.clone(), value);
                    }
                }
            }
        }
        Ok(outcome)
    }

    fn init_frame(&self, func: &Function, env: &Env) -> Result<Frame, EvalError> {
        let mut frame = Frame {
            scalars: BTreeMap::new(),
            arrays: BTreeMap::new(),
        };
        for (var_id, var) in func.vars.iter() {
            match var.storage {
                StorageClass::Array { length } => {
                    let contents = if let Some(values) = env.arrays.get(&var.name) {
                        let mut v = values.clone();
                        v.resize(length as usize, 0);
                        v.iter_mut().for_each(|x| *x &= var.ty.mask());
                        v
                    } else {
                        vec![0; length as usize]
                    };
                    frame.arrays.insert(var_id, contents);
                }
                _ => {
                    let value = env.scalars.get(&var.name).copied().unwrap_or(0) & var.ty.mask();
                    frame.scalars.insert(var_id, value);
                }
            }
        }
        // Required inputs must be bound (parameters only; internal variables
        // default to zero like uninitialized registers).
        for &param in &func.params {
            let var = &func.vars[param];
            let provided = match var.storage {
                StorageClass::Array { .. } => env.arrays.contains_key(&var.name),
                _ => env.scalars.contains_key(&var.name),
            };
            if !provided {
                return Err(EvalError::MissingInput(var.name.clone()));
            }
        }
        Ok(frame)
    }

    fn eval(&self, _func: &Function, frame: &Frame, value: Value) -> u64 {
        match value {
            Value::Const(c) => c.value(),
            Value::Var(v) => frame.scalars.get(&v).copied().unwrap_or(0),
        }
    }

    fn value_width(&self, func: &Function, value: Value) -> u16 {
        match value {
            Value::Const(c) => c.ty().width(),
            Value::Var(v) => func.vars[v].ty.width(),
        }
    }

    fn exec_region(
        &self,
        func: &Function,
        region: RegionId,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, EvalError> {
        for &node in &func.regions[region].nodes {
            match &func.nodes[node] {
                HtgNode::Block(b) => {
                    let ops: Vec<OpId> = func.blocks[*b].ops.clone();
                    for op in ops {
                        if func.ops[op].dead {
                            continue;
                        }
                        if let Flow::Return(v) = self.exec_op(func, op, frame, depth)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                HtgNode::If(i) => {
                    let cond = self.eval(func, frame, i.cond) != 0;
                    let region = if cond { i.then_region } else { i.else_region };
                    if let Flow::Return(v) = self.exec_region(func, region, frame, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
                HtgNode::Loop(l) => {
                    let mut iterations = 0u64;
                    match &l.kind {
                        LoopKind::For {
                            index,
                            start,
                            end,
                            step,
                        } => {
                            frame.scalars.insert(*index, start.value());
                            loop {
                                let idx = frame.scalars[index];
                                let bound = self.eval(func, frame, *end);
                                if idx > bound {
                                    break;
                                }
                                if let Flow::Return(v) =
                                    self.exec_region(func, l.body, frame, depth)?
                                {
                                    return Ok(Flow::Return(v));
                                }
                                let ty = func.vars[*index].ty;
                                let next = (frame.scalars[index] as i64 + step) as u64 & ty.mask();
                                frame.scalars.insert(*index, next);
                                iterations += 1;
                                if iterations > self.max_loop_iterations {
                                    return Err(EvalError::LoopLimit(self.max_loop_iterations));
                                }
                            }
                        }
                        LoopKind::While { cond } => loop {
                            if self.eval(func, frame, *cond) == 0 {
                                break;
                            }
                            if let Flow::Return(v) = self.exec_region(func, l.body, frame, depth)? {
                                return Ok(Flow::Return(v));
                            }
                            iterations += 1;
                            let limit = l.trip_bound.unwrap_or(self.max_loop_iterations);
                            if iterations >= limit {
                                break;
                            }
                        },
                    }
                }
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_op(
        &self,
        func: &Function,
        op_id: OpId,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, EvalError> {
        let op = func.ops[op_id].clone();
        let arg = |i: usize| -> Result<Value, EvalError> {
            op.args
                .get(i)
                .copied()
                .ok_or_else(|| EvalError::Malformed(format!("{} missing operand {i}", op.kind)))
        };
        let dest_ty = op.dest.map(|d| func.vars[d].ty).unwrap_or(Type::Bits(64));
        let store = |frame: &mut Frame, dest: Option<VarId>, value: u64| {
            if let Some(d) = dest {
                frame.scalars.insert(d, value & func.vars[d].ty.mask());
            }
        };

        let result: u64 = match &op.kind {
            OpKind::Add => {
                self.eval(func, frame, arg(0)?)
                    .wrapping_add(self.eval(func, frame, arg(1)?))
            }
            OpKind::Sub => {
                self.eval(func, frame, arg(0)?)
                    .wrapping_sub(self.eval(func, frame, arg(1)?))
            }
            OpKind::Mul => {
                self.eval(func, frame, arg(0)?)
                    .wrapping_mul(self.eval(func, frame, arg(1)?))
            }
            OpKind::And => self.eval(func, frame, arg(0)?) & self.eval(func, frame, arg(1)?),
            OpKind::Or => self.eval(func, frame, arg(0)?) | self.eval(func, frame, arg(1)?),
            OpKind::Xor => self.eval(func, frame, arg(0)?) ^ self.eval(func, frame, arg(1)?),
            OpKind::Not => !self.eval(func, frame, arg(0)?),
            OpKind::Shl => {
                let amount = self.eval(func, frame, arg(1)?).min(63);
                self.eval(func, frame, arg(0)?) << amount
            }
            OpKind::Shr => {
                let amount = self.eval(func, frame, arg(1)?).min(63);
                self.eval(func, frame, arg(0)?) >> amount
            }
            OpKind::Eq => {
                (self.eval(func, frame, arg(0)?) == self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Ne => {
                (self.eval(func, frame, arg(0)?) != self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Lt => {
                (self.eval(func, frame, arg(0)?) < self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Le => {
                (self.eval(func, frame, arg(0)?) <= self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Gt => {
                (self.eval(func, frame, arg(0)?) > self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Ge => {
                (self.eval(func, frame, arg(0)?) >= self.eval(func, frame, arg(1)?)) as u64
            }
            OpKind::Copy => self.eval(func, frame, arg(0)?),
            OpKind::Select => {
                if self.eval(func, frame, arg(0)?) != 0 {
                    self.eval(func, frame, arg(1)?)
                } else {
                    self.eval(func, frame, arg(2)?)
                }
            }
            OpKind::Slice { hi, lo } => {
                let value = self.eval(func, frame, arg(0)?);
                let width = hi - lo + 1;
                (value >> lo) & Type::Bits(width).mask()
            }
            OpKind::Concat => {
                let high = self.eval(func, frame, arg(0)?);
                let low = self.eval(func, frame, arg(1)?);
                let low_width = self.value_width(func, arg(1)?);
                (high << low_width) | low
            }
            OpKind::ArrayRead { array } => {
                let index = self.eval(func, frame, arg(0)?);
                let contents = frame.arrays.get(array).cloned().unwrap_or_default();
                let length = func.vars[*array].array_length().unwrap_or(0);
                *contents.get(index as usize).ok_or(EvalError::OutOfBounds {
                    array: func.vars[*array].name.clone(),
                    index,
                    length,
                })?
            }
            OpKind::ArrayWrite { array } => {
                let index = self.eval(func, frame, arg(0)?);
                let value = self.eval(func, frame, arg(1)?) & func.vars[*array].ty.mask();
                let length = func.vars[*array].array_length().unwrap_or(0);
                let name = func.vars[*array].name.clone();
                let contents = frame.arrays.entry(*array).or_default();
                let slot = contents
                    .get_mut(index as usize)
                    .ok_or(EvalError::OutOfBounds {
                        array: name,
                        index,
                        length,
                    })?;
                *slot = value;
                return Ok(Flow::Continue);
            }
            OpKind::Call { callee } => {
                if depth >= self.max_call_depth {
                    return Err(EvalError::CallDepth(self.max_call_depth));
                }
                let callee_func = self
                    .program
                    .function(callee)
                    .ok_or_else(|| EvalError::UnknownFunction(callee.clone()))?;
                let mut env = Env::new();
                for (position, &param) in callee_func.params.iter().enumerate() {
                    let param_var = &callee_func.vars[param];
                    let value = arg(position)?;
                    match param_var.storage {
                        StorageClass::Array { .. } => {
                            let array_var = value.as_var().ok_or_else(|| {
                                EvalError::Malformed(format!(
                                    "array parameter `{}` must be passed an array variable",
                                    param_var.name
                                ))
                            })?;
                            let contents =
                                frame.arrays.get(&array_var).cloned().unwrap_or_default();
                            env.set_array(&param_var.name, contents);
                        }
                        _ => env.set_scalar(&param_var.name, self.eval(func, frame, value)),
                    }
                }
                let sub = Interpreter {
                    program: self.program,
                    max_loop_iterations: self.max_loop_iterations,
                    max_call_depth: self.max_call_depth,
                };
                let outcome = sub.run(callee, &env)?;
                outcome.return_value.unwrap_or(0)
            }
            OpKind::Return => {
                let value = self.eval(func, frame, arg(0)?);
                return Ok(Flow::Return(value));
            }
        };
        let _ = dest_ty;
        store(frame, op.dest, result);
        Ok(Flow::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::Type;
    use crate::value::Value;

    fn program_with(f: Function) -> Program {
        let mut p = Program::new();
        p.add_function(f);
        p
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(5)]);
        b.ret(Value::Var(x));
        let p = program_with(b.finish());
        let out = Interpreter::new(&p)
            .run("f", &Env::new().with_scalar("a", 10))
            .unwrap();
        assert_eq!(out.return_value, Some(15));
        assert_eq!(out.scalar("x"), Some(15));
    }

    #[test]
    fn widths_wrap() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let p = program_with(b.finish());
        let out = Interpreter::new(&p)
            .run("f", &Env::new().with_scalar("a", 255))
            .unwrap();
        assert_eq!(out.scalar("x"), Some(0));
    }

    #[test]
    fn if_else_selects_branch() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.else_begin();
        b.copy(x, Value::word(2));
        b.if_end();
        b.ret(Value::Var(x));
        let p = program_with(b.finish());
        let interp = Interpreter::new(&p);
        assert_eq!(
            interp
                .run("f", &Env::new().with_scalar("c", 1))
                .unwrap()
                .return_value,
            Some(1)
        );
        assert_eq!(
            interp
                .run("f", &Env::new().with_scalar("c", 0))
                .unwrap()
                .return_value,
            Some(2)
        );
    }

    #[test]
    fn for_loop_accumulates() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(32));
        let acc = b.var("acc", Type::Bits(32));
        b.copy(acc, Value::word(0));
        b.for_begin(i, 1, Value::word(5), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        b.ret(Value::Var(acc));
        let p = program_with(b.finish());
        let out = Interpreter::new(&p).run("f", &Env::new()).unwrap();
        assert_eq!(out.return_value, Some(15));
    }

    #[test]
    fn arrays_read_write_and_bounds() {
        let mut b = FunctionBuilder::new("f");
        let buf = b.param_array("buf", Type::Bits(8), 4);
        let mark = b.output_array("mark", Type::Bool, 4);
        let x = b.var("x", Type::Bits(8));
        b.array_read(x, buf, Value::word(2));
        b.array_write(mark, Value::word(2), Value::bool(true));
        b.ret(Value::Var(x));
        let p = program_with(b.finish());
        let out = Interpreter::new(&p)
            .run("f", &Env::new().with_array("buf", vec![9, 8, 7, 6]))
            .unwrap();
        assert_eq!(out.return_value, Some(7));
        assert_eq!(out.array("mark"), Some(&[0, 0, 1, 0][..]));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = FunctionBuilder::new("f");
        let buf = b.param_array("buf", Type::Bits(8), 2);
        let x = b.var("x", Type::Bits(8));
        b.array_read(x, buf, Value::word(5));
        let p = program_with(b.finish());
        let err = Interpreter::new(&p)
            .run("f", &Env::new().with_array("buf", vec![1, 2]))
            .unwrap_err();
        assert!(matches!(err, EvalError::OutOfBounds { .. }));
    }

    #[test]
    fn calls_pass_scalars_and_arrays() {
        // callee: returns buf[i] + 1
        let mut cb = FunctionBuilder::new("callee");
        let cbuf = cb.param_array("buf", Type::Bits(8), 4);
        let ci = cb.param("i", Type::Bits(32));
        let cx = cb.var("x", Type::Bits(8));
        cb.array_read(cx, cbuf, Value::Var(ci));
        let cy = cb.compute(
            OpKind::Add,
            Type::Bits(8),
            vec![Value::Var(cx), Value::word(1)],
        );
        cb.ret(Value::Var(cy));
        cb.returns(Type::Bits(8));

        let mut mb = FunctionBuilder::new("main");
        let buf = mb.param_array("buf", Type::Bits(8), 4);
        let r = mb.var("r", Type::Bits(8));
        mb.call(Some(r), "callee", vec![Value::Var(buf), Value::word(1)]);
        mb.ret(Value::Var(r));

        let mut p = Program::new();
        p.add_function(mb.finish());
        p.add_function(cb.finish());
        let out = Interpreter::new(&p)
            .run("main", &Env::new().with_array("buf", vec![5, 6, 7, 8]))
            .unwrap();
        assert_eq!(out.return_value, Some(7));
    }

    #[test]
    fn missing_param_is_an_error() {
        let mut b = FunctionBuilder::new("f");
        b.param("a", Type::Bits(8));
        let p = program_with(b.finish());
        let err = Interpreter::new(&p).run("f", &Env::new()).unwrap_err();
        assert_eq!(err, EvalError::MissingInput("a".to_string()));
    }

    #[test]
    fn while_loop_respects_trip_bound() {
        let mut b = FunctionBuilder::new("f");
        let acc = b.var("acc", Type::Bits(32));
        b.while_begin(Value::bool(true), Some(10));
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::word(1)]);
        b.loop_end();
        b.ret(Value::Var(acc));
        let p = program_with(b.finish());
        let out = Interpreter::new(&p).run("f", &Env::new()).unwrap();
        assert_eq!(out.return_value, Some(10));
    }

    #[test]
    fn select_slice_concat() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let s = b.var("s", Type::Bits(4));
        let m = b.var("m", Type::Bits(8));
        let c = b.var("c", Type::Bits(8));
        b.assign(OpKind::Slice { hi: 7, lo: 4 }, s, vec![Value::Var(a)]);
        b.assign(
            OpKind::Select,
            m,
            vec![Value::bool(true), Value::Var(s), Value::word(0)],
        );
        b.assign(OpKind::Concat, c, vec![Value::Var(s), Value::Var(s)]);
        let p = program_with(b.finish());
        let out = Interpreter::new(&p)
            .run("f", &Env::new().with_scalar("a", 0xAB))
            .unwrap();
        assert_eq!(out.scalar("s"), Some(0xA));
        assert_eq!(out.scalar("m"), Some(0xA));
        assert_eq!(out.scalar("c"), Some(0xAA));
    }

    #[test]
    fn unknown_call_is_an_error() {
        let mut b = FunctionBuilder::new("f");
        let r = b.var("r", Type::Bits(8));
        b.call(Some(r), "missing", vec![]);
        let p = program_with(b.finish());
        let err = Interpreter::new(&p).run("f", &Env::new()).unwrap_err();
        assert_eq!(err, EvalError::UnknownFunction("missing".to_string()));
    }
}
