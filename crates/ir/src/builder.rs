//! Structured construction of behavioral functions.
//!
//! [`FunctionBuilder`] offers a stack-based API mirroring the source
//! structure: `if_begin`/`else_begin`/`if_end`, `for_begin`/`loop_end`, and
//! per-operation helpers. It is used both by the C-like frontend and by the
//! ILD generator, and is handy for writing tests.

use crate::block::BlockId;
use crate::function::Function;
use crate::htg::{LoopKind, RegionId};
use crate::op::{OpId, OpKind};
use crate::types::Type;
use crate::value::{Constant, Value};
use crate::var::{Var, VarId};

#[derive(Debug)]
enum Frame {
    If {
        cond: Value,
        then_region: RegionId,
        else_region: RegionId,
        in_else: bool,
    },
    For {
        index: VarId,
        start: Constant,
        end: Value,
        step: i64,
        body: RegionId,
        trip_bound: Option<u64>,
    },
    While {
        cond: Value,
        body: RegionId,
        trip_bound: Option<u64>,
    },
}

/// Builds a [`Function`] with structured control flow.
///
/// # Examples
/// ```
/// use spark_ir::{FunctionBuilder, OpKind, Type, Value};
///
/// let mut b = FunctionBuilder::new("max");
/// let x = b.param("x", Type::Bits(8));
/// let y = b.param("y", Type::Bits(8));
/// let out = b.var("out", Type::Bits(8));
/// let cond = b.compute(OpKind::Gt, Type::Bool, vec![Value::Var(x), Value::Var(y)]);
/// b.if_begin(Value::Var(cond));
/// b.assign(OpKind::Copy, out, vec![Value::Var(x)]);
/// b.else_begin();
/// b.assign(OpKind::Copy, out, vec![Value::Var(y)]);
/// b.if_end();
/// b.ret(Value::Var(out));
/// let f = b.finish();
/// assert_eq!(f.live_op_count(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
    /// Stack of open structured constructs.
    frames: Vec<Frame>,
    /// Stack of regions currently being appended to; the last entry is the
    /// insertion point.
    region_stack: Vec<RegionId>,
    /// Open basic block at the end of the current region, if any.
    current_block: Option<BlockId>,
    block_counter: u32,
}

impl FunctionBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        let function = Function::new(name);
        let body = function.body;
        FunctionBuilder {
            function,
            frames: Vec::new(),
            region_stack: vec![body],
            current_block: None,
            block_counter: 0,
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    /// Declares a scalar input parameter.
    pub fn param(&mut self, name: &str, ty: Type) -> VarId {
        self.function.add_param(Var::register(name, ty))
    }

    /// Declares an array input parameter of `length` elements.
    pub fn param_array(&mut self, name: &str, ty: Type, length: u32) -> VarId {
        self.function.add_param(Var::array(name, ty, length))
    }

    /// Declares an internal register variable.
    pub fn var(&mut self, name: &str, ty: Type) -> VarId {
        self.function.add_var(Var::register(name, ty))
    }

    /// Declares an internal wire-variable.
    pub fn wire(&mut self, name: &str, ty: Type) -> VarId {
        self.function.add_var(Var::wire(name, ty))
    }

    /// Declares an internal array variable.
    pub fn array(&mut self, name: &str, ty: Type, length: u32) -> VarId {
        self.function.add_var(Var::array(name, ty, length))
    }

    /// Declares a primary-output array (e.g. the ILD `Mark[]` vector).
    pub fn output_array(&mut self, name: &str, ty: Type, length: u32) -> VarId {
        self.function
            .add_var(Var::array(name, ty, length).as_output())
    }

    /// Declares a primary-output scalar.
    pub fn output(&mut self, name: &str, ty: Type) -> VarId {
        self.function.add_var(Var::register(name, ty).as_output())
    }

    /// Sets the declared return type.
    pub fn returns(&mut self, ty: Type) {
        self.function.return_type = Some(ty);
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    fn ensure_block(&mut self) -> BlockId {
        if let Some(block) = self.current_block {
            return block;
        }
        let label = format!("BB{}", self.block_counter);
        self.block_counter += 1;
        let block = self.function.add_block(label);
        let node = self.function.add_block_node(block);
        let region = *self
            .region_stack
            .last()
            .expect("builder has a current region");
        self.function.region_push(region, node);
        self.current_block = Some(block);
        block
    }

    /// Emits `dest = kind(args...)` into the current block.
    pub fn assign(&mut self, kind: OpKind, dest: VarId, args: Vec<Value>) -> OpId {
        let block = self.ensure_block();
        self.function.push_op(block, kind, Some(dest), args)
    }

    /// Emits an operation into a fresh temporary of type `ty` and returns the
    /// temporary's id.
    pub fn compute(&mut self, kind: OpKind, ty: Type, args: Vec<Value>) -> VarId {
        let dest = self.function.fresh_temp("t", ty);
        self.assign(kind, dest, args);
        dest
    }

    /// Emits `dest = value` (a copy).
    pub fn copy(&mut self, dest: VarId, value: Value) -> OpId {
        self.assign(OpKind::Copy, dest, vec![value])
    }

    /// Emits `array[index] = value`.
    pub fn array_write(&mut self, array: VarId, index: Value, value: Value) -> OpId {
        let block = self.ensure_block();
        self.function.push_op(
            block,
            OpKind::ArrayWrite { array },
            None,
            vec![index, value],
        )
    }

    /// Emits `dest = array[index]`.
    pub fn array_read(&mut self, dest: VarId, array: VarId, index: Value) -> OpId {
        self.assign(OpKind::ArrayRead { array }, dest, vec![index])
    }

    /// Emits `dest = callee(args...)`.
    pub fn call(&mut self, dest: Option<VarId>, callee: &str, args: Vec<Value>) -> OpId {
        let block = self.ensure_block();
        self.function.push_op(
            block,
            OpKind::Call {
                callee: callee.to_string(),
            },
            dest,
            args,
        )
    }

    /// Emits `return value`.
    pub fn ret(&mut self, value: Value) -> OpId {
        let block = self.ensure_block();
        self.function
            .push_op(block, OpKind::Return, None, vec![value])
    }

    // ------------------------------------------------------------------
    // Structured control flow
    // ------------------------------------------------------------------

    /// Opens an `if (cond) { ... }` construct; subsequent operations go to
    /// the then-branch until [`else_begin`](Self::else_begin) or
    /// [`if_end`](Self::if_end).
    pub fn if_begin(&mut self, cond: Value) {
        self.current_block = None;
        let then_region = self.function.add_region();
        let else_region = self.function.add_region();
        self.frames.push(Frame::If {
            cond,
            then_region,
            else_region,
            in_else: false,
        });
        self.region_stack.push(then_region);
    }

    /// Switches from the then-branch to the else-branch.
    ///
    /// # Panics
    /// Panics if no `if` is open or the else-branch was already started.
    pub fn else_begin(&mut self) {
        self.current_block = None;
        let frame = self.frames.last_mut().expect("else_begin outside of if");
        match frame {
            Frame::If {
                else_region,
                in_else,
                ..
            } => {
                assert!(!*in_else, "else_begin called twice for the same if");
                *in_else = true;
                let else_region = *else_region;
                self.region_stack.pop();
                self.region_stack.push(else_region);
            }
            _ => panic!("else_begin does not match an open if"),
        }
    }

    /// Closes the innermost `if` construct.
    ///
    /// # Panics
    /// Panics if the innermost open construct is not an `if`.
    pub fn if_end(&mut self) {
        self.current_block = None;
        let frame = self.frames.pop().expect("if_end without an open if");
        match frame {
            Frame::If {
                cond,
                then_region,
                else_region,
                ..
            } => {
                self.region_stack.pop();
                let node = self.function.add_if_node(cond, then_region, else_region);
                let region = *self.region_stack.last().expect("parent region");
                self.function.region_push(region, node);
            }
            _ => panic!("if_end does not match an open if"),
        }
    }

    /// Opens a `for (index = start; index <= end; index += step)` loop.
    pub fn for_begin(&mut self, index: VarId, start: u64, end: Value, step: i64) {
        self.current_block = None;
        let body = self.function.add_region();
        let start = Constant::new(start, self.function.vars[index].ty);
        self.frames.push(Frame::For {
            index,
            start,
            end,
            step,
            body,
            trip_bound: None,
        });
        self.region_stack.push(body);
    }

    /// Opens a `while (cond)` loop. `trip_bound` is a designer-provided bound
    /// on the number of iterations (needed to unroll `while(1)` loops).
    pub fn while_begin(&mut self, cond: Value, trip_bound: Option<u64>) {
        self.current_block = None;
        let body = self.function.add_region();
        self.frames.push(Frame::While {
            cond,
            body,
            trip_bound,
        });
        self.region_stack.push(body);
    }

    /// Closes the innermost loop construct (either kind).
    ///
    /// # Panics
    /// Panics if the innermost open construct is not a loop.
    pub fn loop_end(&mut self) {
        self.current_block = None;
        let frame = self.frames.pop().expect("loop_end without an open loop");
        self.region_stack.pop();
        let node = match frame {
            Frame::For {
                index,
                start,
                end,
                step,
                body,
                trip_bound,
            } => self.function.add_loop_node(
                LoopKind::For {
                    index,
                    start,
                    end,
                    step,
                },
                body,
                trip_bound,
            ),
            Frame::While {
                cond,
                body,
                trip_bound,
            } => self
                .function
                .add_loop_node(LoopKind::While { cond }, body, trip_bound),
            Frame::If { .. } => panic!("loop_end does not match an open loop"),
        };
        let region = *self.region_stack.last().expect("parent region");
        self.function.region_push(region, node);
    }

    /// Finishes construction and returns the function.
    ///
    /// # Panics
    /// Panics if any structured construct is still open.
    pub fn finish(self) -> Function {
        assert!(
            self.frames.is_empty(),
            "finish called with {} unclosed construct(s)",
            self.frames.len()
        );
        self.function
    }

    /// Access to the function under construction (e.g. to register extra
    /// variables through [`Function`] APIs).
    pub fn function_mut(&mut self) -> &mut Function {
        &mut self.function
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::htg::HtgNode;

    #[test]
    fn builds_if_else_structure() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.else_begin();
        b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        assert_eq!(f.if_count(), 1);
        assert_eq!(f.live_op_count(), 2);
    }

    #[test]
    fn builds_for_loop() {
        let mut b = FunctionBuilder::new("loop");
        let i = b.var("i", Type::Bits(32));
        let acc = b.var("acc", Type::Bits(32));
        b.copy(acc, Value::word(0));
        b.for_begin(i, 1, Value::word(4), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        let f = b.finish();
        assert_eq!(f.loop_count(), 1);
        assert_eq!(f.live_op_count(), 2);
        // The loop node carries the index variable.
        let found = f.nodes.iter().any(|(_, n)| match n {
            HtgNode::Loop(l) => matches!(l.kind, LoopKind::For { index, .. } if index == i),
            _ => false,
        });
        assert!(found);
    }

    #[test]
    fn while_loop_records_trip_bound() {
        let mut b = FunctionBuilder::new("w");
        let x = b.var("x", Type::Bits(8));
        b.while_begin(Value::bool(true), Some(16));
        b.assign(OpKind::Add, x, vec![Value::Var(x), Value::word(1)]);
        b.loop_end();
        let f = b.finish();
        let bound = f.nodes.iter().find_map(|(_, n)| match n {
            HtgNode::Loop(l) => l.trip_bound,
            _ => None,
        });
        assert_eq!(bound, Some(16));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_if_panics() {
        let mut b = FunctionBuilder::new("bad");
        b.if_begin(Value::bool(true));
        let _ = b.finish();
    }

    #[test]
    fn blocks_split_around_compound_nodes() {
        let mut b = FunctionBuilder::new("split");
        let x = b.var("x", Type::Bits(8));
        b.copy(x, Value::word(1));
        b.if_begin(Value::bool(true));
        b.copy(x, Value::word(2));
        b.if_end();
        b.copy(x, Value::word(3));
        let f = b.finish();
        // Expect: pre-block, then-block, post-block.
        assert_eq!(f.block_count(), 3);
    }
}
