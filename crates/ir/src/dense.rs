//! Dense side tables keyed by arena ids.
//!
//! The IR allocates every entity (operation, variable, block, …) out of an
//! [`Arena`](crate::Arena), so the ids are small dense integers. Analyses and
//! back-end passes attach facts to those entities; a [`SecondaryMap`] stores
//! such facts in a plain `Vec` indexed by the id instead of a `BTreeMap`,
//! turning the O(log n) pointer-chasing lookups on the scheduler's innermost
//! loops into O(1) array reads while keeping the deterministic, key-ordered
//! iteration the reproduction relies on (dense-index order *is* id order).
//!
//! The API deliberately mirrors the `BTreeMap` subset the code base used
//! before — `insert(K, V)`, `get(&K)`, `contains_key(&K)`, `keys`, `values`,
//! indexing by `&K` — so the refactor to dense tables leaves call sites and
//! public struct shapes intact. Iteration yields `(K, &V)` pairs (keys are
//! `Copy`).

use std::fmt;
use std::marker::PhantomData;

use crate::arena::Id;

/// A key with a dense, stable `usize` representation.
///
/// Implemented for every arena [`Id`]; downstream crates implement it for
/// their own small enums (e.g. functional-unit classes) to reuse
/// [`SecondaryMap`] for per-class tables.
pub trait DenseKey: Copy + Eq {
    /// The dense index of this key.
    fn dense_index(self) -> usize;
    /// Rebuilds the key from a dense index previously returned by
    /// [`DenseKey::dense_index`].
    fn from_dense_index(index: usize) -> Self;
}

impl<T> DenseKey for Id<T> {
    #[inline]
    fn dense_index(self) -> usize {
        self.index()
    }
    #[inline]
    fn from_dense_index(index: usize) -> Self {
        Id::from_raw(index as u32)
    }
}

/// A `Vec`-backed map from a [`DenseKey`] to values.
///
/// Missing keys cost one `Option` check; present keys cost one bounds-checked
/// array access. Iteration runs in ascending dense-index order, which for
/// arena ids equals allocation (program) order — the same deterministic order
/// `BTreeMap` iteration gave, so schedules, bindings and reports are
/// bit-identical to the map-based implementation.
pub struct SecondaryMap<K: DenseKey, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _marker: PhantomData<fn(K) -> K>,
}

impl<K: DenseKey, V> SecondaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SecondaryMap {
            slots: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Creates an empty map with room for keys of dense index `< capacity`
    /// without reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        SecondaryMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let index = key.dense_index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let previous = self.slots[index].replace(value);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Removes the entry at `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.slots.get_mut(key.dense_index())?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Borrow of the value at `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots.get(key.dense_index())?.as_ref()
    }

    /// Mutable borrow of the value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.slots.get_mut(key.dense_index())?.as_mut()
    }

    /// Returns `true` if `key` has a value.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.slots
            .get(key.dense_index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Mutable borrow of the value at `key`, inserting `default()` first if
    /// the key is vacant — the dense equivalent of `entry(key).or_insert_with`.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let index = key.dense_index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let slot = &mut self.slots[index];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Iterates over `(key, &value)` pairs in ascending dense-index order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            inner: self.slots.iter().enumerate(),
            _marker: PhantomData,
        }
    }

    /// Iterates over `(key, &mut value)` pairs in ascending dense-index order.
    pub fn iter_mut(&mut self) -> IterMut<'_, K, V> {
        IterMut {
            inner: self.slots.iter_mut().enumerate(),
            _marker: PhantomData,
        }
    }

    /// Iterates over present keys in ascending dense-index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over present values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates over present values mutably, in key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.iter_mut().map(|(_, v)| v)
    }
}

impl<K: DenseKey, V> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: DenseKey, V: Clone> Clone for SecondaryMap<K, V> {
    fn clone(&self) -> Self {
        SecondaryMap {
            slots: self.slots.clone(),
            len: self.len,
            _marker: PhantomData,
        }
    }

    /// Clones `source` into `self`, reusing the slot vector's allocation —
    /// the building block behind batch drivers (such as the RTL simulator's
    /// per-state snapshots) that overwrite the same tables run after run.
    fn clone_from(&mut self, source: &Self) {
        self.slots.clone_from(&source.slots);
        self.len = source.len;
    }
}

impl<K: DenseKey + fmt::Debug, V: fmt::Debug> fmt::Debug for SecondaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: DenseKey, V: PartialEq> PartialEq for SecondaryMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: DenseKey, V: Eq> Eq for SecondaryMap<K, V> {}

impl<K: DenseKey, V> std::ops::Index<&K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry for key in SecondaryMap")
    }
}

impl<K: DenseKey, V> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        self.get(&key).expect("no entry for key in SecondaryMap")
    }
}

impl<K: DenseKey, V> FromIterator<(K, V)> for SecondaryMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = SecondaryMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: DenseKey, V> Extend<(K, V)> for SecondaryMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Borrowing iterator over `(K, &V)` pairs; see [`SecondaryMap::iter`].
pub struct Iter<'a, K: DenseKey, V> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Option<V>>>,
    _marker: PhantomData<fn(K) -> K>,
}

impl<'a, K: DenseKey, V> Iterator for Iter<'a, K, V> {
    type Item = (K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        for (index, slot) in self.inner.by_ref() {
            if let Some(value) = slot.as_ref() {
                return Some((K::from_dense_index(index), value));
            }
        }
        None
    }
}

/// Mutably borrowing iterator over `(K, &mut V)` pairs; see
/// [`SecondaryMap::iter_mut`].
pub struct IterMut<'a, K: DenseKey, V> {
    inner: std::iter::Enumerate<std::slice::IterMut<'a, Option<V>>>,
    _marker: PhantomData<fn(K) -> K>,
}

impl<'a, K: DenseKey, V> Iterator for IterMut<'a, K, V> {
    type Item = (K, &'a mut V);
    fn next(&mut self) -> Option<Self::Item> {
        for (index, slot) in self.inner.by_ref() {
            if let Some(value) = slot.as_mut() {
                return Some((K::from_dense_index(index), value));
            }
        }
        None
    }
}

impl<'a, K: DenseKey, V> IntoIterator for &'a SecondaryMap<K, V> {
    type Item = (K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, K: DenseKey, V> IntoIterator for &'a mut SecondaryMap<K, V> {
    type Item = (K, &'a mut V);
    type IntoIter = IterMut<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Key = Id<u32>;

    fn key(i: u32) -> Key {
        Id::from_raw(i)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map: SecondaryMap<Key, String> = SecondaryMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(key(3), "three".into()), None);
        assert_eq!(map.insert(key(0), "zero".into()), None);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&key(3)).map(String::as_str), Some("three"));
        assert_eq!(map.get(&key(1)), None);
        assert_eq!(map.insert(key(3), "THREE".into()), Some("three".into()));
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove(&key(3)), Some("THREE".into()));
        assert_eq!(map.remove(&key(3)), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut map: SecondaryMap<Key, u32> = SecondaryMap::new();
        map.insert(key(5), 50);
        map.insert(key(1), 10);
        map.insert(key(9), 90);
        let pairs: Vec<(u32, u32)> = map.iter().map(|(k, &v)| (k.raw(), v)).collect();
        assert_eq!(pairs, vec![(1, 10), (5, 50), (9, 90)]);
        let keys: Vec<u32> = map.keys().map(Id::raw).collect();
        assert_eq!(keys, vec![1, 5, 9]);
        let sum: u32 = map.values().sum();
        assert_eq!(sum, 150);
    }

    #[test]
    fn get_or_insert_with_behaves_like_entry() {
        let mut map: SecondaryMap<Key, Vec<u32>> = SecondaryMap::new();
        map.get_or_insert_with(key(2), Vec::new).push(7);
        map.get_or_insert_with(key(2), Vec::new).push(8);
        assert_eq!(map[&key(2)], vec![7, 8]);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a: SecondaryMap<Key, u32> = SecondaryMap::new();
        let mut b: SecondaryMap<Key, u32> = SecondaryMap::new();
        a.insert(key(1), 1);
        b.insert(key(9), 9);
        b.insert(key(1), 1);
        b.remove(&key(9));
        assert_eq!(a, b, "a removed high key leaves no trace");
    }

    #[test]
    fn index_by_ref_and_value() {
        let mut map: SecondaryMap<Key, u32> = SecondaryMap::new();
        map.insert(key(4), 44);
        assert_eq!(map[&key(4)], 44);
        assert_eq!(map[key(4)], 44);
    }

    #[test]
    fn iter_mut_updates_values() {
        let mut map: SecondaryMap<Key, u32> = SecondaryMap::from_iter([(key(0), 1), (key(2), 2)]);
        for (_, v) in &mut map {
            *v *= 10;
        }
        assert_eq!(map.values().copied().collect::<Vec<_>>(), vec![10, 20]);
    }
}
