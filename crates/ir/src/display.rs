//! Human-readable dump of functions, modelled on the pseudo-code listings of
//! the paper (Figures 10–15).

use std::fmt;

use crate::function::Function;
use crate::htg::{HtgNode, LoopKind, RegionId};
use crate::op::{OpKind, Operation};
use crate::value::Value;

impl Function {
    fn fmt_value(&self, value: Value) -> String {
        match value {
            Value::Var(v) => self.vars[v].name.clone(),
            Value::Const(c) => c.to_string(),
        }
    }

    fn fmt_op(&self, op: &Operation) -> String {
        let dest = op.dest.map(|d| self.vars[d].name.clone());
        let args: Vec<String> = op.args.iter().map(|&a| self.fmt_value(a)).collect();
        let spec = if op.speculative { " /*spec*/" } else { "" };
        let body = match &op.kind {
            OpKind::Add => format!("{} + {}", args[0], args[1]),
            OpKind::Sub => format!("{} - {}", args[0], args[1]),
            OpKind::Mul => format!("{} * {}", args[0], args[1]),
            OpKind::And => format!("{} & {}", args[0], args[1]),
            OpKind::Or => format!("{} | {}", args[0], args[1]),
            OpKind::Xor => format!("{} ^ {}", args[0], args[1]),
            OpKind::Not => format!("~{}", args[0]),
            OpKind::Shl => format!("{} << {}", args[0], args[1]),
            OpKind::Shr => format!("{} >> {}", args[0], args[1]),
            OpKind::Eq => format!("{} == {}", args[0], args[1]),
            OpKind::Ne => format!("{} != {}", args[0], args[1]),
            OpKind::Lt => format!("{} < {}", args[0], args[1]),
            OpKind::Le => format!("{} <= {}", args[0], args[1]),
            OpKind::Gt => format!("{} > {}", args[0], args[1]),
            OpKind::Ge => format!("{} >= {}", args[0], args[1]),
            OpKind::Copy => args[0].clone(),
            OpKind::Select => format!("{} ? {} : {}", args[0], args[1], args[2]),
            OpKind::Slice { hi, lo } => format!("{}[{hi}:{lo}]", args[0]),
            OpKind::Concat => format!("{{{}, {}}}", args[0], args[1]),
            OpKind::ArrayRead { array } => format!("{}[{}]", self.vars[*array].name, args[0]),
            OpKind::ArrayWrite { array } => {
                return format!(
                    "{}[{}] = {}{spec};",
                    self.vars[*array].name, args[0], args[1]
                );
            }
            OpKind::Call { callee } => format!("{callee}({})", args.join(", ")),
            OpKind::Return => return format!("return {}{spec};", args[0]),
        };
        match dest {
            Some(d) => format!("{d} = {body}{spec};"),
            None => format!("{body}{spec};"),
        }
    }

    fn fmt_region(
        &self,
        f: &mut fmt::Formatter<'_>,
        region: RegionId,
        indent: usize,
    ) -> fmt::Result {
        let pad = "  ".repeat(indent);
        for &node in &self.regions[region].nodes {
            match &self.nodes[node] {
                HtgNode::Block(b) => {
                    let block = &self.blocks[*b];
                    writeln!(f, "{pad}// {}", block.label)?;
                    for &op in &block.ops {
                        if self.ops[op].dead {
                            continue;
                        }
                        writeln!(f, "{pad}{}", self.fmt_op(&self.ops[op]))?;
                    }
                }
                HtgNode::If(i) => {
                    writeln!(f, "{pad}if ({}) {{", self.fmt_value(i.cond))?;
                    self.fmt_region(f, i.then_region, indent + 1)?;
                    if !self.regions[i.else_region].is_empty() {
                        writeln!(f, "{pad}}} else {{")?;
                        self.fmt_region(f, i.else_region, indent + 1)?;
                    }
                    writeln!(f, "{pad}}}")?;
                }
                HtgNode::Loop(l) => {
                    match &l.kind {
                        LoopKind::For {
                            index,
                            start,
                            end,
                            step,
                        } => {
                            writeln!(
                                f,
                                "{pad}for ({name} = {start}; {name} <= {end}; {name} += {step}) {{",
                                name = self.vars[*index].name,
                                start = start,
                                end = self.fmt_value(*end),
                                step = step
                            )?;
                        }
                        LoopKind::While { cond } => {
                            writeln!(f, "{pad}while ({}) {{", self.fmt_value(*cond))?;
                        }
                    }
                    self.fmt_region(f, l.body, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|&p| format!("{}", self.vars[p]))
            .collect();
        writeln!(f, "function {}({}) {{", self.name, params.join(", "))?;
        self.fmt_region(f, self.body, 1)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn printed_form_resembles_source() {
        let mut b = FunctionBuilder::new("calc");
        let a = b.param("a", Type::Bits(8));
        let c = b.param("cond", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.else_begin();
        b.assign(OpKind::Sub, x, vec![Value::Var(a), Value::word(1)]);
        b.if_end();
        b.ret(Value::Var(x));
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("function calc"));
        assert!(text.contains("if (cond) {"));
        assert!(text.contains("x = a + 1;"));
        assert!(text.contains("} else {"));
        assert!(text.contains("return x;"));
    }

    #[test]
    fn loops_and_arrays_print() {
        let mut b = FunctionBuilder::new("loop");
        let i = b.var("i", Type::Bits(32));
        let mark = b.output_array("Mark", Type::Bool, 8);
        b.for_begin(i, 1, Value::word(8), 1);
        b.array_write(mark, Value::Var(i), Value::bool(true));
        b.loop_end();
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("for (i = 1; i <= 8; i += 1) {"));
        assert!(text.contains("Mark[i] = true;"));
    }
}
