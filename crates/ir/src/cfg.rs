//! Flattened control-flow graph derived from the HTG.
//!
//! Scheduling with operation chaining across conditional boundaries needs to
//! enumerate all *trails* — acyclic backward paths of basic blocks — leading
//! into a block (Section 3.1.1 of the paper). The HTG is hierarchical, so we
//! flatten it into a conventional CFG on demand. Compound structure with
//! empty branches introduces *virtual* nodes so that every `if` still has two
//! distinct paths.

use std::collections::BTreeMap;

use crate::block::BlockId;
use crate::function::Function;
use crate::htg::{HtgNode, RegionId};

/// The payload of a CFG node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgNodeKind {
    /// A real basic block of the function.
    Block(BlockId),
    /// A synthetic node (function entry, empty branch, join point).
    Virtual(&'static str),
}

/// A node of the flattened control-flow graph.
#[derive(Clone, Debug)]
pub struct CfgNode {
    /// What this node represents.
    pub kind: CfgNodeKind,
    /// Predecessor node indices.
    pub preds: Vec<usize>,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

/// A flattened control-flow graph for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    entry: usize,
    exit: usize,
    block_index: BTreeMap<BlockId, usize>,
}

impl Cfg {
    /// Builds the CFG of `function`'s body.
    pub fn build(function: &Function) -> Self {
        let mut cfg = Cfg {
            nodes: Vec::new(),
            entry: 0,
            exit: 0,
            block_index: BTreeMap::new(),
        };
        cfg.entry = cfg.add_node(CfgNodeKind::Virtual("entry"));
        let (first, last) = cfg.lower_region(function, function.body, cfg.entry);
        cfg.exit = cfg.add_node(CfgNodeKind::Virtual("exit"));
        // `first` is already connected from entry inside lower_region; connect
        // the last frontier to exit.
        let _ = first;
        cfg.connect(last, cfg.exit);
        cfg
    }

    fn add_node(&mut self, kind: CfgNodeKind) -> usize {
        let idx = self.nodes.len();
        if let CfgNodeKind::Block(b) = kind {
            self.block_index.insert(b, idx);
        }
        self.nodes.push(CfgNode {
            kind,
            preds: Vec::new(),
            succs: Vec::new(),
        });
        idx
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
        if !self.nodes[to].preds.contains(&from) {
            self.nodes[to].preds.push(from);
        }
    }

    fn connect(&mut self, froms: Vec<usize>, to: usize) {
        for from in froms {
            self.add_edge(from, to);
        }
    }

    /// Lowers `region`, connecting its first node(s) from `pred`. Returns the
    /// set of node indices that fall through out of the region (its exits)
    /// as `(entry_index, exits)`; for empty regions the entry is `pred` and
    /// the exits are `[pred]`.
    fn lower_region(
        &mut self,
        function: &Function,
        region: RegionId,
        pred: usize,
    ) -> (usize, Vec<usize>) {
        let mut frontier = vec![pred];
        let mut first = pred;
        let mut first_set = false;
        for &node in &function.regions[region].nodes {
            let (node_entry, node_exits) = match &function.nodes[node] {
                HtgNode::Block(b) => {
                    let idx = self.add_node(CfgNodeKind::Block(*b));
                    self.connect(frontier.clone(), idx);
                    (idx, vec![idx])
                }
                HtgNode::If(i) => {
                    // Both branches fork from the current frontier and meet at
                    // a join node.
                    let join = self.add_node(CfgNodeKind::Virtual("join"));
                    let fork = if frontier.len() == 1 {
                        frontier[0]
                    } else {
                        let fork = self.add_node(CfgNodeKind::Virtual("fork"));
                        self.connect(frontier.clone(), fork);
                        fork
                    };
                    let (then_entry, then_exits) = self.lower_region(function, i.then_region, fork);
                    let (else_entry, else_exits) = self.lower_region(function, i.else_region, fork);
                    self.connect(then_exits, join);
                    self.connect(else_exits, join);
                    let entry = if then_entry != fork {
                        then_entry
                    } else {
                        else_entry
                    };
                    (entry, vec![join])
                }
                HtgNode::Loop(l) => {
                    let head = self.add_node(CfgNodeKind::Virtual("loop_head"));
                    self.connect(frontier.clone(), head);
                    let (_, body_exits) = self.lower_region(function, l.body, head);
                    // Back edge and fall-through.
                    let tail = self.add_node(CfgNodeKind::Virtual("loop_tail"));
                    self.connect(body_exits, tail);
                    self.add_edge(tail, head);
                    (head, vec![head, tail])
                }
            };
            if !first_set {
                first = node_entry;
                first_set = true;
            }
            frontier = node_exits;
        }
        (first, frontier)
    }

    /// Number of nodes (including virtual nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the CFG has no nodes (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All real basic blocks in the CFG, in construction (roughly program) order.
    pub fn blocks(&self) -> Vec<BlockId> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                CfgNodeKind::Block(b) => Some(b),
                _ => None,
            })
            .collect()
    }

    /// Immediate predecessor *blocks* of `block`, looking through virtual nodes.
    pub fn pred_blocks(&self, block: BlockId) -> Vec<BlockId> {
        let Some(&idx) = self.block_index.get(&block) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[idx].preds.clone();
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            match self.nodes[n].kind {
                CfgNodeKind::Block(b) => out.push(b),
                CfgNodeKind::Virtual(_) => stack.extend(self.nodes[n].preds.iter().copied()),
            }
        }
        out
    }

    /// All acyclic backward trails from `block` to the function entry.
    ///
    /// Each trail starts with `block` itself and lists basic blocks in
    /// backward order, exactly as in the paper's example
    /// `<BB8, BB7, BB5, BB3, BB2, BB1>`. Virtual nodes are traversed but not
    /// recorded. At most `limit` trails are returned (the ILD after full
    /// unrolling has no conditionals nested deeply enough to explode, but the
    /// guard keeps pathological inputs bounded).
    pub fn backward_trails(&self, block: BlockId, limit: usize) -> Vec<Vec<BlockId>> {
        let Some(&start) = self.block_index.get(&block) else {
            return Vec::new();
        };
        let mut trails = Vec::new();
        let mut current = vec![block];
        let mut on_path = vec![false; self.nodes.len()];
        self.trails_rec(start, &mut current, &mut on_path, &mut trails, limit);
        trails
    }

    /// Creates a [`TrailCounter`] over this CFG: capped backward-trail counts
    /// with a memo shared across queries, for loop-free (DAG) functions.
    pub fn trail_counter(&self, limit: usize) -> TrailCounter<'_> {
        TrailCounter {
            cfg: self,
            memo: vec![None; self.nodes.len()],
            limit: limit.max(1),
        }
    }

    fn trails_rec(
        &self,
        node: usize,
        current: &mut Vec<BlockId>,
        on_path: &mut [bool],
        trails: &mut Vec<Vec<BlockId>>,
        limit: usize,
    ) {
        if trails.len() >= limit {
            return;
        }
        if node == self.entry || self.nodes[node].preds.is_empty() {
            trails.push(current.clone());
            return;
        }
        on_path[node] = true;
        for &pred in &self.nodes[node].preds {
            if on_path[pred] {
                continue; // skip back edges: trails are acyclic
            }
            match self.nodes[pred].kind {
                CfgNodeKind::Block(b) => {
                    current.push(b);
                    self.trails_rec(pred, current, on_path, trails, limit);
                    current.pop();
                }
                CfgNodeKind::Virtual(_) => {
                    self.trails_rec(pred, current, on_path, trails, limit);
                }
            }
        }
        on_path[node] = false;
    }
}

/// Saturating backward-trail counter for **loop-free** functions.
///
/// On a DAG, `count(block)` equals `backward_trails(block, limit).len()` —
/// `min(limit, total acyclic trails)` — but is computed by a memoized
/// path-count recurrence (`count(entry) = 1`, `count(n) = Σ count(pred)`,
/// saturating at the limit) instead of enumerating and copying every trail,
/// and the memo is shared across all queried blocks. On the fully unrolled
/// ILD the trail population is exponential in the conditional depth, so this
/// is the difference between microseconds and milliseconds per block.
pub struct TrailCounter<'a> {
    cfg: &'a Cfg,
    memo: Vec<Option<usize>>,
    limit: usize,
}

impl TrailCounter<'_> {
    /// Number of backward trails from `block` to the entry, capped at the
    /// counter's limit. Unknown blocks have no trails.
    pub fn count(&mut self, block: BlockId) -> usize {
        let Some(&start) = self.cfg.block_index.get(&block) else {
            return 0;
        };
        self.count_node(start)
    }

    fn count_node(&mut self, node: usize) -> usize {
        if let Some(count) = self.memo[node] {
            return count;
        }
        let count = if node == self.cfg.entry || self.cfg.nodes[node].preds.is_empty() {
            1
        } else {
            let mut total = 0usize;
            for index in 0..self.cfg.nodes[node].preds.len() {
                let pred = self.cfg.nodes[node].preds[index];
                total = total.saturating_add(self.count_node(pred));
                if total >= self.limit {
                    total = self.limit;
                    break;
                }
            }
            total
        };
        self.memo[node] = Some(count);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::op::OpKind;
    use crate::types::Type;
    use crate::value::Value;

    /// Builds the structure of Figure 5: two sequential if-nodes (the second
    /// nested if inside the first's then-branch in the paper is simplified to
    /// the same trail count) followed by a reader block.
    fn nested_ifs() -> Function {
        let mut b = FunctionBuilder::new("fig5");
        let cond1 = b.param("cond1", Type::Bool);
        let cond2 = b.param("cond2", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let c = b.param("c", Type::Bits(8));
        let d = b.param("d", Type::Bits(8));
        let o1 = b.var("o1", Type::Bits(8));
        let o2 = b.var("o2", Type::Bits(8));
        b.if_begin(Value::Var(cond1));
        b.if_begin(Value::Var(cond2));
        b.copy(o1, Value::Var(a)); // op 1
        b.else_begin();
        b.copy(o1, Value::Var(bb)); // op 2
        b.if_end();
        b.else_begin();
        b.copy(o1, Value::Var(c)); // op 3
        b.if_end();
        b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::Var(d)]); // op 4
        b.finish()
    }

    #[test]
    fn three_trails_reach_the_reader_block() {
        let f = nested_ifs();
        let cfg = Cfg::build(&f);
        // The reader block is the last block in program order.
        let blocks = f.blocks_in_region(f.body);
        let reader = *blocks.last().unwrap();
        let trails = cfg.backward_trails(reader, 64);
        assert_eq!(
            trails.len(),
            3,
            "paper Figure 5 describes exactly three trails"
        );
        for trail in &trails {
            assert_eq!(trail[0], reader, "trails start at the block itself");
        }
    }

    #[test]
    fn straight_line_has_single_trail() {
        let mut b = FunctionBuilder::new("line");
        let x = b.var("x", Type::Bits(8));
        b.copy(x, Value::word(1));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let blocks = cfg.blocks();
        assert_eq!(blocks.len(), 1);
        let trails = cfg.backward_trails(blocks[0], 16);
        assert_eq!(trails.len(), 1);
        assert_eq!(trails[0], vec![blocks[0]]);
    }

    #[test]
    fn trail_counter_matches_enumeration_on_dags() {
        let f = nested_ifs();
        let cfg = Cfg::build(&f);
        let mut counter = cfg.trail_counter(64);
        for block in cfg.blocks() {
            assert_eq!(
                counter.count(block),
                cfg.backward_trails(block, 64).len(),
                "block {block:?}"
            );
        }
        // A tight limit saturates identically on both sides.
        let mut capped = cfg.trail_counter(2);
        let reader = *f.blocks_in_region(f.body).last().unwrap();
        assert_eq!(capped.count(reader), cfg.backward_trails(reader, 2).len());
    }

    #[test]
    fn pred_blocks_skip_virtual_nodes() {
        let f = nested_ifs();
        let cfg = Cfg::build(&f);
        let blocks = f.blocks_in_region(f.body);
        let reader = *blocks.last().unwrap();
        let preds = cfg.pred_blocks(reader);
        // Predecessors are the three assignment blocks (through join nodes).
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn loop_back_edges_do_not_create_cyclic_trails() {
        let mut b = FunctionBuilder::new("loop");
        let i = b.var("i", Type::Bits(32));
        let acc = b.var("acc", Type::Bits(32));
        b.for_begin(i, 1, Value::word(4), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        b.copy(acc, Value::Var(acc));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let blocks = f.blocks_in_region(f.body);
        let last = *blocks.last().unwrap();
        let trails = cfg.backward_trails(last, 64);
        assert!(!trails.is_empty());
        for trail in trails {
            // No block repeats within a trail.
            let mut sorted = trail.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), trail.len());
        }
    }
}
