//! Behavioral descriptions of the instruction length decoder.
//!
//! [`build_ild_program`] constructs the Figure 10 form — a byte loop calling
//! `CalculateLength`, the input Spark starts from — and
//! [`build_ild_natural_program`] constructs the "succinct and natural"
//! `while(1)` description of Figure 16. Both operate on the synthetic
//! encoding of [`crate::encoding`] and are checked against the golden model
//! of [`crate::golden`].

use spark_ir::{Env, FunctionBuilder, OpKind, Outcome, Program, Type, Value};

/// Name of the top-level decoder function.
pub const ILD_FUNCTION: &str = "ild";
/// Name of the natural-form decoder function (Figure 16).
pub const ILD_NATURAL_FUNCTION: &str = "ild_natural";
/// Name of the length-calculation helper (Figure 10).
pub const CALCULATE_LENGTH_FUNCTION: &str = "CalculateLength";

/// Builds the `CalculateLength` helper of Figure 10 for a buffer of
/// `buffer_len` bytes: nested conditionals examining up to four bytes.
fn build_calculate_length(buffer_len: u32) -> spark_ir::Function {
    let mut b = FunctionBuilder::new(CALCULATE_LENGTH_FUNCTION);
    let buffer = b.param_array("buffer", Type::Bits(8), buffer_len);
    let i = b.param("i", Type::Bits(16));
    b.returns(Type::Bits(8));

    let byte = Type::Bits(8);
    let b1 = b.var("b1", byte);
    let b2 = b.var("b2", byte);
    let b3 = b.var("b3", byte);
    let b4 = b.var("b4", byte);
    let lc1 = b.var("lc1", byte);
    let lc2 = b.var("lc2", byte);
    let lc3 = b.var("lc3", byte);
    let lc4 = b.var("lc4", byte);
    let need2 = b.var("need2", Type::Bool);
    let need3 = b.var("need3", Type::Bool);
    let need4 = b.var("need4", Type::Bool);
    let length = b.var("Length", byte);

    // lc1 = (b1 & 3) + 1; need2 = b1[7]
    b.array_read(b1, buffer, Value::Var(i));
    let m1 = b.compute(OpKind::And, byte, vec![Value::Var(b1), Value::word(3)]);
    b.assign(OpKind::Add, lc1, vec![Value::Var(m1), Value::word(1)]);
    b.assign(OpKind::Slice { hi: 7, lo: 7 }, need2, vec![Value::Var(b1)]);

    b.if_begin(Value::Var(need2));
    {
        let i1 = b.compute(
            OpKind::Add,
            Type::Bits(16),
            vec![Value::Var(i), Value::word(1)],
        );
        b.array_read(b2, buffer, Value::Var(i1));
        b.assign(OpKind::And, lc2, vec![Value::Var(b2), Value::word(3)]);
        b.assign(OpKind::Slice { hi: 7, lo: 7 }, need3, vec![Value::Var(b2)]);
        b.if_begin(Value::Var(need3));
        {
            let i2 = b.compute(
                OpKind::Add,
                Type::Bits(16),
                vec![Value::Var(i), Value::word(2)],
            );
            b.array_read(b3, buffer, Value::Var(i2));
            let m3 = b.compute(OpKind::And, byte, vec![Value::Var(b3), Value::word(1)]);
            b.assign(OpKind::Add, lc3, vec![Value::Var(m3), Value::word(1)]);
            b.assign(OpKind::Slice { hi: 7, lo: 7 }, need4, vec![Value::Var(b3)]);
            b.if_begin(Value::Var(need4));
            {
                let i3 = b.compute(
                    OpKind::Add,
                    Type::Bits(16),
                    vec![Value::Var(i), Value::word(3)],
                );
                b.array_read(b4, buffer, Value::Var(i3));
                let m4 = b.compute(OpKind::And, byte, vec![Value::Var(b4), Value::word(1)]);
                b.assign(OpKind::Add, lc4, vec![Value::Var(m4), Value::word(1)]);
                // Length = lc1 + lc2 + lc3 + lc4
                let s1 = b.compute(OpKind::Add, byte, vec![Value::Var(lc1), Value::Var(lc2)]);
                let s2 = b.compute(OpKind::Add, byte, vec![Value::Var(s1), Value::Var(lc3)]);
                b.assign(OpKind::Add, length, vec![Value::Var(s2), Value::Var(lc4)]);
            }
            b.else_begin();
            {
                let s1 = b.compute(OpKind::Add, byte, vec![Value::Var(lc1), Value::Var(lc2)]);
                b.assign(OpKind::Add, length, vec![Value::Var(s1), Value::Var(lc3)]);
            }
            b.if_end();
        }
        b.else_begin();
        b.assign(OpKind::Add, length, vec![Value::Var(lc1), Value::Var(lc2)]);
        b.if_end();
    }
    b.else_begin();
    b.copy(length, Value::Var(lc1));
    b.if_end();
    b.ret(Value::Var(length));
    b.finish()
}

/// Builds the Figure 10 behavioral description of the ILD for a buffer of
/// `n` decodable bytes.
///
/// The program contains two functions: the top-level [`ILD_FUNCTION`]
/// (byte loop, `Mark[]` output) and [`CALCULATE_LENGTH_FUNCTION`]. The
/// instruction buffer is 1-indexed and carries `n + 3` look-ahead bytes, as
/// the paper assumes.
pub fn build_ild_program(n: u32) -> Program {
    let buffer_len = n + 4;
    let mut b = FunctionBuilder::new(ILD_FUNCTION);
    let buffer = b.param_array("buffer", Type::Bits(8), buffer_len);
    let mark = b.output_array("Mark", Type::Bool, n + 1);
    let next_start = b.var("NextStartByte", Type::Bits(16));
    let len = b.var("len", Type::Bits(8));
    let i = b.var("i", Type::Bits(16));
    let is_start = b.var("is_start", Type::Bool);

    b.copy(next_start, Value::word(1));
    b.for_begin(i, 1, Value::word(u64::from(n)), 1);
    {
        b.assign(
            OpKind::Eq,
            is_start,
            vec![Value::Var(i), Value::Var(next_start)],
        );
        b.if_begin(Value::Var(is_start));
        {
            b.array_write(mark, Value::Var(i), Value::bool(true));
            b.call(
                Some(len),
                CALCULATE_LENGTH_FUNCTION,
                vec![Value::Var(buffer), Value::Var(i)],
            );
            b.assign(
                OpKind::Add,
                next_start,
                vec![Value::Var(next_start), Value::Var(len)],
            );
        }
        b.if_end();
    }
    b.loop_end();

    let mut program = Program::new();
    program.add_function(b.finish());
    program.add_function(build_calculate_length(buffer_len));
    program
}

/// Builds the "natural" Figure 16 description: a `while(1)` loop chasing
/// `NextStartByte`. The arrays are sized generously because the natural form
/// steps the cursor past the decode window before the source-level
/// `while_to_for` transformation bounds it.
pub fn build_ild_natural_program(n: u32) -> Program {
    let buffer_len = 12 * n + 16;
    let mut b = FunctionBuilder::new(ILD_NATURAL_FUNCTION);
    let buffer = b.param_array("buffer", Type::Bits(8), buffer_len);
    let mark = b.output_array("Mark", Type::Bool, buffer_len);
    let next_start = b.var("NextStartByte", Type::Bits(16));
    let len = b.var("len", Type::Bits(8));

    b.copy(next_start, Value::word(1));
    b.while_begin(Value::bool(true), Some(u64::from(n)));
    {
        b.array_write(mark, Value::Var(next_start), Value::bool(true));
        b.call(
            Some(len),
            CALCULATE_LENGTH_FUNCTION,
            vec![Value::Var(buffer), Value::Var(next_start)],
        );
        b.assign(
            OpKind::Add,
            next_start,
            vec![Value::Var(next_start), Value::Var(len)],
        );
    }
    b.loop_end();

    let mut program = Program::new();
    program.add_function(b.finish());
    program.add_function(build_calculate_length(buffer_len));
    program
}

/// Builds an interpreter/RTL input environment from an instruction buffer
/// (1-indexed, `buffer[0]` unused, padded with zeros as needed).
pub fn buffer_env(buffer: &[u8]) -> Env {
    Env::new().with_array("buffer", buffer.iter().map(|&b| u64::from(b)).collect())
}

/// Extracts the mark bits `1..=n` from an execution outcome.
pub fn marks_from_outcome(outcome: &Outcome, n: usize) -> Vec<bool> {
    let marks = outcome.array("Mark").unwrap_or(&[]);
    (1..=n)
        .map(|i| marks.get(i).copied().unwrap_or(0) != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::decode_marks;
    use crate::workload::{long_instruction_buffer, random_buffer, short_instruction_buffer};
    use spark_ir::{verify, Interpreter};

    fn golden_window(buffer: &[u8], n: usize) -> Vec<bool> {
        decode_marks(buffer, n)[1..=n].to_vec()
    }

    #[test]
    fn ild_program_is_well_formed() {
        let program = build_ild_program(16);
        for function in &program.functions {
            verify(function).expect("well formed");
        }
        let ild = program.function(ILD_FUNCTION).unwrap();
        assert_eq!(ild.loop_count(), 1);
        assert!(program.function(CALCULATE_LENGTH_FUNCTION).is_some());
    }

    #[test]
    fn interpreted_ild_matches_golden_model() {
        let n = 16u32;
        let program = build_ild_program(n);
        for seed in 0..8u64 {
            let buffer = random_buffer(n as usize, seed);
            let env = buffer_env(&buffer);
            let outcome = Interpreter::new(&program).run(ILD_FUNCTION, &env).unwrap();
            let marks = marks_from_outcome(&outcome, n as usize);
            assert_eq!(marks, golden_window(&buffer, n as usize), "seed {seed}");
        }
    }

    #[test]
    fn interpreted_ild_matches_golden_on_extreme_workloads() {
        let n = 12u32;
        let program = build_ild_program(n);
        for buffer in [
            short_instruction_buffer(n as usize),
            long_instruction_buffer(n as usize),
        ] {
            let env = buffer_env(&buffer);
            let outcome = Interpreter::new(&program).run(ILD_FUNCTION, &env).unwrap();
            assert_eq!(
                marks_from_outcome(&outcome, n as usize),
                golden_window(&buffer, n as usize)
            );
        }
    }

    #[test]
    fn natural_form_matches_golden_within_the_window() {
        let n = 8u32;
        let program = build_ild_natural_program(n);
        for seed in [3u64, 17] {
            let buffer = random_buffer(n as usize, seed);
            let env = buffer_env(&buffer);
            let outcome = Interpreter::new(&program)
                .run(ILD_NATURAL_FUNCTION, &env)
                .unwrap();
            let marks = marks_from_outcome(&outcome, n as usize);
            assert_eq!(marks, golden_window(&buffer, n as usize), "seed {seed}");
        }
    }

    #[test]
    fn calculate_length_matches_reference_encoding() {
        use crate::encoding::calculate_length;
        let program = build_ild_program(8);
        let interp = Interpreter::new(&program);
        for (b1, b2, b3, b4) in [
            (0x00u8, 0x00u8, 0x00u8, 0x00u8),
            (0x83, 0x03, 0x00, 0x00),
            (0x83, 0x83, 0x81, 0x01),
            (0xFF, 0xFF, 0xFF, 0xFF),
            (0x7F, 0xAA, 0xBB, 0xCC),
        ] {
            let mut buffer = vec![0u8; 12];
            buffer[1] = b1;
            buffer[2] = b2;
            buffer[3] = b3;
            buffer[4] = b4;
            let env = buffer_env(&buffer).with_scalar("i", 1);
            let outcome = interp.run(CALCULATE_LENGTH_FUNCTION, &env).unwrap();
            assert_eq!(
                outcome.return_value,
                Some(u64::from(calculate_length(b1, b2, b3, b4))),
                "bytes {b1:02x} {b2:02x} {b3:02x} {b4:02x}"
            );
        }
    }
}
