//! # spark-ild — the instruction length decoder case study
//!
//! The case study of the Spark HLS reproduction (Gupta et al., DAC 2002,
//! Sections 5–6): a Pentium-style instruction length decoder that finds the
//! starting byte of every variable-length instruction (1–11 bytes, up to
//! 4 bytes examined) in an instruction buffer.
//!
//! The crate provides:
//!
//! * a synthetic [`encoding`] with the paper's look-ahead structure (the real
//!   tables are proprietary — see `DESIGN.md` for the substitution note);
//! * a [`decode_marks`] golden software reference decoder;
//! * behavioral descriptions: the Figure 10 form ([`build_ild_program`]) and
//!   the natural Figure 16 form ([`build_ild_natural_program`]);
//! * buffer workload generators used by tests and benchmarks.
//!
//! # Examples
//!
//! ```
//! use spark_ild::{build_ild_program, buffer_env, decode_marks, marks_from_outcome, random_buffer, ILD_FUNCTION};
//! use spark_ir::Interpreter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 8;
//! let program = build_ild_program(n as u32);
//! let buffer = random_buffer(n, 42);
//! let outcome = Interpreter::new(&program).run(ILD_FUNCTION, &buffer_env(&buffer))?;
//! let marks = marks_from_outcome(&outcome, n);
//! assert_eq!(marks, decode_marks(&buffer, n)[1..=n].to_vec());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod behavior;
pub mod encoding;
mod golden;
mod workload;

pub use behavior::{
    buffer_env, build_ild_natural_program, build_ild_program, marks_from_outcome,
    CALCULATE_LENGTH_FUNCTION, ILD_FUNCTION, ILD_NATURAL_FUNCTION,
};
pub use golden::{decode_marks, instruction_count};
pub use workload::{
    long_instruction_buffer, mixed_instruction_buffer, random_buffer, short_instruction_buffer,
};
