//! Instruction-buffer workload generators.
//!
//! The evaluation sweeps buffer sizes and instruction-length mixes; these
//! generators produce the 1-indexed buffers (with `n + 3` zero-padded
//! look-ahead bytes) the golden model and the synthesized designs consume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random buffer of `n` decodable bytes (deterministic per seed).
pub fn random_buffer(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buffer = vec![0u8; n + 4];
    for byte in buffer.iter_mut().take(n + 1).skip(1) {
        *byte = rng.r#gen();
    }
    buffer
}

/// A buffer consisting entirely of one-byte instructions — the densest
/// marking the decoder can produce.
pub fn short_instruction_buffer(n: usize) -> Vec<u8> {
    vec![0u8; n + 4]
}

/// A buffer consisting of maximum-length (11-byte) instructions — the
/// sparsest marking.
pub fn long_instruction_buffer(n: usize) -> Vec<u8> {
    let pattern = [0x83u8, 0x83, 0x81, 0x01, 0, 0, 0, 0, 0, 0, 0];
    let mut buffer = vec![0u8; n + 4];
    for i in 1..=n {
        buffer[i] = pattern[(i - 1) % pattern.len()];
    }
    buffer
}

/// A buffer with an even mix of 1-, 4- and 7-byte instructions.
pub fn mixed_instruction_buffer(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buffer = vec![0u8; n + 4];
    let mut i = 1usize;
    while i <= n {
        let choice: u8 = rng.gen_range(0..3);
        match choice {
            0 => {
                buffer[i] = 0x00; // length 1
                i += 1;
            }
            1 => {
                buffer[i] = 0x03; // length 4
                i += 4;
            }
            _ => {
                buffer[i] = 0x83; // lc1 = 4, need2
                if i < n {
                    buffer[i + 1] = 0x03; // lc2 = 3
                }
                i += 7;
            }
        }
    }
    buffer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{decode_marks, instruction_count};

    #[test]
    fn random_buffers_are_deterministic_per_seed() {
        assert_eq!(random_buffer(16, 7), random_buffer(16, 7));
        assert_ne!(random_buffer(16, 7), random_buffer(16, 8));
        assert_eq!(random_buffer(16, 7).len(), 20);
        assert_eq!(random_buffer(16, 7)[0], 0, "index 0 is unused");
    }

    #[test]
    fn short_buffers_mark_every_byte() {
        let n = 12;
        let marks = decode_marks(&short_instruction_buffer(n), n);
        assert_eq!(instruction_count(&marks), n);
    }

    #[test]
    fn long_buffers_mark_sparsely() {
        let n = 22;
        let marks = decode_marks(&long_instruction_buffer(n), n);
        assert_eq!(instruction_count(&marks), 2, "11-byte instructions");
    }

    #[test]
    fn mixed_buffers_are_valid() {
        let n = 32;
        let buffer = mixed_instruction_buffer(n, 3);
        assert_eq!(buffer.len(), n + 4);
        let marks = decode_marks(&buffer, n);
        assert!(instruction_count(&marks) >= n / 7);
    }
}
