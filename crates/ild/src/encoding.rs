//! The synthetic variable-length instruction encoding.
//!
//! The paper's ILD decodes an x86-style stream in which "instructions can be
//! of variable length ranging from 1 to 11 bytes and the decoder has to look
//! at up to 4 bytes to determine an instruction's length". The real length
//! tables are proprietary, so this reproduction uses a synthetic encoding
//! with exactly that structure: per-byte length contributions plus
//! `Need_kth_Byte` continuation flags, giving lengths 1..=11 decided by at
//! most 4 bytes. The table contents are irrelevant to the transformations —
//! only the nested look-ahead structure matters.

/// Length contribution of the first byte of an instruction (1..=4).
pub fn length_contribution_1(byte: u8) -> u8 {
    (byte & 0x03) + 1
}

/// Whether the second byte must be examined.
pub fn need_2nd_byte(byte: u8) -> bool {
    byte & 0x80 != 0
}

/// Length contribution of the second byte (0..=3).
pub fn length_contribution_2(byte: u8) -> u8 {
    byte & 0x03
}

/// Whether the third byte must be examined.
pub fn need_3rd_byte(byte: u8) -> bool {
    byte & 0x80 != 0
}

/// Length contribution of the third byte (1..=2).
pub fn length_contribution_3(byte: u8) -> u8 {
    (byte & 0x01) + 1
}

/// Whether the fourth byte must be examined.
pub fn need_4th_byte(byte: u8) -> bool {
    byte & 0x80 != 0
}

/// Length contribution of the fourth byte (1..=2).
pub fn length_contribution_4(byte: u8) -> u8 {
    (byte & 0x01) + 1
}

/// The maximum instruction length this encoding can produce.
pub const MAX_INSTRUCTION_LENGTH: u8 = 11;

/// Computes the length of the instruction whose first four bytes are given —
/// the reference implementation of the paper's `CalculateLength` (Figure 10).
pub fn calculate_length(b1: u8, b2: u8, b3: u8, b4: u8) -> u8 {
    let lc1 = length_contribution_1(b1);
    if need_2nd_byte(b1) {
        let lc2 = length_contribution_2(b2);
        if need_3rd_byte(b2) {
            let lc3 = length_contribution_3(b3);
            if need_4th_byte(b3) {
                let lc4 = length_contribution_4(b4);
                lc1 + lc2 + lc3 + lc4
            } else {
                lc1 + lc2 + lc3
            }
        } else {
            lc1 + lc2
        }
    } else {
        lc1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_byte_instructions() {
        assert_eq!(calculate_length(0x00, 0, 0, 0), 1);
        assert_eq!(calculate_length(0x03, 0, 0, 0), 4);
        assert!(!need_2nd_byte(0x7F));
    }

    #[test]
    fn multi_byte_instructions() {
        // need2 set, second byte contributes 3, no third byte.
        assert_eq!(calculate_length(0x83, 0x03, 0, 0), 4 + 3);
        // All four bytes used.
        assert_eq!(calculate_length(0x83, 0x83, 0x81, 0x01), 4 + 3 + 2 + 2);
    }

    #[test]
    fn length_is_always_in_declared_range() {
        for b1 in 0..=255u8 {
            for &b2 in &[0u8, 0x7F, 0x80, 0xFF] {
                for &b3 in &[0u8, 0x81, 0xFF] {
                    for &b4 in &[0u8, 0xFF] {
                        let len = calculate_length(b1, b2, b3, b4);
                        assert!(
                            (1..=MAX_INSTRUCTION_LENGTH).contains(&len),
                            "length {len} out of range for {b1:02x} {b2:02x} {b3:02x} {b4:02x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn maximum_length_is_reachable() {
        assert_eq!(
            calculate_length(0x83, 0x83, 0x81, 0x01),
            MAX_INSTRUCTION_LENGTH
        );
    }
}
