//! Golden software model of the instruction length decoder.
//!
//! A straightforward Rust implementation of the behavioral "C" code of
//! Figure 10: walk the instruction buffer, mark every byte at which an
//! instruction starts, computing each instruction's length with the
//! reference `CalculateLength`. Every synthesized design (interpreted IR at
//! each transformation stage, scheduled FSM, generated RTL) is checked
//! against this model on the same buffers.

use crate::encoding::calculate_length;

/// Decodes one instruction buffer.
///
/// `buffer` is 1-indexed like the paper's pseudo-code: `buffer[0]` is unused
/// and decoding starts at byte 1. The buffer must contain at least `n + 3`
/// valid entries past index 0 (the paper assumes "a zero length contribution
/// from the n+1 to n+3 bytes"; callers pad with zeros).
///
/// Returns the mark vector: `marks[i]` is `true` when an instruction starts
/// at byte `i` (indices `1..=n`; index 0 is always `false`).
///
/// # Panics
/// Panics if the buffer is shorter than `n + 4` entries.
pub fn decode_marks(buffer: &[u8], n: usize) -> Vec<bool> {
    assert!(
        buffer.len() >= n + 4,
        "buffer must hold {} bytes (n + 3 look-ahead past index 0), got {}",
        n + 4,
        buffer.len()
    );
    let mut marks = vec![false; n + 1];
    let mut next_start_byte = 1usize;
    for i in 1..=n {
        if i == next_start_byte {
            marks[i] = true;
            let len = calculate_length(buffer[i], buffer[i + 1], buffer[i + 2], buffer[i + 3]);
            next_start_byte += len as usize;
        }
    }
    marks
}

/// Count of instructions found in a mark vector.
pub fn instruction_count(marks: &[bool]) -> usize {
    marks.iter().filter(|&&m| m).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_one_byte_instructions() {
        // Bytes with low 2 bits = 0 and high bit clear are 1-byte instructions.
        let n = 8;
        let buffer = vec![0u8; n + 4];
        let marks = decode_marks(&buffer, n);
        assert_eq!(instruction_count(&marks), n);
        assert!(marks[1..=n].iter().all(|&m| m));
        assert!(!marks[0]);
    }

    #[test]
    fn four_byte_instructions() {
        // 0x03 => length 4 with no continuation.
        let n = 8;
        let mut buffer = vec![0u8; n + 4];
        buffer[1..=n].fill(0x03);
        let marks = decode_marks(&buffer, n);
        assert_eq!(
            marks[1..=n],
            [true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn mixed_lengths() {
        let n = 10;
        let mut buffer = vec![0u8; n + 4];
        // byte 1: 0x81 -> lc1=2, need2; byte 2: 0x01 -> lc2=1 => len 3
        buffer[1] = 0x81;
        buffer[2] = 0x01;
        // byte 4: 0x00 -> len 1
        // byte 5: 0x02 -> len 3
        buffer[5] = 0x02;
        let marks = decode_marks(&buffer, n);
        assert_eq!(
            marks[1..=n],
            [true, false, false, true, true, false, false, true, true, true]
        );
    }

    #[test]
    fn instruction_starting_near_the_end_uses_lookahead_bytes() {
        let n = 4;
        let mut buffer = vec![0u8; n + 4];
        buffer[4] = 0x83; // needs byte 5 (look-ahead), which is zero-padded
        buffer[3] = 0x00;
        buffer[2] = 0x00;
        buffer[1] = 0x02; // len 3 -> next start at 4
        let marks = decode_marks(&buffer, n);
        assert_eq!(marks[1..=n], [true, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn short_buffer_panics() {
        decode_marks(&[0u8; 4], 4);
    }
}
