//! Finite-state-machine controller model.
//!
//! After scheduling, the controller is a simple sequential FSM: one state per
//! control step, advancing every cycle and wrapping around at the end (the
//! block restarts on fresh inputs, as the ILD does on every new buffer). Each
//! state lists the operations it executes together with their guard — the
//! conjunction of branch conditions under which the operation's result is
//! committed. Single-cycle microprocessor blocks degenerate to a one-state
//! controller, which is exactly the goal of the paper's methodology.

use spark_ir::{Function, OpId};

use crate::deps::{DependenceGraph, Guard};
use crate::scheduler::Schedule;

/// One scheduled operation inside a control step.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// Guard under which its result is committed.
    pub guard: Guard,
    /// Start time within the state (ns).
    pub start_ns: f64,
    /// Finish time within the state (ns).
    pub finish_ns: f64,
}

/// One control step of the FSM.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlStep {
    /// State index.
    pub index: usize,
    /// Operations executed in this state, ordered by start time then op id.
    pub ops: Vec<ScheduledOp>,
}

impl ControlStep {
    /// Longest combinational path in this state (ns).
    pub fn critical_path_ns(&self) -> f64 {
        self.ops.iter().map(|o| o.finish_ns).fold(0.0, f64::max)
    }
}

/// The generated controller.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Controller {
    /// Control steps in execution order; the FSM advances one step per cycle
    /// and wraps to step 0.
    pub steps: Vec<ControlStep>,
}

impl Controller {
    /// Builds the controller from a schedule.
    pub fn build(function: &Function, graph: &DependenceGraph, schedule: &Schedule) -> Self {
        let mut steps: Vec<ControlStep> = (0..schedule.num_states)
            .map(|index| ControlStep {
                index,
                ops: Vec::new(),
            })
            .collect();
        let mut all_ops: Vec<OpId> = function.live_ops();
        // Preserve program order within a state (ties broken by start time).
        all_ops.retain(|op| schedule.op_state.contains_key(op));
        for op in all_ops {
            let state = schedule.op_state[&op];
            steps[state].ops.push(ScheduledOp {
                op,
                guard: graph.guard_of(op),
                start_ns: schedule.op_start.get(&op).copied().unwrap_or(0.0),
                finish_ns: schedule.op_finish.get(&op).copied().unwrap_or(0.0),
            });
        }
        for step in &mut steps {
            step.ops.sort_by(|a, b| {
                a.start_ns
                    .partial_cmp(&b.start_ns)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.op.cmp(&b.op))
            });
        }
        Controller { steps }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for a single-cycle controller — the target architecture
    /// for microprocessor blocks (Figure 15).
    pub fn is_single_cycle(&self) -> bool {
        self.steps.len() == 1
    }

    /// Longest combinational path over all states (ns).
    pub fn critical_path_ns(&self) -> f64 {
        self.steps
            .iter()
            .map(ControlStep::critical_path_ns)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            writeln!(
                f,
                "state S{} ({} ops, {:.2} ns):",
                step.index,
                step.ops.len(),
                step.critical_path_ns()
            )?;
            for op in &step.ops {
                let guard = if op.guard.is_unconditional() {
                    String::new()
                } else {
                    format!(" [{} guard term(s)]", op.guard.terms.len())
                };
                writeln!(
                    f,
                    "  op{} @ {:.2}..{:.2} ns{}",
                    op.op.raw(),
                    op.start_ns,
                    op.finish_ns,
                    guard
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceLibrary;
    use crate::scheduler::{schedule, Constraints};
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    fn small_design() -> (Function, DependenceGraph, Schedule) {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.output("y", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(2)]);
        b.else_begin();
        b.copy(y, Value::Var(x));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        (f, graph, sched)
    }

    #[test]
    fn controller_reflects_schedule() {
        let (f, graph, sched) = small_design();
        let controller = Controller::build(&f, &graph, &sched);
        assert!(controller.is_single_cycle());
        assert_eq!(controller.steps[0].ops.len(), f.live_op_count());
        assert!(controller.critical_path_ns() > 0.0);
        // Guarded ops carry their guards.
        let guarded = controller.steps[0]
            .ops
            .iter()
            .filter(|o| !o.guard.is_unconditional())
            .count();
        assert_eq!(guarded, 2);
    }

    #[test]
    fn ops_are_ordered_by_start_time() {
        let (f, graph, sched) = small_design();
        let controller = Controller::build(&f, &graph, &sched);
        let starts: Vec<f64> = controller.steps[0].ops.iter().map(|o| o.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(starts, sorted);
    }

    #[test]
    fn display_lists_states() {
        let (f, graph, sched) = small_design();
        let controller = Controller::build(&f, &graph, &sched);
        let text = controller.to_string();
        assert!(text.contains("state S0"));
        assert!(text.contains("guard term"));
    }

    #[test]
    fn multi_state_controller() {
        let mut b = FunctionBuilder::new("long");
        let a = b.param("a", Type::Bits(8));
        let mut prev = a;
        for i in 0..6 {
            let x = b.var(&format!("x{i}"), Type::Bits(8));
            b.assign(OpKind::Add, x, vec![Value::Var(prev), Value::word(1)]);
            prev = x;
        }
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(4.5)).unwrap();
        let controller = Controller::build(&f, &graph, &sched);
        assert_eq!(controller.num_states(), 3);
        assert!(!controller.is_single_cycle());
    }
}
