//! Incremental dependence-graph patching across wire-variable insertion.
//!
//! [`insert_wire_variables`](crate::insert_wire_variables) performs a small,
//! fully structured set of rewrites: a producer is redirected to write a
//! fresh wire, a commit copy back into the register is inserted right after
//! it, an initializer copy may be inserted in front of the outermost
//! conditional, and same-state readers swap the register operand for the
//! wire. Rebuilding the whole [`DependenceGraph`] afterwards — as the
//! pipeline did before — re-derives guards, re-interns the guard table and
//! re-scans the access history of *every* variable, when only the variables
//! named by the rewrites changed.
//!
//! [`DependenceGraph::apply_wire_edits`] instead patches the graph in place
//! from the [`WireEditLog`] the insertion emits: the new copies are spliced
//! into `order` next to their anchors, inherit their guards (the commit runs
//! under its writer's guard, the initializer is unconditional), and only the
//! edges touching an affected register or wire are recomputed — with the
//! same program-order history scan the from-scratch build uses, so the edge
//! multiset is identical. Debug builds cross-check the patched graph against
//! a from-scratch rebuild after every application.

use spark_ir::{Function, OpId, SecondaryMap, VarId};

use crate::deps::{DepKind, Dependence, DependenceGraph, GuardId};

/// The initializer copy of one wire group: `op` (`wire = register`) executes
/// immediately before `before` in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireInit {
    /// The initializer operation.
    pub op: OpId,
    /// The first live operation of the conditional subtree the initializer
    /// was hoisted in front of.
    pub before: OpId,
}

/// One wire-variable group: everything [`insert_wire_variables`]
/// (crate::insert_wire_variables) did for one `(register, state)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireEdit {
    /// The register the group is about.
    pub var: VarId,
    /// The freshly created wire-variable.
    pub wire: VarId,
    /// The pre-initialisation copy, if one was needed (the Figure 7 case).
    pub initializer: Option<WireInit>,
    /// `(writer, commit)` pairs: `writer` now defines the wire and `commit`
    /// (`register = wire`) executes immediately after it.
    pub commits: Vec<(OpId, OpId)>,
}

/// The structured record of one wire-variable insertion run, in application
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireEditLog {
    /// One entry per wire-variable created.
    pub edits: Vec<WireEdit>,
}

impl WireEditLog {
    /// Returns `true` when the insertion run changed nothing.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

impl DependenceGraph {
    /// Patches this (pre-insertion) graph to describe `function` *after* the
    /// wire-variable insertion that produced `log`.
    ///
    /// `order` gains the initializer and commit copies at their anchored
    /// positions, the new operations inherit interned guards (no new branch
    /// contexts appear, so the exclusion bitset stays valid), and the edges
    /// of every affected register/wire are recomputed with the build's own
    /// history scan while all other edges are kept. In debug builds the
    /// result is checked against a from-scratch rebuild.
    pub fn apply_wire_edits(&mut self, function: &Function, log: &WireEditLog) {
        if !log.is_empty() {
            let new_ops = self.splice_new_ops(log);
            let affected = affected_vars(log);
            self.recompute_edges(function, &affected, &new_ops);
        }
        #[cfg(debug_assertions)]
        {
            let rebuilt = DependenceGraph::build_uncounted(function)
                .expect("patched function is loop- and call-free");
            if let Err(difference) = self.same_dependences(&rebuilt) {
                panic!("patched dependence graph diverges from rebuild: {difference}");
            }
        }
    }

    /// Splices the initializer and commit copies into `order` and assigns
    /// their guards: a commit executes under its writer's guard, an
    /// initializer is unconditional (it sits in front of the outermost
    /// conditional, at top level by construction).
    fn splice_new_ops(&mut self, log: &WireEditLog) -> SecondaryMap<OpId, ()> {
        let mut before: SecondaryMap<OpId, Vec<OpId>> = SecondaryMap::new();
        let mut after: SecondaryMap<OpId, Vec<OpId>> = SecondaryMap::new();
        let mut new_ops: SecondaryMap<OpId, ()> = SecondaryMap::new();
        for edit in &log.edits {
            if let Some(init) = &edit.initializer {
                before
                    .get_or_insert_with(init.before, Vec::new)
                    .push(init.op);
                self.guard_ids.insert(init.op, GuardId::UNCONDITIONAL);
                new_ops.insert(init.op, ());
            }
            for &(writer, commit) in &edit.commits {
                after.get_or_insert_with(writer, Vec::new).push(commit);
                let writer_guard = self.guard_ids[&writer];
                self.guard_ids.insert(commit, writer_guard);
                new_ops.insert(commit, ());
            }
        }

        // Emit the new order in one pass. An anchor can itself be a pending
        // new op (an initializer hoisted in front of an earlier group's
        // commit), so emission recurses through the anchor lists.
        fn emit(
            op: OpId,
            before: &SecondaryMap<OpId, Vec<OpId>>,
            after: &SecondaryMap<OpId, Vec<OpId>>,
            out: &mut Vec<OpId>,
        ) {
            for &b in before.get(&op).into_iter().flatten() {
                emit(b, before, after, out);
            }
            out.push(op);
            for &a in after.get(&op).into_iter().flatten() {
                emit(a, before, after, out);
            }
        }
        let mut order = Vec::with_capacity(self.order.len() + new_ops.len());
        for &op in &self.order {
            emit(op, &before, &after, &mut order);
        }
        self.order = order;
        new_ops
    }

    /// Recomputes — over the spliced `order` — every edge whose variable is
    /// in `affected`, leaving all other edges untouched. This is the same
    /// per-variable program-order history scan [`DependenceGraph::build`]
    /// runs, restricted to the registers and wires the insertion touched, so
    /// the resulting edge multiset matches a from-scratch rebuild.
    fn recompute_edges(
        &mut self,
        function: &Function,
        affected: &SecondaryMap<VarId, ()>,
        new_ops: &SecondaryMap<OpId, ()>,
    ) {
        for &op in &self.order {
            if let Some(edges) = self.preds.get_mut(&op) {
                edges.retain(|d| !affected.contains_key(&d.var));
            }
        }
        // A new op starts with no edges at all, so its control dependences on
        // *unaffected* condition variables must be derived too: track the def
        // history of every condition variable guarding a new op. (A new op
        // never defines or uses such a variable — commits and initializers
        // only touch the affected register/wire pair — so the tracked
        // histories are built from existing ops alone.)
        let mut tracked: SecondaryMap<VarId, ()> = SecondaryMap::new();
        for (op, ()) in new_ops.iter() {
            let gid = self.guard_ids[&op];
            for &(cond, _) in &self.guard_table.guard(gid).terms {
                if let Some(cond_var) = cond.as_var() {
                    tracked.insert(cond_var, ());
                }
            }
        }
        let mut defs: SecondaryMap<VarId, Vec<OpId>> = SecondaryMap::new();
        let mut uses: SecondaryMap<VarId, Vec<OpId>> = SecondaryMap::new();
        // Split borrows: recomputed edges are pushed straight into the preds
        // entry while the guard tables are read alongside.
        let DependenceGraph {
            ref order,
            ref mut preds,
            ref guard_ids,
            ref guard_table,
        } = *self;
        for &op_id in order.iter() {
            let op = &function.ops[op_id];
            let gid = guard_ids[&op_id];
            let is_new = new_ops.contains_key(&op_id);
            let edges = preds.get_or_insert_with(op_id, Vec::new);

            for &(cond, _) in &guard_table.guard(gid).terms {
                let Some(cond_var) = cond.as_var() else {
                    continue;
                };
                // Existing ops keep their control edges on unaffected
                // conditions; new ops need every control edge derived.
                let wanted =
                    affected.contains_key(&cond_var) || (is_new && tracked.contains_key(&cond_var));
                if !wanted {
                    continue;
                }
                for &producer in defs.get(&cond_var).into_iter().flatten() {
                    edges.push(Dependence {
                        from: producer,
                        kind: DepKind::Control,
                        var: cond_var,
                    });
                }
            }

            for used in op.uses_iter() {
                if !affected.contains_key(&used) {
                    continue;
                }
                for &producer in defs.get(&used).into_iter().flatten() {
                    if !guard_table.mutually_exclusive(guard_ids[&producer], gid) {
                        edges.push(Dependence {
                            from: producer,
                            kind: DepKind::Flow,
                            var: used,
                        });
                    }
                }
            }

            if let Some(defined) = op.def() {
                if affected.contains_key(&defined) {
                    for &producer in defs.get(&defined).into_iter().flatten() {
                        if !guard_table.mutually_exclusive(guard_ids[&producer], gid) {
                            edges.push(Dependence {
                                from: producer,
                                kind: DepKind::Output,
                                var: defined,
                            });
                        }
                    }
                    for &reader in uses.get(&defined).into_iter().flatten() {
                        if reader != op_id
                            && !guard_table.mutually_exclusive(guard_ids[&reader], gid)
                        {
                            edges.push(Dependence {
                                from: reader,
                                kind: DepKind::Anti,
                                var: defined,
                            });
                        }
                    }
                }
            }

            // The history records one entry per *occurrence*, exactly as the
            // from-scratch build does (a twice-used operand yields two flow
            // edges downstream). Defs are also tracked for the condition
            // variables guarding new ops, feeding their control edges above.
            for used in op.uses_iter() {
                if affected.contains_key(&used) {
                    uses.get_or_insert_with(used, Vec::new).push(op_id);
                }
            }
            if let Some(defined) = op.def() {
                if affected.contains_key(&defined) || tracked.contains_key(&defined) {
                    defs.get_or_insert_with(defined, Vec::new).push(op_id);
                }
            }
        }
    }
}

fn affected_vars(log: &WireEditLog) -> SecondaryMap<VarId, ()> {
    let mut affected = SecondaryMap::new();
    for edit in &log.edits {
        affected.insert(edit.var, ());
        affected.insert(edit.wire, ());
    }
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DependenceGraph;
    use crate::resources::ResourceLibrary;
    use crate::scheduler::{schedule, Constraints};
    use crate::wires::insert_wire_variables_logged;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    /// Schedules, inserts wires and checks patch-vs-rebuild equivalence.
    /// (Debug builds also cross-check inside `apply_wire_edits` itself.)
    fn check(mut f: spark_ir::Function, period: f64) -> WireEditLog {
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let mut sched =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(period)).unwrap();
        let (_, log) = insert_wire_variables_logged(&mut f, &mut sched);
        let mut patched = graph.clone();
        patched.apply_wire_edits(&f, &log);
        let rebuilt = DependenceGraph::build(&f).unwrap();
        patched
            .same_dependences(&rebuilt)
            .expect("patch == rebuild");
        log
    }

    #[test]
    fn straight_line_chain_patch_matches_rebuild() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let r1 = b.var("r1", Type::Bits(8));
        let r2 = b.var("r2", Type::Bits(8));
        b.assign(OpKind::Add, r1, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, r2, vec![Value::Var(r1), Value::word(2)]);
        let log = check(b.finish(), 10.0);
        assert_eq!(log.edits.len(), 1);
        assert!(log.edits[0].initializer.is_none());
        assert_eq!(log.edits[0].commits.len(), 1);
    }

    #[test]
    fn conditional_writers_patch_matches_rebuild() {
        // The Figure 6/7 shape: conditional writers force an initializer and
        // per-branch commits; the patch must reproduce the control edges of
        // the commits and the anti edge from the initializer's register read.
        let mut b = FunctionBuilder::new("fig6");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let d = b.param("d", Type::Bits(8));
        let e = b.param("e", Type::Bits(8));
        let cond = b.param("cond", Type::Bool);
        let o1 = b.var("o1", Type::Bits(8));
        let o2 = b.output("o2", Type::Bits(8));
        b.if_begin(Value::Var(cond));
        b.assign(OpKind::Add, o1, vec![Value::Var(a), Value::Var(bb)]);
        b.else_begin();
        b.copy(o1, Value::Var(d));
        b.if_end();
        b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::Var(e)]);
        let log = check(b.finish(), 10.0);
        assert_eq!(log.edits.len(), 1);
        assert!(log.edits[0].initializer.is_some());
        assert!(log.edits[0].commits.len() >= 2);
    }

    #[test]
    fn ripple_chain_patch_matches_rebuild() {
        let mut b = FunctionBuilder::new("ripple");
        let nsb = b.output("nsb", Type::Bits(16));
        let len1 = b.param("len1", Type::Bits(8));
        let len2 = b.param("len2", Type::Bits(8));
        b.copy(nsb, Value::word(1));
        b.assign(OpKind::Add, nsb, vec![Value::Var(nsb), Value::Var(len1)]);
        b.assign(OpKind::Add, nsb, vec![Value::Var(nsb), Value::Var(len2)]);
        check(b.finish(), 10.0);
    }

    #[test]
    fn empty_log_patch_is_a_no_op() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let r1 = b.var("r1", Type::Bits(8));
        b.assign(OpKind::Add, r1, vec![Value::Var(a), Value::word(1)]);
        // A multi-state schedule with no same-state chains creates no wires.
        let log = check(b.finish(), 10.0);
        assert!(log.is_empty());
    }
}
