//! Data dependences, branch guards and mutual exclusion.
//!
//! Scheduling with operation chaining across conditional boundaries "has to
//! use a modified resource utilization and operation scheduling model that
//! looks across the conditional boundaries" (Section 3.1). The model here
//! captures exactly the information that needs: the guard (branch context)
//! of every operation, whether two operations are mutually exclusive (and may
//! therefore share a functional unit in the same cycle), and the data
//! dependences that chaining must respect.
//!
//! All per-operation facts live in dense [`SecondaryMap`]s keyed by the arena
//! id, so the scheduler's innermost loops pay one array read per lookup.

use spark_ir::{Function, HtgNode, OpId, RegionId, SecondaryMap, Value, VarId};

/// Why scheduling cannot proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// The function still contains loops; unroll (or pipeline) them first.
    ContainsLoops,
    /// The function still contains calls; inline them first.
    ContainsCalls,
    /// An operation could not be placed within the resource/latency limits.
    Unschedulable(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ContainsLoops => {
                write!(f, "function contains loops; unroll them before scheduling")
            }
            SchedError::ContainsCalls => {
                write!(f, "function contains calls; inline them before scheduling")
            }
            SchedError::Unschedulable(msg) => write!(f, "unschedulable: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// The branch context of an operation: the conditions (with polarity) of
/// every `if` node enclosing it, outermost first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Guard {
    /// `(condition value, polarity)` pairs; polarity `true` means the
    /// operation sits in the then-branch of that condition.
    pub terms: Vec<(Value, bool)>,
}

impl Guard {
    /// Returns `true` for an unguarded (always-executed) operation.
    pub fn is_unconditional(&self) -> bool {
        self.terms.is_empty()
    }

    /// Two guards are mutually exclusive when they disagree on the polarity
    /// of some shared condition.
    pub fn mutually_exclusive(&self, other: &Guard) -> bool {
        self.terms
            .iter()
            .any(|(cond, pol)| other.terms.iter().any(|(c2, p2)| c2 == cond && p2 != pol))
    }
}

/// The kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write: the consumer needs the producer's value. Chaining a
    /// flow dependence within a state requires a wire-variable.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// The operation is guarded by a condition computed by the producer.
    Control,
}

/// A single dependence edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Producer (must be scheduled no later than the consumer).
    pub from: OpId,
    /// Consumer.
    pub to: OpId,
    /// Edge kind.
    pub kind: DepKind,
    /// Variable the edge is about (the condition variable for control edges).
    pub var: VarId,
}

/// Data-dependence information for one loop-free, call-free function.
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    /// Live operations in program order (a valid topological order).
    pub order: Vec<OpId>,
    /// Incoming edges per operation.
    pub preds: SecondaryMap<OpId, Vec<Dependence>>,
    /// Guard (branch context) per operation.
    pub guards: SecondaryMap<OpId, Guard>,
}

impl DependenceGraph {
    /// Builds the dependence graph of `function`.
    ///
    /// # Errors
    /// Returns [`SchedError::ContainsLoops`] / [`SchedError::ContainsCalls`]
    /// if coarse-grain transformations have not yet removed loops and calls.
    pub fn build(function: &Function) -> Result<Self, SchedError> {
        if function.loop_count() > 0 {
            return Err(SchedError::ContainsLoops);
        }
        let mut graph = DependenceGraph::default();
        let mut guard_stack = Guard::default();
        collect(function, function.body, &mut guard_stack, &mut graph)?;

        // Data dependences by program order.
        let mut last_defs: SecondaryMap<VarId, Vec<OpId>> =
            SecondaryMap::with_capacity(function.vars.len());
        let mut last_uses: SecondaryMap<VarId, Vec<OpId>> =
            SecondaryMap::with_capacity(function.vars.len());
        for index in 0..graph.order.len() {
            let op_id = graph.order[index];
            let op = &function.ops[op_id];
            let guard = &graph.guards[&op_id];
            let mut edges = Vec::new();

            // Control dependences: the op depends on the producers of every
            // condition in its guard.
            for (cond, _) in &guard.terms {
                if let Some(cond_var) = cond.as_var() {
                    for &producer in last_defs.get(&cond_var).into_iter().flatten() {
                        edges.push(Dependence {
                            from: producer,
                            to: op_id,
                            kind: DepKind::Control,
                            var: cond_var,
                        });
                    }
                }
            }

            // Flow dependences on every operand.
            for used in op.uses() {
                for &producer in last_defs.get(&used).into_iter().flatten() {
                    if !graph.guards[&producer].mutually_exclusive(guard) {
                        edges.push(Dependence {
                            from: producer,
                            to: op_id,
                            kind: DepKind::Flow,
                            var: used,
                        });
                    }
                }
            }

            if let Some(defined) = op.def() {
                // Output dependences on earlier defs, anti dependences on earlier uses.
                for &producer in last_defs.get(&defined).into_iter().flatten() {
                    if !graph.guards[&producer].mutually_exclusive(guard) {
                        edges.push(Dependence {
                            from: producer,
                            to: op_id,
                            kind: DepKind::Output,
                            var: defined,
                        });
                    }
                }
                for &reader in last_uses.get(&defined).into_iter().flatten() {
                    if reader != op_id && !graph.guards[&reader].mutually_exclusive(guard) {
                        edges.push(Dependence {
                            from: reader,
                            to: op_id,
                            kind: DepKind::Anti,
                            var: defined,
                        });
                    }
                }
            }

            // Update access history.
            for used in op.uses() {
                last_uses.get_or_insert_with(used, Vec::new).push(op_id);
            }
            if let Some(defined) = op.def() {
                last_defs.get_or_insert_with(defined, Vec::new).push(op_id);
            }

            graph.preds.insert(op_id, edges);
        }
        Ok(graph)
    }

    /// Guard of an operation (unconditional if unknown).
    pub fn guard_of(&self, op: OpId) -> Guard {
        self.guards.get(&op).cloned().unwrap_or_default()
    }

    /// Borrowed guard of an operation, if it is part of the graph. The
    /// allocation-free variant of [`DependenceGraph::guard_of`] for hot paths.
    pub fn guard_ref(&self, op: OpId) -> Option<&Guard> {
        self.guards.get(&op)
    }

    /// Returns `true` if the two operations can never execute in the same run
    /// (they sit in opposite branches of some condition).
    pub fn mutually_exclusive(&self, a: OpId, b: OpId) -> bool {
        match (self.guards.get(&a), self.guards.get(&b)) {
            (Some(ga), Some(gb)) => ga.mutually_exclusive(gb),
            _ => false,
        }
    }

    /// Incoming dependences of an operation.
    pub fn preds_of(&self, op: OpId) -> &[Dependence] {
        self.preds.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn collect(
    function: &Function,
    region: RegionId,
    guard: &mut Guard,
    graph: &mut DependenceGraph,
) -> Result<(), SchedError> {
    for &node in &function.regions[region].nodes {
        match &function.nodes[node] {
            HtgNode::Block(b) => {
                for &op_id in &function.blocks[*b].ops {
                    let op = &function.ops[op_id];
                    if op.dead {
                        continue;
                    }
                    if matches!(op.kind, spark_ir::OpKind::Call { .. }) {
                        return Err(SchedError::ContainsCalls);
                    }
                    graph.order.push(op_id);
                    graph.guards.insert(op_id, guard.clone());
                }
            }
            HtgNode::If(i) => {
                guard.terms.push((i.cond, true));
                collect(function, i.then_region, guard, graph)?;
                guard.terms.pop();
                guard.terms.push((i.cond, false));
                collect(function, i.else_region, guard, graph)?;
                guard.terms.pop();
            }
            HtgNode::Loop(_) => return Err(SchedError::ContainsLoops),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type};

    #[test]
    fn guards_and_mutual_exclusion() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let before = b.copy(x, Value::word(0));
        b.if_begin(Value::Var(c));
        let then_op = b.copy(x, Value::word(1));
        b.else_begin();
        let else_op = b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        assert!(graph.guard_of(before).is_unconditional());
        assert!(!graph.guard_of(then_op).is_unconditional());
        assert!(graph.mutually_exclusive(then_op, else_op));
        assert!(!graph.mutually_exclusive(before, then_op));
    }

    #[test]
    fn flow_and_control_edges() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let cond = b.var("cond", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def_x = b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let def_cond = b.assign(OpKind::Gt, cond, vec![Value::Var(a), Value::word(7)]);
        b.if_begin(Value::Var(cond));
        let use_x = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(use_x);
        assert!(preds
            .iter()
            .any(|d| d.from == def_x && d.kind == DepKind::Flow));
        assert!(preds
            .iter()
            .any(|d| d.from == def_cond && d.kind == DepKind::Control));
    }

    #[test]
    fn anti_and_output_edges() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def1 = b.copy(x, Value::word(1));
        let reader = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let def2 = b.copy(x, Value::word(2));
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(def2);
        assert!(preds
            .iter()
            .any(|d| d.from == def1 && d.kind == DepKind::Output));
        assert!(preds
            .iter()
            .any(|d| d.from == reader && d.kind == DepKind::Anti));
    }

    #[test]
    fn cross_branch_dependences_are_dropped() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let then_def = b.copy(x, Value::word(1));
        b.else_begin();
        let else_def = b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(else_def);
        assert!(
            !preds.iter().any(|d| d.from == then_def),
            "mutually exclusive defs do not order each other"
        );
    }

    #[test]
    fn loops_and_calls_are_rejected() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(8));
        b.for_begin(i, 0, Value::word(3), 1);
        b.copy(i, Value::Var(i));
        b.loop_end();
        let f = b.finish();
        assert_eq!(
            DependenceGraph::build(&f).unwrap_err(),
            SchedError::ContainsLoops
        );

        let mut b = FunctionBuilder::new("g");
        let r = b.var("r", Type::Bits(8));
        b.call(Some(r), "h", vec![]);
        let f = b.finish();
        assert_eq!(
            DependenceGraph::build(&f).unwrap_err(),
            SchedError::ContainsCalls
        );
    }
}
