//! Data dependences, branch guards and mutual exclusion.
//!
//! Scheduling with operation chaining across conditional boundaries "has to
//! use a modified resource utilization and operation scheduling model that
//! looks across the conditional boundaries" (Section 3.1). The model here
//! captures exactly the information that needs: the guard (branch context)
//! of every operation, whether two operations are mutually exclusive (and may
//! therefore share a functional unit in the same cycle), and the data
//! dependences that chaining must respect.
//!
//! All per-operation facts live in dense [`SecondaryMap`]s keyed by the arena
//! id, so the scheduler's innermost loops pay one array read per lookup.
//! Guards are **interned**: every distinct branch context gets a dense
//! [`GuardId`], and pairwise mutual exclusion is precomputed into a bitset at
//! build time, so the scheduler's resource-sharing loop and the dependence
//! history scans answer exclusion queries with a single word test instead of
//! a term-by-term `Vec` comparison.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use spark_ir::{DenseKey, Function, HtgNode, OpId, RegionId, SecondaryMap, Value, VarId};

/// Why scheduling cannot proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// The function still contains loops; unroll (or pipeline) them first.
    ContainsLoops,
    /// The function still contains calls; inline them first.
    ContainsCalls,
    /// An operation could not be placed within the resource/latency limits.
    Unschedulable(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ContainsLoops => {
                write!(f, "function contains loops; unroll them before scheduling")
            }
            SchedError::ContainsCalls => {
                write!(f, "function contains calls; inline them before scheduling")
            }
            SchedError::Unschedulable(msg) => write!(f, "unschedulable: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// The branch context of an operation: the conditions (with polarity) of
/// every `if` node enclosing it, outermost first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Guard {
    /// `(condition value, polarity)` pairs; polarity `true` means the
    /// operation sits in the then-branch of that condition.
    pub terms: Vec<(Value, bool)>,
}

impl Guard {
    /// Returns `true` for an unguarded (always-executed) operation.
    pub fn is_unconditional(&self) -> bool {
        self.terms.is_empty()
    }

    /// Two guards are mutually exclusive when they disagree on the polarity
    /// of some shared condition.
    pub fn mutually_exclusive(&self, other: &Guard) -> bool {
        self.terms
            .iter()
            .any(|(cond, pol)| other.terms.iter().any(|(c2, p2)| c2 == cond && p2 != pol))
    }
}

/// Dense id of an interned [`Guard`] in a [`GuardTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GuardId(u32);

impl GuardId {
    /// The id every [`GuardTable`] reserves for the empty (unconditional)
    /// guard.
    pub const UNCONDITIONAL: GuardId = GuardId(0);

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DenseKey for GuardId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }
    fn from_dense_index(index: usize) -> Self {
        GuardId(index as u32)
    }
}

/// The interned guards of one function plus their precomputed pairwise
/// mutual-exclusion relation.
///
/// Distinct branch contexts are few (one per basic block at most), so the
/// exclusion relation fits a dense `len × len` bitset and every
/// [`GuardTable::mutually_exclusive`] query is one shift-and-mask on a word.
#[derive(Clone, Debug)]
pub struct GuardTable {
    guards: Vec<Guard>,
    lookup: HashMap<Vec<(Value, bool)>, GuardId>,
    /// Row-major `len × len` exclusion bitset, `row_words` words per row.
    excl: Vec<u64>,
    row_words: usize,
}

impl Default for GuardTable {
    fn default() -> Self {
        let mut table = GuardTable {
            guards: Vec::new(),
            lookup: HashMap::new(),
            excl: Vec::new(),
            row_words: 0,
        };
        let id = table.intern(&Guard::default());
        debug_assert_eq!(id, GuardId::UNCONDITIONAL);
        table
    }
}

impl GuardTable {
    /// Number of interned guards.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Always `false`: the unconditional guard is interned up front.
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// The guard behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not interned in this table.
    pub fn guard(&self, id: GuardId) -> &Guard {
        &self.guards[id.index()]
    }

    /// Interns `guard`, returning the id of an existing equal guard if any.
    /// Only valid before [`GuardTable::seal`]; the exclusion bitset does not
    /// cover guards interned afterwards.
    fn intern(&mut self, guard: &Guard) -> GuardId {
        if let Some(&id) = self.lookup.get(&guard.terms) {
            return id;
        }
        let id = GuardId(self.guards.len() as u32);
        self.guards.push(guard.clone());
        self.lookup.insert(guard.terms.clone(), id);
        id
    }

    /// Precomputes the pairwise exclusion bitset over all interned guards.
    ///
    /// Two guards are mutually exclusive iff they disagree on the polarity of
    /// a shared condition, so only guards sharing a condition value need
    /// testing: group `(guard, polarity)` occurrences by condition, then mark
    /// the cross product of the true side and the false side of each group.
    fn seal(&mut self) {
        let n = self.guards.len();
        self.row_words = n.div_ceil(64);
        self.excl = vec![0u64; n * self.row_words];
        let mut by_cond: HashMap<Value, (Vec<u32>, Vec<u32>)> = HashMap::new();
        for (id, guard) in self.guards.iter().enumerate() {
            for &(cond, polarity) in &guard.terms {
                let entry = by_cond.entry(cond).or_default();
                if polarity {
                    entry.0.push(id as u32);
                } else {
                    entry.1.push(id as u32);
                }
            }
        }
        for (trues, falses) in by_cond.values() {
            for &a in trues {
                for &b in falses {
                    self.mark(a as usize, b as usize);
                    self.mark(b as usize, a as usize);
                }
            }
        }
    }

    fn mark(&mut self, a: usize, b: usize) {
        self.excl[a * self.row_words + b / 64] |= 1u64 << (b % 64);
    }

    /// One-word mutual-exclusion test between two interned guards.
    #[inline]
    pub fn mutually_exclusive(&self, a: GuardId, b: GuardId) -> bool {
        let (a, b) = (a.index(), b.index());
        self.excl[a * self.row_words + b / 64] >> (b % 64) & 1 != 0
    }
}

/// The kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write: the consumer needs the producer's value. Chaining a
    /// flow dependence within a state requires a wire-variable.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// The operation is guarded by a condition computed by the producer.
    Control,
}

/// A single dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Dependence {
    /// Producer (must be scheduled no later than the consumer). The
    /// consumer is implicit: edges live in its
    /// [`DependenceGraph::preds_of`] slice.
    pub from: OpId,
    /// Edge kind.
    pub kind: DepKind,
    /// Variable the edge is about (the condition variable for control edges).
    pub var: VarId,
}

/// Data-dependence information for one loop-free, call-free function.
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    /// Live operations in program order (a valid topological order).
    pub order: Vec<OpId>,
    /// Incoming edges per operation.
    pub(crate) preds: SecondaryMap<OpId, Vec<Dependence>>,
    /// Interned guard per operation.
    pub(crate) guard_ids: SecondaryMap<OpId, GuardId>,
    /// The guard interner and exclusion bitset.
    pub(crate) guard_table: GuardTable,
}

/// Global count of from-scratch [`DependenceGraph::build`] executions, for
/// the one-build-per-synthesis-point assertions in tests.
static GRAPH_BUILDS: AtomicUsize = AtomicUsize::new(0);

impl DependenceGraph {
    /// Builds the dependence graph of `function`.
    ///
    /// # Errors
    /// Returns [`SchedError::ContainsLoops`] / [`SchedError::ContainsCalls`]
    /// if coarse-grain transformations have not yet removed loops and calls.
    pub fn build(function: &Function) -> Result<Self, SchedError> {
        GRAPH_BUILDS.fetch_add(1, Ordering::Relaxed);
        Self::build_uncounted(function)
    }

    /// Number of from-scratch builds in this process. Incremental patches
    /// ([`DependenceGraph::apply_wire_edits`]) and the debug cross-check
    /// rebuilds behind them do not count.
    pub fn build_count() -> usize {
        GRAPH_BUILDS.load(Ordering::Relaxed)
    }

    /// [`DependenceGraph::build`] without bumping the build counter — the
    /// from-scratch reference for the debug cross-check of incremental
    /// patching.
    pub(crate) fn build_uncounted(function: &Function) -> Result<Self, SchedError> {
        if function.loop_count() > 0 {
            return Err(SchedError::ContainsLoops);
        }
        let mut graph = DependenceGraph::default();
        let mut guard_stack = Guard::default();
        collect(function, function.body, &mut guard_stack, &mut graph)?;
        graph.guard_table.seal();

        // Data dependences by program order.
        let mut last_defs: SecondaryMap<VarId, Vec<OpId>> =
            SecondaryMap::with_capacity(function.vars.len());
        let mut last_uses: SecondaryMap<VarId, Vec<OpId>> =
            SecondaryMap::with_capacity(function.vars.len());
        for index in 0..graph.order.len() {
            let op_id = graph.order[index];
            let op = &function.ops[op_id];
            let gid = graph.guard_ids[&op_id];
            let mut edges = Vec::new();

            // Control dependences: the op depends on the producers of every
            // condition in its guard.
            for &(cond, _) in &graph.guard_table.guard(gid).terms {
                if let Some(cond_var) = cond.as_var() {
                    for &producer in last_defs.get(&cond_var).into_iter().flatten() {
                        edges.push(Dependence {
                            from: producer,
                            kind: DepKind::Control,
                            var: cond_var,
                        });
                    }
                }
            }

            // Flow dependences on every operand.
            for used in op.uses_iter() {
                for &producer in last_defs.get(&used).into_iter().flatten() {
                    if !graph
                        .guard_table
                        .mutually_exclusive(graph.guard_ids[&producer], gid)
                    {
                        edges.push(Dependence {
                            from: producer,
                            kind: DepKind::Flow,
                            var: used,
                        });
                    }
                }
            }

            if let Some(defined) = op.def() {
                // Output dependences on earlier defs, anti dependences on earlier uses.
                for &producer in last_defs.get(&defined).into_iter().flatten() {
                    if !graph
                        .guard_table
                        .mutually_exclusive(graph.guard_ids[&producer], gid)
                    {
                        edges.push(Dependence {
                            from: producer,
                            kind: DepKind::Output,
                            var: defined,
                        });
                    }
                }
                for &reader in last_uses.get(&defined).into_iter().flatten() {
                    if reader != op_id
                        && !graph
                            .guard_table
                            .mutually_exclusive(graph.guard_ids[&reader], gid)
                    {
                        edges.push(Dependence {
                            from: reader,
                            kind: DepKind::Anti,
                            var: defined,
                        });
                    }
                }
            }

            // Update access history.
            for used in op.uses_iter() {
                last_uses.get_or_insert_with(used, Vec::new).push(op_id);
            }
            if let Some(defined) = op.def() {
                last_defs.get_or_insert_with(defined, Vec::new).push(op_id);
            }

            graph.preds.insert(op_id, edges);
        }
        Ok(graph)
    }

    /// Guard of an operation (unconditional if unknown).
    pub fn guard_of(&self, op: OpId) -> Guard {
        self.guard_ref(op).cloned().unwrap_or_default()
    }

    /// Borrowed guard of an operation, if it is part of the graph. The
    /// allocation-free variant of [`DependenceGraph::guard_of`] for hot paths.
    pub fn guard_ref(&self, op: OpId) -> Option<&Guard> {
        self.guard_ids
            .get(&op)
            .map(|&id| self.guard_table.guard(id))
    }

    /// Interned guard id of an operation, if it is part of the graph.
    pub fn guard_id_of(&self, op: OpId) -> Option<GuardId> {
        self.guard_ids.get(&op).copied()
    }

    /// The guard interner and precomputed exclusion bitset.
    pub fn guard_table(&self) -> &GuardTable {
        &self.guard_table
    }

    /// Returns `true` if the two operations can never execute in the same run
    /// (they sit in opposite branches of some condition).
    pub fn mutually_exclusive(&self, a: OpId, b: OpId) -> bool {
        match (self.guard_ids.get(&a), self.guard_ids.get(&b)) {
            (Some(&ga), Some(&gb)) => self.guard_table.mutually_exclusive(ga, gb),
            _ => false,
        }
    }

    /// Incoming dependences of an operation.
    pub fn preds_of(&self, op: OpId) -> &[Dependence] {
        self.preds.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Checks that `self` and `other` describe the same dependence structure:
    /// identical operation order, equal guards per operation, and — per
    /// operation — the same multiset of incoming edges. Edge *order* within a
    /// predecessor list is not significant (no consumer depends on it), which
    /// is what lets the incremental patcher append recomputed edges instead
    /// of reproducing the from-scratch interleaving.
    ///
    /// # Errors
    /// Returns a description of the first divergence.
    pub fn same_dependences(&self, other: &DependenceGraph) -> Result<(), String> {
        if self.order != other.order {
            return Err(format!(
                "operation order differs: {} vs {} ops",
                self.order.len(),
                other.order.len()
            ));
        }
        for &op in &self.order {
            if self.guard_ref(op) != other.guard_ref(op) {
                return Err(format!("guard of op{} differs", op.raw()));
            }
            let mut mine: Vec<&Dependence> = self.preds_of(op).iter().collect();
            let mut theirs: Vec<&Dependence> = other.preds_of(op).iter().collect();
            mine.sort();
            theirs.sort();
            if mine != theirs {
                return Err(format!(
                    "incoming edges of op{} differ: {mine:?} vs {theirs:?}",
                    op.raw()
                ));
            }
        }
        Ok(())
    }
}

fn collect(
    function: &Function,
    region: RegionId,
    guard: &mut Guard,
    graph: &mut DependenceGraph,
) -> Result<(), SchedError> {
    for &node in &function.regions[region].nodes {
        match &function.nodes[node] {
            HtgNode::Block(b) => {
                let gid = graph.guard_table.intern(guard);
                for &op_id in &function.blocks[*b].ops {
                    let op = &function.ops[op_id];
                    if op.dead {
                        continue;
                    }
                    if matches!(op.kind, spark_ir::OpKind::Call { .. }) {
                        return Err(SchedError::ContainsCalls);
                    }
                    graph.order.push(op_id);
                    graph.guard_ids.insert(op_id, gid);
                }
            }
            HtgNode::If(i) => {
                guard.terms.push((i.cond, true));
                collect(function, i.then_region, guard, graph)?;
                guard.terms.pop();
                guard.terms.push((i.cond, false));
                collect(function, i.else_region, guard, graph)?;
                guard.terms.pop();
            }
            HtgNode::Loop(_) => return Err(SchedError::ContainsLoops),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type};

    #[test]
    fn guards_and_mutual_exclusion() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let before = b.copy(x, Value::word(0));
        b.if_begin(Value::Var(c));
        let then_op = b.copy(x, Value::word(1));
        b.else_begin();
        let else_op = b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        assert!(graph.guard_of(before).is_unconditional());
        assert!(!graph.guard_of(then_op).is_unconditional());
        assert!(graph.mutually_exclusive(then_op, else_op));
        assert!(!graph.mutually_exclusive(before, then_op));
    }

    #[test]
    fn interned_exclusion_matches_guard_reference() {
        // Nested conditionals: every op pair's bitset answer must equal the
        // term-by-term `Guard::mutually_exclusive` reference.
        let mut b = FunctionBuilder::new("f");
        let c1 = b.param("c1", Type::Bool);
        let c2 = b.param("c2", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.copy(x, Value::word(0));
        b.if_begin(Value::Var(c1));
        b.if_begin(Value::Var(c2));
        b.copy(x, Value::word(1));
        b.else_begin();
        b.copy(x, Value::word(2));
        b.if_end();
        b.else_begin();
        b.copy(x, Value::word(3));
        b.if_end();
        b.if_begin(Value::Var(c2));
        b.copy(x, Value::word(4));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        for &a in &graph.order {
            for &b in &graph.order {
                assert_eq!(
                    graph.mutually_exclusive(a, b),
                    graph.guard_of(a).mutually_exclusive(&graph.guard_of(b)),
                    "ops {a:?} / {b:?}"
                );
            }
        }
    }

    #[test]
    fn guard_ids_are_shared_within_a_branch_context() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let t1 = b.copy(x, Value::word(1));
        let t2 = b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        assert_eq!(graph.guard_id_of(t1), graph.guard_id_of(t2));
        assert_ne!(graph.guard_id_of(t1), Some(GuardId::UNCONDITIONAL));
        // Three contexts: unconditional (always interned), then-branch — and
        // the sealed table answers self-exclusion queries.
        assert!(graph.guard_table().len() >= 2);
        let gid = graph.guard_id_of(t1).unwrap();
        assert!(!graph.guard_table().mutually_exclusive(gid, gid));
    }

    #[test]
    fn build_counter_counts_from_scratch_builds() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        b.copy(x, Value::word(1));
        let f = b.finish();
        let before = DependenceGraph::build_count();
        let _ = DependenceGraph::build(&f).unwrap();
        let _ = DependenceGraph::build(&f).unwrap();
        // Other tests run concurrently in this process, so the counter may
        // move by more than our own two builds — never by less.
        assert!(DependenceGraph::build_count() >= before + 2);
    }

    #[test]
    fn flow_and_control_edges() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let cond = b.var("cond", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def_x = b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let def_cond = b.assign(OpKind::Gt, cond, vec![Value::Var(a), Value::word(7)]);
        b.if_begin(Value::Var(cond));
        let use_x = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(use_x);
        assert!(preds
            .iter()
            .any(|d| d.from == def_x && d.kind == DepKind::Flow));
        assert!(preds
            .iter()
            .any(|d| d.from == def_cond && d.kind == DepKind::Control));
    }

    #[test]
    fn anti_and_output_edges() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def1 = b.copy(x, Value::word(1));
        let reader = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let def2 = b.copy(x, Value::word(2));
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(def2);
        assert!(preds
            .iter()
            .any(|d| d.from == def1 && d.kind == DepKind::Output));
        assert!(preds
            .iter()
            .any(|d| d.from == reader && d.kind == DepKind::Anti));
    }

    #[test]
    fn cross_branch_dependences_are_dropped() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let then_def = b.copy(x, Value::word(1));
        b.else_begin();
        let else_def = b.copy(x, Value::word(2));
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let preds = graph.preds_of(else_def);
        assert!(
            !preds.iter().any(|d| d.from == then_def),
            "mutually exclusive defs do not order each other"
        );
    }

    #[test]
    fn loops_and_calls_are_rejected() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(8));
        b.for_begin(i, 0, Value::word(3), 1);
        b.copy(i, Value::Var(i));
        b.loop_end();
        let f = b.finish();
        assert_eq!(
            DependenceGraph::build(&f).unwrap_err(),
            SchedError::ContainsLoops
        );

        let mut b = FunctionBuilder::new("g");
        let r = b.var("r", Type::Bits(8));
        b.call(Some(r), "h", vec![]);
        let f = b.finish();
        assert_eq!(
            DependenceGraph::build(&f).unwrap_err(),
            SchedError::ContainsCalls
        );
    }
}
