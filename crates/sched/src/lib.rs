//! # spark-sched — chaining-aware scheduling for microprocessor blocks
//!
//! Scheduling support for the Spark HLS reproduction (Gupta et al., DAC 2002):
//!
//! * a functional-unit [`ResourceLibrary`] and per-flow [`Allocation`]s
//!   (unlimited for microprocessor blocks, constrained for the ASIC baseline);
//! * [`DependenceGraph`] with branch [`Guard`]s and mutual exclusion, the
//!   information needed to schedule and share resources across conditional
//!   boundaries (Section 3.1);
//! * a chaining-aware list [`schedule`]r driven by [`Constraints`];
//! * wire-variable insertion ([`insert_wire_variables`], Section 3.1.2);
//! * chaining-trail validation ([`validate_chaining`], Section 3.1.1);
//! * a sequential FSM [`Controller`] consumed by RTL generation.
//!
//! # Examples
//!
//! Chain four dependent additions into a single cycle:
//!
//! ```
//! use spark_ir::{FunctionBuilder, OpKind, Type, Value};
//! use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("chain");
//! let a = b.param("a", Type::Bits(16));
//! let mut prev = a;
//! for i in 0..4 {
//!     let x = b.var(&format!("x{i}"), Type::Bits(16));
//!     b.assign(OpKind::Add, x, vec![Value::Var(prev), Value::word(1)]);
//!     prev = x;
//! }
//! let f = b.finish();
//! let graph = DependenceGraph::build(&f)?;
//! let sched = schedule(&f, &graph, &ResourceLibrary::new(), &Constraints::microprocessor_block(10.0))?;
//! assert_eq!(sched.num_states, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod deps;
mod fsm;
mod resources;
mod rewrite;
mod scheduler;
mod trails;
mod wires;

pub use deps::{DepKind, Dependence, DependenceGraph, Guard, GuardId, GuardTable, SchedError};
pub use fsm::{ControlStep, Controller, ScheduledOp};
pub use resources::{Allocation, FuClass, FuSpec, ResourceLibrary};
pub use rewrite::{WireEdit, WireEditLog, WireInit};
pub use scheduler::{schedule, schedule_in, Constraints, SchedContext, Schedule};
pub use trails::{validate_chaining, ChainingReport};
pub use wires::{insert_wire_variables, insert_wire_variables_logged, WireReport};
