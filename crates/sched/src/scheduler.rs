//! Chaining-aware priority list scheduling.
//!
//! Spark schedules microprocessor blocks with an essentially unlimited
//! resource allocation and a hard bound on the cycle time, chaining
//! operations — across conditional boundaries when necessary — until the
//! clock period is full. The classical (baseline) formulation instead limits
//! resources and does not chain across basic blocks; both are expressed
//! through [`Constraints`].

use spark_ir::{BlockId, Function, OpId, SecondaryMap};

use crate::deps::{DepKind, DependenceGraph, SchedError};
use crate::resources::{Allocation, FuClass, ResourceLibrary};

/// The clock-agnostic analyses scheduling needs: the pre-wire dependence
/// graph (with its interned guard table) and the op → block ownership map.
///
/// Built once per transformed program and shared by every clock-sweep /
/// ablation / DSE point — see `TransformedProgram::sched_context` in
/// `spark-core` — instead of being rebuilt per point.
#[derive(Clone, Debug)]
pub struct SchedContext {
    /// Dependence graph of the (pre-wire-insertion) function.
    pub graph: DependenceGraph,
    /// Owning basic block of every live operation.
    pub op_blocks: SecondaryMap<OpId, BlockId>,
}

impl SchedContext {
    /// Builds the scheduling context of `function`.
    ///
    /// # Errors
    /// Returns [`SchedError`] if the function still contains loops or calls.
    pub fn build(function: &Function) -> Result<Self, SchedError> {
        Ok(SchedContext {
            graph: DependenceGraph::build(function)?,
            op_blocks: function.op_blocks(),
        })
    }
}

/// Scheduling constraints.
#[derive(Clone, Debug)]
pub struct Constraints {
    /// Clock period (cycle time bound) in nanoseconds.
    pub clock_period_ns: f64,
    /// Functional-unit allocation.
    pub allocation: Allocation,
    /// Allow chaining of data-dependent operations within one state.
    pub allow_chaining: bool,
    /// Allow chaining across basic-block (conditional) boundaries
    /// (Section 3.1 of the paper). Ignored when `allow_chaining` is false.
    pub allow_cross_block_chaining: bool,
    /// Upper bound on the number of control steps the scheduler may create.
    pub max_states: usize,
}

impl Constraints {
    /// The microprocessor-block scenario: unlimited resources, full chaining
    /// across conditional boundaries, tight cycle time.
    pub fn microprocessor_block(clock_period_ns: f64) -> Self {
        Constraints {
            clock_period_ns,
            allocation: Allocation::unlimited(),
            allow_chaining: true,
            allow_cross_block_chaining: true,
            max_states: 4096,
        }
    }

    /// The classical ASIC-style baseline: a small allocation, chaining only
    /// within a basic block, many states allowed.
    pub fn asic_baseline(clock_period_ns: f64) -> Self {
        Constraints {
            clock_period_ns,
            allocation: Allocation::asic_default(),
            allow_chaining: true,
            allow_cross_block_chaining: false,
            max_states: 1 << 16,
        }
    }

    /// Disables chaining entirely (every dependence crosses a state
    /// boundary) — used by the ablation benchmarks.
    pub fn without_chaining(mut self) -> Self {
        self.allow_chaining = false;
        self
    }

    /// Replaces the allocation (builder style).
    pub fn with_allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }
}

/// The result of scheduling one function.
///
/// All per-operation facts live in dense [`SecondaryMap`]s keyed by the
/// arena id. The fields stay public for reading; new operations (such as the
/// copies inserted by wire-variable insertion) should be added through
/// [`Schedule::record`], which also maintains the precomputed state → ops
/// index behind [`Schedule::ops_in_state`].
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Number of control steps (FSM states).
    pub num_states: usize,
    /// Clock period the schedule was built for.
    pub clock_period_ns: f64,
    /// Control step of every operation.
    pub op_state: SecondaryMap<OpId, usize>,
    /// Start time of every operation within its state (ns).
    pub op_start: SecondaryMap<OpId, f64>,
    /// Finish time of every operation within its state (ns).
    pub op_finish: SecondaryMap<OpId, f64>,
    /// Functional-unit instances used, per class (the maximum over states,
    /// with mutually exclusive operations sharing instances).
    pub fu_instances: SecondaryMap<FuClass, usize>,
    /// For every operation, the functional-unit instance index it was packed
    /// onto (class taken from the operation kind).
    pub op_instance: SecondaryMap<OpId, usize>,
    /// Operations per state in recording (scheduling) order — the O(1) index
    /// behind [`Schedule::ops_in_state`].
    state_ops: Vec<Vec<OpId>>,
}

impl Schedule {
    /// Control step of `op`.
    ///
    /// # Panics
    /// Panics if the operation was not scheduled.
    pub fn state_of(&self, op: OpId) -> usize {
        self.op_state[&op]
    }

    /// Records the placement of `op`: control step, start/finish times within
    /// the state and functional-unit instance. Keeps the per-state op index
    /// and `num_states` consistent; use this instead of inserting into the
    /// component maps directly.
    pub fn record(&mut self, op: OpId, state: usize, start: f64, finish: f64, instance: usize) {
        let previous = self.op_state.insert(op, state);
        debug_assert!(previous.is_none(), "operation {op:?} scheduled twice");
        self.op_start.insert(op, start);
        self.op_finish.insert(op, finish);
        self.op_instance.insert(op, instance);
        if self.state_ops.len() <= state {
            self.state_ops.resize_with(state + 1, Vec::new);
        }
        self.state_ops[state].push(op);
        self.num_states = self.num_states.max(state + 1);
    }

    /// Operations assigned to `state`, in scheduling order — an O(1) slice
    /// borrow from the index precomputed at construction.
    pub fn ops_in_state(&self, state: usize) -> &[OpId] {
        self.state_ops.get(state).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The longest combinational path (ns) in `state`.
    pub fn state_critical_path(&self, state: usize) -> f64 {
        self.ops_in_state(state)
            .iter()
            .map(|op| self.op_finish.get(op).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// The longest combinational path (ns) over all states — the cycle time
    /// the design actually needs.
    pub fn critical_path_ns(&self) -> f64 {
        (0..self.num_states)
            .map(|s| self.state_critical_path(s))
            .fold(0.0, f64::max)
    }

    /// Total number of scheduled operations.
    pub fn len(&self) -> usize {
        self.op_state.len()
    }

    /// Returns `true` if nothing was scheduled.
    pub fn is_empty(&self) -> bool {
        self.op_state.is_empty()
    }
}

/// Schedules `function` under `constraints`.
///
/// The function must be loop-free and call-free (apply the coarse-grain
/// transformations first).
///
/// # Errors
/// Returns [`SchedError`] if the function cannot be scheduled (loops, calls,
/// an operation slower than the clock period, or the state limit is hit).
pub fn schedule(
    function: &Function,
    graph: &DependenceGraph,
    library: &ResourceLibrary,
    constraints: &Constraints,
) -> Result<Schedule, SchedError> {
    // Block of every op, for the cross-block chaining test — built in one
    // pass instead of a per-op block scan.
    let block_of: SecondaryMap<OpId, BlockId> = function.op_blocks();
    schedule_with_blocks(function, graph, &block_of, library, constraints)
}

/// [`schedule`] against a prebuilt [`SchedContext`] — the entry point for
/// sweeps that share one context (graph + op → block map) across many clock
/// points.
///
/// # Errors
/// Returns [`SchedError`] if the function cannot be scheduled.
pub fn schedule_in(
    function: &Function,
    context: &SchedContext,
    library: &ResourceLibrary,
    constraints: &Constraints,
) -> Result<Schedule, SchedError> {
    schedule_with_blocks(
        function,
        &context.graph,
        &context.op_blocks,
        library,
        constraints,
    )
}

fn schedule_with_blocks(
    function: &Function,
    graph: &DependenceGraph,
    block_of: &SecondaryMap<OpId, BlockId>,
    library: &ResourceLibrary,
    constraints: &Constraints,
) -> Result<Schedule, SchedError> {
    let mut result = Schedule {
        clock_period_ns: constraints.clock_period_ns,
        ..Schedule::default()
    };
    let guard_table = graph.guard_table();

    // Functional-unit instances: state -> class -> instances -> occupants
    // (occupants recorded with their interned guard for the exclusion test).
    let mut instances: Vec<SecondaryMap<FuClass, Vec<Vec<crate::deps::GuardId>>>> = Vec::new();

    // Per-op scratch: the data (flow/control) dependences with their
    // precomputed chainability, so the candidate-state retry loop below runs
    // over a flat slice instead of re-deciding chainability per retry.
    let mut data_deps: Vec<(OpId, bool)> = Vec::new();

    for &op_id in &graph.order {
        let op = &function.ops[op_id];
        let delay = library.op_delay(&op.kind, &op.args);
        if delay > constraints.clock_period_ns {
            return Err(SchedError::Unschedulable(format!(
                "operation `{}` needs {delay:.2} ns but the clock period is {:.2} ns",
                op.kind, constraints.clock_period_ns
            )));
        }
        let class = FuClass::for_op(&op.kind);
        let op_guard = graph
            .guard_id_of(op_id)
            .expect("ops in graph order carry guards");

        // Minimum state from dependences, assuming chaining wherever allowed;
        // data dependences and their chainability are cached for the retries.
        data_deps.clear();
        let mut state = 0usize;
        for dep in graph.preds_of(op_id) {
            let producer_state = result.op_state[&dep.from];
            let same_state_allowed = match dep.kind {
                DepKind::Anti | DepKind::Output => true,
                DepKind::Flow | DepKind::Control => {
                    let chainable = constraints.allow_chaining
                        && (constraints.allow_cross_block_chaining
                            || block_of.get(&dep.from) == block_of.get(&op_id));
                    data_deps.push((dep.from, chainable));
                    chainable
                }
            };
            let minimum = if same_state_allowed {
                producer_state
            } else {
                producer_state + 1
            };
            state = state.max(minimum);
        }

        // Find the first state >= `state` where timing and resources fit.
        loop {
            if state >= constraints.max_states {
                return Err(SchedError::Unschedulable(format!(
                    "state limit of {} exceeded",
                    constraints.max_states
                )));
            }
            // Arrival time: chained inputs produced in this same state.
            let mut arrival: f64 = 0.0;
            let mut timing_ok = true;
            for &(from, chainable) in &data_deps {
                if result.op_state[&from] == state {
                    if !chainable {
                        timing_ok = false;
                        break;
                    }
                    arrival = arrival.max(result.op_finish[&from]);
                }
            }
            if !timing_ok || arrival + delay > constraints.clock_period_ns {
                state += 1;
                continue;
            }

            // Resource check with mutual-exclusion sharing: an instance can
            // be reused when every occupant's guard excludes this op's —
            // each test one word of the precomputed exclusion bitset.
            while instances.len() <= state {
                instances.push(SecondaryMap::new());
            }
            let slot = if class.is_free() {
                Some(0)
            } else {
                let class_instances = instances[state].get_or_insert_with(class, Vec::new);
                let mut found = None;
                for (index, occupants) in class_instances.iter().enumerate() {
                    if occupants
                        .iter()
                        .all(|&other| guard_table.mutually_exclusive(other, op_guard))
                    {
                        found = Some(index);
                        break;
                    }
                }
                match found {
                    Some(index) => Some(index),
                    None if class_instances.len() < constraints.allocation.limit(class) => {
                        class_instances.push(Vec::new());
                        Some(class_instances.len() - 1)
                    }
                    None => None,
                }
            };
            let Some(instance) = slot else {
                state += 1;
                continue;
            };
            if !class.is_free() {
                instances[state]
                    .get_mut(&class)
                    .expect("class entry exists")[instance]
                    .push(op_guard);
            }

            result.record(op_id, state, arrival, arrival + delay, instance);
            break;
        }
    }

    // Functional units needed: per class, the maximum instance count over states.
    for state_instances in &instances {
        for (class, class_instances) in state_instances.iter() {
            let used = class_instances
                .iter()
                .filter(|occupants| !occupants.is_empty())
                .count();
            let entry = result.fu_instances.get_or_insert_with(class, || 0);
            *entry = (*entry).max(used);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    /// a chain of four dependent additions.
    fn adder_chain() -> Function {
        let mut b = FunctionBuilder::new("chain");
        let a = b.param("a", Type::Bits(16));
        let mut prev = a;
        for i in 0..4 {
            let next = b.var(&format!("x{i}"), Type::Bits(16));
            b.assign(OpKind::Add, next, vec![Value::Var(prev), Value::word(1)]);
            prev = next;
        }
        b.finish()
    }

    #[test]
    fn chaining_packs_dependent_ops_into_one_state() {
        let f = adder_chain();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        // 4 chained adders at 2.0 ns each fit a 10 ns clock.
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        assert_eq!(sched.num_states, 1);
        assert!((sched.critical_path_ns() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tight_clock_forces_multiple_states() {
        let f = adder_chain();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        // Only two 2.0 ns adders fit a 4.5 ns clock.
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(4.5)).unwrap();
        assert_eq!(sched.num_states, 2);
        assert!(sched.critical_path_ns() <= 4.5);
    }

    #[test]
    fn disabling_chaining_serializes_dependences() {
        let f = adder_chain();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(
            &f,
            &graph,
            &lib,
            &Constraints::microprocessor_block(10.0).without_chaining(),
        )
        .unwrap();
        assert_eq!(sched.num_states, 4);
    }

    #[test]
    fn resource_limits_serialize_independent_ops() {
        // Four independent additions.
        let mut b = FunctionBuilder::new("par");
        let a = b.param("a", Type::Bits(16));
        for i in 0..4 {
            let x = b.var(&format!("x{i}"), Type::Bits(16));
            b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(i)]);
        }
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();

        let unlimited =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        assert_eq!(unlimited.num_states, 1);
        assert_eq!(unlimited.fu_instances[&FuClass::Adder], 4);

        let constrained = Constraints::microprocessor_block(10.0)
            .with_allocation(Allocation::constrained().with_limit(FuClass::Adder, 1));
        let serial = schedule(&f, &graph, &lib, &constrained).unwrap();
        assert_eq!(serial.num_states, 4);
        assert_eq!(serial.fu_instances[&FuClass::Adder], 1);
    }

    #[test]
    fn mutually_exclusive_ops_share_a_unit() {
        // if (c) x = a + 1 else x = a + 2  -- both adds can share one adder
        // in the same state.
        let mut b = FunctionBuilder::new("mux");
        let a = b.param("a", Type::Bits(16));
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(16));
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.else_begin();
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(2)]);
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let constrained = Constraints::microprocessor_block(10.0)
            .with_allocation(Allocation::constrained().with_limit(FuClass::Adder, 1));
        let sched = schedule(&f, &graph, &lib, &constrained).unwrap();
        assert_eq!(
            sched.num_states, 1,
            "exclusive branches share the single adder"
        );
        assert_eq!(sched.fu_instances[&FuClass::Adder], 1);
    }

    #[test]
    fn cross_block_chaining_toggle_matters() {
        // cond = a > 3; if (cond) { x = a + 1 }  — with cross-block chaining
        // the guarded add fits in state 0; without it, it must wait a state.
        let mut b = FunctionBuilder::new("cross");
        let a = b.param("a", Type::Bits(16));
        let cond = b.var("cond", Type::Bool);
        let x = b.var("x", Type::Bits(16));
        b.assign(OpKind::Gt, cond, vec![Value::Var(a), Value::word(3)]);
        b.if_begin(Value::Var(cond));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();

        let with_cross =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        assert_eq!(with_cross.num_states, 1);

        let mut no_cross = Constraints::microprocessor_block(10.0);
        no_cross.allow_cross_block_chaining = false;
        let sched = schedule(&f, &graph, &lib, &no_cross).unwrap();
        assert_eq!(sched.num_states, 2);
    }

    #[test]
    fn impossible_clock_is_an_error() {
        let f = adder_chain();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let err = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(1.0)).unwrap_err();
        assert!(matches!(err, SchedError::Unschedulable(_)));
    }

    #[test]
    fn copies_are_free() {
        let mut b = FunctionBuilder::new("copies");
        let a = b.param("a", Type::Bits(16));
        let mut prev = a;
        for i in 0..10 {
            let next = b.var(&format!("c{i}"), Type::Bits(16));
            b.copy(next, Value::Var(prev));
            prev = next;
        }
        let f = b.finish();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(5.0)).unwrap();
        assert_eq!(sched.num_states, 1);
        assert_eq!(sched.critical_path_ns(), 0.0);
        assert!(!sched.fu_instances.contains_key(&FuClass::Wire));
    }

    #[test]
    fn ops_in_state_index_matches_op_state_map() {
        let f = adder_chain();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(4.5)).unwrap();
        let mut indexed = 0usize;
        for state in 0..sched.num_states {
            for op in sched.ops_in_state(state) {
                assert_eq!(sched.op_state.get(op), Some(&state));
                indexed += 1;
            }
        }
        assert_eq!(indexed, sched.len());
        assert!(sched.ops_in_state(sched.num_states).is_empty());
    }
}
