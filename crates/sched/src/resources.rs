//! Functional-unit classes, delay/area characterisation and allocations.
//!
//! The paper's scheduling model charges every operation the delay of the
//! functional unit it maps to and packs chained operations into a clock
//! period. Microprocessor blocks are scheduled with "little or no resource
//! constraints but tight bounds on the cycle time" (abstract); the ASIC
//! baseline of Figure 1(a) instead has a small allocation and relaxed cycle
//! counts. Both are expressed with [`Allocation`].

use std::collections::BTreeMap;

use spark_ir::{OpKind, Value};

/// The class of functional unit an operation executes on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Ripple-carry style adder.
    Adder,
    /// Subtractor (kept separate from adders as in classical HLS libraries).
    Subtractor,
    /// Combinational multiplier.
    Multiplier,
    /// Magnitude/equality comparator.
    Comparator,
    /// Bitwise logic (AND/OR/XOR/NOT).
    Logic,
    /// Barrel shifter.
    Shifter,
    /// Steering logic (multiplexer) — also used for indexed array reads.
    Mux,
    /// Free wiring: copies, bit slices, concatenations, constant reads.
    Wire,
}

impl FuClass {
    /// All classes, in a stable order (used by reports).
    pub const ALL: [FuClass; 8] = [
        FuClass::Adder,
        FuClass::Subtractor,
        FuClass::Multiplier,
        FuClass::Comparator,
        FuClass::Logic,
        FuClass::Shifter,
        FuClass::Mux,
        FuClass::Wire,
    ];

    /// The class an operation kind executes on.
    ///
    /// Array reads map to steering logic (an indexed read is a multiplexer
    /// over the array elements); array reads with a constant index collapse
    /// to plain wiring, which [`ResourceLibrary::op_delay`] accounts for.
    pub fn for_op(kind: &OpKind) -> FuClass {
        match kind {
            OpKind::Add => FuClass::Adder,
            OpKind::Sub => FuClass::Subtractor,
            OpKind::Mul => FuClass::Multiplier,
            OpKind::Eq | OpKind::Ne | OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge => {
                FuClass::Comparator
            }
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => FuClass::Logic,
            OpKind::Shl | OpKind::Shr => FuClass::Shifter,
            OpKind::Select => FuClass::Mux,
            OpKind::ArrayRead { .. } | OpKind::ArrayWrite { .. } => FuClass::Mux,
            OpKind::Copy
            | OpKind::Slice { .. }
            | OpKind::Concat
            | OpKind::Call { .. }
            | OpKind::Return => FuClass::Wire,
        }
    }

    /// Returns `true` if operations of this class occupy no physical unit.
    pub fn is_free(self) -> bool {
        self == FuClass::Wire
    }
}

/// Functional-unit classes are dense keys (their declaration order matches
/// both [`FuClass::ALL`] and `Ord`), so per-class tables can use
/// [`spark_ir::SecondaryMap`] with the same deterministic iteration order a
/// `BTreeMap<FuClass, _>` had.
impl spark_ir::DenseKey for FuClass {
    #[inline]
    fn dense_index(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_dense_index(index: usize) -> Self {
        FuClass::ALL[index]
    }
}

impl std::fmt::Display for FuClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FuClass::Adder => "adder",
            FuClass::Subtractor => "subtractor",
            FuClass::Multiplier => "multiplier",
            FuClass::Comparator => "comparator",
            FuClass::Logic => "logic",
            FuClass::Shifter => "shifter",
            FuClass::Mux => "mux",
            FuClass::Wire => "wire",
        };
        f.write_str(name)
    }
}

/// Delay/area characterisation of one functional-unit class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuSpec {
    /// Combinational delay in nanoseconds.
    pub delay_ns: f64,
    /// Area in equivalent gate units.
    pub area: f64,
}

/// A technology library: delay and area per functional-unit class.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceLibrary {
    specs: BTreeMap<FuClass, FuSpec>,
    /// Additional delay charged per multiplexer level introduced by steering
    /// logic in front of a shared unit.
    pub mux_delay_ns: f64,
    /// Area of one register bit.
    pub register_bit_area: f64,
}

impl Default for ResourceLibrary {
    fn default() -> Self {
        let mut specs = BTreeMap::new();
        specs.insert(
            FuClass::Adder,
            FuSpec {
                delay_ns: 2.0,
                area: 32.0,
            },
        );
        specs.insert(
            FuClass::Subtractor,
            FuSpec {
                delay_ns: 2.0,
                area: 36.0,
            },
        );
        specs.insert(
            FuClass::Multiplier,
            FuSpec {
                delay_ns: 6.0,
                area: 300.0,
            },
        );
        specs.insert(
            FuClass::Comparator,
            FuSpec {
                delay_ns: 1.2,
                area: 18.0,
            },
        );
        specs.insert(
            FuClass::Logic,
            FuSpec {
                delay_ns: 0.4,
                area: 8.0,
            },
        );
        specs.insert(
            FuClass::Shifter,
            FuSpec {
                delay_ns: 1.6,
                area: 48.0,
            },
        );
        specs.insert(
            FuClass::Mux,
            FuSpec {
                delay_ns: 0.5,
                area: 6.0,
            },
        );
        specs.insert(
            FuClass::Wire,
            FuSpec {
                delay_ns: 0.0,
                area: 0.0,
            },
        );
        ResourceLibrary {
            specs,
            mux_delay_ns: 0.5,
            register_bit_area: 6.0,
        }
    }
}

impl ResourceLibrary {
    /// The default library (unit-ish delays typical of a 180 nm standard-cell
    /// flow; absolute values do not matter, only relative shape).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the spec of one class (builder style).
    pub fn with_spec(mut self, class: FuClass, spec: FuSpec) -> Self {
        self.specs.insert(class, spec);
        self
    }

    /// Characterisation of a class.
    pub fn spec(&self, class: FuClass) -> FuSpec {
        self.specs.get(&class).copied().unwrap_or(FuSpec {
            delay_ns: 1.0,
            area: 10.0,
        })
    }

    /// Delay of one operation, taking operand shapes into account: an array
    /// read with a constant index, like the buffer accesses of the fully
    /// unrolled ILD, is free wiring rather than a real multiplexer.
    pub fn op_delay(&self, kind: &OpKind, args: &[Value]) -> f64 {
        match kind {
            OpKind::ArrayRead { .. } | OpKind::ArrayWrite { .. } => {
                if args.first().map(|a| a.is_const()).unwrap_or(false) {
                    0.0
                } else {
                    self.spec(FuClass::Mux).delay_ns
                }
            }
            _ => self.spec(FuClass::for_op(kind)).delay_ns,
        }
    }

    /// Area of one operation instance (same constant-index refinement as
    /// [`Self::op_delay`]).
    pub fn op_area(&self, kind: &OpKind, args: &[Value]) -> f64 {
        match kind {
            OpKind::ArrayRead { .. } | OpKind::ArrayWrite { .. } => {
                if args.first().map(|a| a.is_const()).unwrap_or(false) {
                    0.0
                } else {
                    self.spec(FuClass::Mux).area
                }
            }
            _ => self.spec(FuClass::for_op(kind)).area,
        }
    }
}

/// How many functional units of each class the scheduler may use per state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    limits: BTreeMap<FuClass, usize>,
    unlimited: bool,
}

impl Allocation {
    /// The microprocessor-block scenario: effectively unlimited units.
    pub fn unlimited() -> Self {
        Allocation {
            limits: BTreeMap::new(),
            unlimited: true,
        }
    }

    /// An empty, fully constrained allocation; add classes with
    /// [`Self::with_limit`]. Classes that are never added default to one unit
    /// (except [`FuClass::Wire`], which is always free).
    pub fn constrained() -> Self {
        Allocation {
            limits: BTreeMap::new(),
            unlimited: false,
        }
    }

    /// A typical ASIC-style allocation used by the baseline flow: one unit of
    /// every class except two adders and two comparators.
    pub fn asic_default() -> Self {
        Allocation::constrained()
            .with_limit(FuClass::Adder, 2)
            .with_limit(FuClass::Comparator, 2)
            .with_limit(FuClass::Subtractor, 1)
            .with_limit(FuClass::Multiplier, 1)
            .with_limit(FuClass::Logic, 4)
            .with_limit(FuClass::Shifter, 1)
            .with_limit(FuClass::Mux, 8)
    }

    /// Sets the number of units of `class` (builder style).
    pub fn with_limit(mut self, class: FuClass, units: usize) -> Self {
        self.limits.insert(class, units);
        self
    }

    /// Returns `true` if this allocation imposes no limits.
    pub fn is_unlimited(&self) -> bool {
        self.unlimited
    }

    /// Units available for a class (`usize::MAX` when unlimited or free).
    pub fn limit(&self, class: FuClass) -> usize {
        if self.unlimited || class.is_free() {
            usize::MAX
        } else {
            self.limits.get(&class).copied().unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert_eq!(FuClass::for_op(&OpKind::Add), FuClass::Adder);
        assert_eq!(FuClass::for_op(&OpKind::Lt), FuClass::Comparator);
        assert_eq!(FuClass::for_op(&OpKind::Select), FuClass::Mux);
        assert_eq!(FuClass::for_op(&OpKind::Copy), FuClass::Wire);
        assert!(FuClass::Wire.is_free());
        assert!(!FuClass::Adder.is_free());
    }

    #[test]
    fn constant_index_array_reads_are_free() {
        let lib = ResourceLibrary::new();
        let read = OpKind::ArrayRead {
            array: spark_ir::VarId::from_raw(0),
        };
        assert_eq!(lib.op_delay(&read, &[Value::word(3)]), 0.0);
        assert!(lib.op_delay(&read, &[Value::Var(spark_ir::VarId::from_raw(1))]) > 0.0);
        assert_eq!(lib.op_area(&read, &[Value::word(3)]), 0.0);
    }

    #[test]
    fn allocations() {
        let unlimited = Allocation::unlimited();
        assert_eq!(unlimited.limit(FuClass::Adder), usize::MAX);
        assert!(unlimited.is_unlimited());

        let asic = Allocation::asic_default();
        assert_eq!(asic.limit(FuClass::Adder), 2);
        assert_eq!(asic.limit(FuClass::Multiplier), 1);
        // Unlisted classes default to a single unit.
        let tight = Allocation::constrained();
        assert_eq!(tight.limit(FuClass::Adder), 1);
        // Wire is always free.
        assert_eq!(tight.limit(FuClass::Wire), usize::MAX);
    }

    #[test]
    fn library_overrides() {
        let lib = ResourceLibrary::new().with_spec(
            FuClass::Adder,
            FuSpec {
                delay_ns: 3.5,
                area: 40.0,
            },
        );
        assert_eq!(lib.spec(FuClass::Adder).delay_ns, 3.5);
        assert_eq!(lib.op_delay(&OpKind::Add, &[]), 3.5);
    }
}
