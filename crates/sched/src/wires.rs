//! Wire-variable insertion (Section 3.1.2 of the paper).
//!
//! Registers can only be read in the cycle after they are written. To chain
//! an operation with the producer of one of its operands *within* a cycle,
//! the producer must drive a **wire-variable**: the producer is rewritten to
//! write a fresh variable marked as a wire, a copy back into the original
//! (potentially registered) variable is inserted after it, and same-cycle
//! readers are redirected to the wire. When producers sit in conditional
//! branches, the wire is pre-initialised with the register value before the
//! conditional so that every chaining trail supplies a value (the situation
//! of Figures 6 and 7).
//!
//! Every rewrite is recorded in a [`WireEditLog`], the structured record
//! that lets the pipeline patch the pre-insertion
//! [`DependenceGraph`](crate::DependenceGraph) in place instead of
//! rebuilding it from scratch (see
//! [`DependenceGraph::apply_wire_edits`](crate::DependenceGraph::apply_wire_edits)).

use spark_ir::{
    BlockId, Function, HtgNode, NodeId, OpId, OpKind, RegionId, SecondaryMap, Value, VarId,
};

use crate::rewrite::{WireEdit, WireEditLog, WireInit};
use crate::scheduler::Schedule;

/// Statistics of a wire-variable insertion run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Wire-variables created.
    pub wires_created: usize,
    /// Producer operations redirected to write a wire.
    pub producers_rewritten: usize,
    /// Commit copies (`register = wire`) inserted.
    pub commit_copies: usize,
    /// Pre-initialisation copies (`wire = register`) inserted in front of
    /// conditionals (the Figure 7 case).
    pub initializers: usize,
    /// Reader operands redirected from the register to the wire.
    pub readers_redirected: usize,
}

/// Inserts wire-variables for every value that is produced and consumed in
/// the same control step, updating `schedule` with the new copy operations.
///
/// Returns a [`WireReport`] describing the rewrites. The transformation
/// preserves sequential semantics (checked by the interpreter-equivalence
/// tests) and leaves registers holding exactly the values they held before.
pub fn insert_wire_variables(function: &mut Function, schedule: &mut Schedule) -> WireReport {
    insert_wire_variables_logged(function, schedule).0
}

/// [`insert_wire_variables`] returning the structured [`WireEditLog`] of
/// every rewrite, for incremental dependence-graph patching.
pub fn insert_wire_variables_logged(
    function: &mut Function,
    schedule: &mut Schedule,
) -> (WireReport, WireEditLog) {
    let mut report = WireReport::default();
    let mut log = WireEditLog::default();

    // Group same-state flow pairs by (variable, state).
    // For determinism iterate ops in program order.
    let order: Vec<OpId> = function.live_ops();
    let position: SecondaryMap<OpId, usize> = order
        .iter()
        .copied()
        .enumerate()
        .map(|(i, o)| (o, i))
        .collect();
    let op_blocks = function.op_blocks();
    // Per-block guard structure, in one walk: the outermost compound node a
    // block lives under (absent for top-level blocks). Replaces the per-group
    // `is_guarded` / `outermost_conditional_before` HTG walks.
    let outermost = outermost_compounds(function);

    // variable -> per-state (writers, readers) among live ops, the inner
    // lists kept sorted by state. Dense per-variable tables replace the old
    // `BTreeMap<(VarId, usize), _>`; iteration below is variable-major then
    // state-ascending, the same order the map gave.
    type Accesses = (Vec<OpId>, Vec<OpId>);
    let mut accesses: SecondaryMap<VarId, Vec<(usize, Accesses)>> =
        SecondaryMap::with_capacity(function.vars.len());
    fn state_entry(
        accesses: &mut SecondaryMap<VarId, Vec<(usize, Accesses)>>,
        var: VarId,
        state: usize,
    ) -> &mut Accesses {
        let entries = accesses.get_or_insert_with(var, Vec::new);
        let index = match entries.binary_search_by_key(&state, |&(s, _)| s) {
            Ok(index) => index,
            Err(index) => {
                entries.insert(index, (state, Accesses::default()));
                index
            }
        };
        &mut entries[index].1
    }
    for &op_id in &order {
        let Some(&state) = schedule.op_state.get(&op_id) else {
            continue;
        };
        let op = &function.ops[op_id];
        let defined = op.def();
        for used in op.uses_iter() {
            if !function.vars[used].is_array() {
                state_entry(&mut accesses, used, state).1.push(op_id);
            }
        }
        if let Some(defined) = defined {
            if !function.vars[defined].is_array() {
                state_entry(&mut accesses, defined, state).0.push(op_id);
            }
        }
    }

    // Iterate the access table directly (variable-major, state-ascending —
    // the old `BTreeMap<(VarId, usize), _>` order); the loop mutates only
    // the function/schedule, never the table.
    for (var, entries) in accesses.iter() {
        for &(state, (ref writers, ref readers)) in entries.iter() {
            if writers.is_empty() || readers.is_empty() {
                continue;
            }
            // A reader needs the wire only if some writer precedes it in program
            // order (otherwise it legitimately reads the register).
            let first_writer = writers
                .iter()
                .copied()
                .min_by_key(|w| position[w])
                .expect("non-empty");
            let chained_readers: Vec<OpId> = readers
                .iter()
                .copied()
                .filter(|r| position[r] > position[&first_writer])
                .collect();
            if chained_readers.is_empty() {
                continue;
            }
            if function.vars[var].is_wire() {
                continue; // already a wire; nothing to do
            }

            let ty = function.vars[var].ty;
            let wire_name = format!("w_{}_{}", function.vars[var].name, state);
            let wire = function.add_var(spark_ir::Var::wire(wire_name, ty));
            report.wires_created += 1;
            let mut edit = WireEdit {
                var,
                wire,
                initializer: None,
                commits: Vec::new(),
            };

            // Figure 7 case: if any relevant writer is conditional, pre-initialise
            // the wire from the register before the outermost conditional that
            // contains the first writer. Guardedness and the outermost compound
            // come from the per-block table precomputed above; only the
            // compound's current index in the body is re-derived, because
            // earlier initializer insertions shift it.
            let needs_initializer = writers.iter().any(|&w| {
                position[&w] >= position[&first_writer]
                    && op_blocks.get(&w).is_some_and(|b| outermost.contains_key(b))
            });
            if needs_initializer {
                if let Some(&conditional) =
                    op_blocks.get(&first_writer).and_then(|b| outermost.get(b))
                {
                    let region = function.body;
                    let index = function.regions[region]
                        .nodes
                        .iter()
                        .position(|&n| n == conditional)
                        .expect("outermost compound sits in the body region");
                    let anchor = first_live_op_under(function, conditional)
                        .expect("the conditional contains the (live) first writer");
                    let init_block =
                        function.add_block(format!("winit_{}", function.vars[var].name));
                    let init_op = function.push_op(
                        init_block,
                        OpKind::Copy,
                        Some(wire),
                        vec![Value::Var(var)],
                    );
                    let node = function.add_block_node(init_block);
                    function.regions[region].nodes.insert(index, node);
                    schedule.record(init_op, state, 0.0, 0.0, 0);
                    report.initializers += 1;
                    edit.initializer = Some(WireInit {
                        op: init_op,
                        before: anchor,
                    });
                }
            }

            // Rewrite writers: write the wire, commit the register right after.
            for &writer in writers.iter() {
                if position[&writer] > position[chained_readers.last().expect("non-empty")] {
                    // A writer after every chained reader does not need rewriting.
                    continue;
                }
                let Some(&block) = op_blocks.get(&writer) else {
                    continue;
                };
                function.ops[writer].dest = Some(wire);
                let commit = function.add_op(OpKind::Copy, Some(var), vec![Value::Var(wire)]);
                let at = function.blocks[block]
                    .ops
                    .iter()
                    .position(|&o| o == writer)
                    .expect("writer in block");
                function.blocks[block].insert(at + 1, commit);
                let finish = schedule.op_finish.get(&writer).copied().unwrap_or(0.0);
                schedule.record(commit, state, finish, finish, 0);
                report.producers_rewritten += 1;
                report.commit_copies += 1;
                edit.commits.push((writer, commit));
            }

            // Redirect chained readers to the wire.
            for &reader in &chained_readers {
                for arg in &mut function.ops[reader].args {
                    if *arg == Value::Var(var) {
                        *arg = Value::Var(wire);
                        report.readers_redirected += 1;
                    }
                }
            }
            log.edits.push(edit);
        }
    }
    (report, log)
}

/// Maps every basic block nested under a top-level compound node of the body
/// to that node, in one HTG walk. Top-level blocks are absent: they are
/// unguarded, and an initializer has nothing to be hoisted in front of.
/// (A block's chain from the body descends only through compound nodes, so
/// the outermost compound containing it is always a direct body node.)
fn outermost_compounds(function: &Function) -> SecondaryMap<BlockId, NodeId> {
    fn mark(
        function: &Function,
        region: RegionId,
        root: NodeId,
        map: &mut SecondaryMap<BlockId, NodeId>,
    ) {
        for &node in &function.regions[region].nodes {
            match &function.nodes[node] {
                HtgNode::Block(b) => {
                    map.insert(*b, root);
                }
                HtgNode::If(i) => {
                    mark(function, i.then_region, root, map);
                    mark(function, i.else_region, root, map);
                }
                HtgNode::Loop(l) => mark(function, l.body, root, map),
            }
        }
    }
    let mut map = SecondaryMap::with_capacity(function.blocks.len());
    for &node in &function.regions[function.body].nodes {
        match &function.nodes[node] {
            HtgNode::Block(_) => {}
            HtgNode::If(i) => {
                mark(function, i.then_region, node, &mut map);
                mark(function, i.else_region, node, &mut map);
            }
            HtgNode::Loop(l) => mark(function, l.body, node, &mut map),
        }
    }
    map
}

/// First live operation, in program (walk) order, under an HTG node — the
/// anchor an initializer copy is spliced in front of.
fn first_live_op_under(function: &Function, node: NodeId) -> Option<OpId> {
    match &function.nodes[node] {
        HtgNode::Block(b) => function.blocks[*b]
            .ops
            .iter()
            .copied()
            .find(|&op| !function.ops[op].dead),
        HtgNode::If(i) => first_live_op_in_region(function, i.then_region)
            .or_else(|| first_live_op_in_region(function, i.else_region)),
        HtgNode::Loop(l) => first_live_op_in_region(function, l.body),
    }
}

fn first_live_op_in_region(function: &Function, region: RegionId) -> Option<OpId> {
    function.regions[region]
        .nodes
        .iter()
        .find_map(|&node| first_live_op_under(function, node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DependenceGraph;
    use crate::resources::ResourceLibrary;
    use crate::scheduler::{schedule, Constraints};
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, Program, StorageClass, Type};

    fn schedule_and_insert(f: &mut Function, period: f64) -> (Schedule, WireReport) {
        let graph = DependenceGraph::build(f).unwrap();
        let lib = ResourceLibrary::new();
        let mut sched =
            schedule(f, &graph, &lib, &Constraints::microprocessor_block(period)).unwrap();
        let report = insert_wire_variables(f, &mut sched);
        (sched, report)
    }

    fn equivalent(original: &Function, transformed: &Function, envs: &[Env]) {
        let mut p0 = Program::new();
        p0.add_function(original.clone());
        let mut p1 = Program::new();
        p1.add_function(transformed.clone());
        for env in envs {
            let a = Interpreter::new(&p0).run(&original.name, env).unwrap();
            let b = Interpreter::new(&p1).run(&transformed.name, env).unwrap();
            // Every variable of the original must hold the same final value
            // (wire temporaries only add new names).
            for (name, value) in &a.scalars {
                assert_eq!(Some(value), b.scalars.get(name), "scalar `{name}`");
            }
            assert_eq!(a.arrays, b.arrays);
        }
    }

    #[test]
    fn straight_line_chain_gets_wires() {
        // r1 = a + 1; r2 = r1 + 2  (the Op1/Op2 situation of Section 3.1.2)
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let r1 = b.var("r1", Type::Bits(8));
        let r2 = b.var("r2", Type::Bits(8));
        b.assign(OpKind::Add, r1, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, r2, vec![Value::Var(r1), Value::word(2)]);
        let original = b.finish();
        let mut f = original.clone();
        let (sched, report) = schedule_and_insert(&mut f, 10.0);
        assert_eq!(sched.num_states, 1);
        assert_eq!(report.wires_created, 1);
        assert_eq!(report.commit_copies, 1);
        assert_eq!(report.readers_redirected, 1);
        verify(&f).expect("well formed");
        // r2's producer now reads a wire-variable.
        let reader = f
            .live_ops()
            .into_iter()
            .find(|&op| f.ops[op].dest == Some(r2))
            .unwrap();
        let src = f.ops[reader].args[0].as_var().unwrap();
        assert_eq!(f.vars[src].storage, StorageClass::Wire);
        equivalent(
            &original,
            &f,
            &[
                Env::new().with_scalar("a", 7),
                Env::new().with_scalar("a", 250),
            ],
        );
    }

    #[test]
    fn no_wires_needed_across_states() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let r1 = b.var("r1", Type::Bits(8));
        let r2 = b.var("r2", Type::Bits(8));
        b.assign(OpKind::Add, r1, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, r2, vec![Value::Var(r1), Value::word(2)]);
        let mut f = b.finish();
        // Clock fits only one adder: the two ops land in different states.
        let (sched, report) = schedule_and_insert(&mut f, 2.5);
        assert_eq!(sched.num_states, 2);
        assert_eq!(report.wires_created, 0);
    }

    #[test]
    fn conditional_writers_get_initializer_and_commit_copies() {
        // The Figure 6 situation: o1 written in both branches, read after.
        let mut b = FunctionBuilder::new("fig6");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let d = b.param("d", Type::Bits(8));
        let e = b.param("e", Type::Bits(8));
        let cond = b.param("cond", Type::Bool);
        let o1 = b.var("o1", Type::Bits(8));
        let o2 = b.output("o2", Type::Bits(8));
        b.if_begin(Value::Var(cond));
        b.assign(OpKind::Add, o1, vec![Value::Var(a), Value::Var(bb)]);
        b.else_begin();
        b.copy(o1, Value::Var(d));
        b.if_end();
        b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::Var(e)]);
        let original = b.finish();
        let mut f = original.clone();
        let (sched, report) = schedule_and_insert(&mut f, 10.0);
        assert_eq!(sched.num_states, 1);
        assert_eq!(report.wires_created, 1);
        assert!(
            report.commit_copies >= 2,
            "a copy in each branch, as in Figure 6(b)"
        );
        assert_eq!(
            report.initializers, 1,
            "the wire is pre-initialised (Figure 7 situation)"
        );
        verify(&f).expect("well formed");
        let envs: Vec<Env> = [0u64, 1]
            .into_iter()
            .map(|c| {
                Env::new()
                    .with_scalar("a", 3)
                    .with_scalar("b", 4)
                    .with_scalar("d", 9)
                    .with_scalar("e", 1)
                    .with_scalar("cond", c)
            })
            .collect();
        equivalent(&original, &f, &envs);
    }

    #[test]
    fn single_branch_writer_is_covered_by_initializer() {
        // The Figure 7 situation: o1 written only in the true branch, read after.
        let mut b = FunctionBuilder::new("fig7");
        let d = b.param("d", Type::Bits(8));
        let init = b.param("o1_in", Type::Bits(8));
        let cond = b.param("cond", Type::Bool);
        let o1 = b.var("o1", Type::Bits(8));
        let o2 = b.output("o2", Type::Bits(8));
        b.copy(o1, Value::Var(init)); // a previous write of o1
        b.if_begin(Value::Var(cond));
        b.copy(o1, Value::Var(d));
        b.if_end();
        b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::word(1)]);
        let original = b.finish();
        let mut f = original.clone();
        let (_sched, report) = schedule_and_insert(&mut f, 10.0);
        assert_eq!(report.wires_created, 1);
        verify(&f).expect("well formed");
        let envs: Vec<Env> = [0u64, 1]
            .into_iter()
            .map(|c| {
                Env::new()
                    .with_scalar("d", 5)
                    .with_scalar("o1_in", 11)
                    .with_scalar("cond", c)
            })
            .collect();
        equivalent(&original, &f, &envs);
    }

    #[test]
    fn ripple_chain_of_register_updates_becomes_wires() {
        // NextStartByte += len repeated — the ILD ripple logic.
        let mut b = FunctionBuilder::new("ripple");
        let nsb = b.output("nsb", Type::Bits(16));
        let len1 = b.param("len1", Type::Bits(8));
        let len2 = b.param("len2", Type::Bits(8));
        let len3 = b.param("len3", Type::Bits(8));
        b.copy(nsb, Value::word(1));
        b.assign(OpKind::Add, nsb, vec![Value::Var(nsb), Value::Var(len1)]);
        b.assign(OpKind::Add, nsb, vec![Value::Var(nsb), Value::Var(len2)]);
        b.assign(OpKind::Add, nsb, vec![Value::Var(nsb), Value::Var(len3)]);
        let original = b.finish();
        let mut f = original.clone();
        let (sched, report) = schedule_and_insert(&mut f, 10.0);
        assert_eq!(sched.num_states, 1);
        assert!(report.wires_created >= 1);
        assert!(report.readers_redirected >= 2);
        verify(&f).expect("well formed");
        equivalent(
            &original,
            &f,
            &[Env::new()
                .with_scalar("len1", 2)
                .with_scalar("len2", 3)
                .with_scalar("len3", 4)],
        );
    }
}
