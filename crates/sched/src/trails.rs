//! Chaining-trail validation (Section 3.1.1 of the paper).
//!
//! When an operation is chained into the same cycle as operations in the
//! branches of preceding conditionals, the chaining heuristic "traverses all
//! the paths or trails backwards from the basic block that the operation is
//! in, looking for operations that are scheduled in the same cycle", checking
//! that every trail leaves enough time in the cycle. The scheduler in this
//! crate constructs schedules bottom-up from dependences; this module is the
//! independent checker that re-validates a finished schedule the way the
//! paper describes.

use spark_ir::{BlockId, Cfg, Function, OpId};

use crate::deps::{DepKind, DependenceGraph, SchedError};
use crate::resources::ResourceLibrary;
use crate::scheduler::Schedule;

/// Summary of the chaining structure of a schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChainingReport {
    /// Flow/control dependences chained within one state.
    pub chained_pairs: usize,
    /// Chained pairs whose producer and consumer sit in different basic
    /// blocks (chaining across conditional boundaries).
    pub cross_block_pairs: usize,
    /// The largest number of backward trails examined for any single
    /// operation.
    pub max_trails: usize,
    /// The largest accumulated delay found along any trail (ns).
    pub max_trail_delay_ns: f64,
}

/// Re-validates a schedule the way the paper's chaining heuristic does.
///
/// For every operation, all backward trails from its basic block are
/// enumerated; the accumulated delay of same-state operations on each trail
/// that transitively feed the operation must fit the clock period, and every
/// same-state producer the operation is chained to must be reachable on some
/// trail.
///
/// # Errors
/// Returns [`SchedError::Unschedulable`] describing the first violated trail.
pub fn validate_chaining(
    function: &Function,
    graph: &DependenceGraph,
    schedule: &Schedule,
    library: &ResourceLibrary,
) -> Result<ChainingReport, SchedError> {
    let mut report = ChainingReport::default();
    let cfg = Cfg::build(function);
    // Dense per-op and per-block side tables, built once: the op → block map
    // (instead of a full block scan per query), a memoized trail counter and
    // memoized backward-reachability rows (many operations share a block, so
    // each block is analysed at most once). Trail populations are *counted*
    // (saturating DP over the DAG), never enumerated — the unrolled ILD has
    // exponentially many trails.
    let op_blocks = function.op_blocks();
    let mut trail_counter = cfg.trail_counter(64);
    let mut reachability = Reachability::new(function.blocks.len());
    let mut same_state_producers: Vec<OpId> = Vec::new();

    for &op_id in &graph.order {
        let Some(&state) = schedule.op_state.get(&op_id) else {
            continue;
        };
        same_state_producers.clear();
        same_state_producers.extend(
            graph
                .preds_of(op_id)
                .iter()
                .filter(|d| matches!(d.kind, DepKind::Flow | DepKind::Control))
                .map(|d| d.from)
                .filter(|p| schedule.op_state.get(p) == Some(&state)),
        );
        if same_state_producers.is_empty() {
            continue;
        }
        report.chained_pairs += same_state_producers.len();
        let own_block = op_blocks.get(&op_id).copied();
        for &producer in &same_state_producers {
            if op_blocks.get(&producer).copied() != own_block {
                report.cross_block_pairs += 1;
            }
        }

        // Count the backward trails (saturating at 64) for the report; the
        // fully unrolled ILD has exponentially many trails, so correctness is
        // checked with backward reachability below, not per trail.
        let Some(block) = own_block else { continue };
        report.max_trails = report.max_trails.max(trail_counter.count(block));

        // Every chained producer must lie on this op's own block or on some
        // block backward-reachable from it (otherwise the value could never
        // reach the consumer on any trail).
        let reachable_blocks = reachability.row(block, &cfg);
        for &producer in &same_state_producers {
            let producer_block = op_blocks.get(&producer).copied();
            let reachable = producer_block == own_block
                || producer_block
                    .map(|b| reachable_blocks[b.index() / 64] >> (b.index() % 64) & 1 != 0)
                    .unwrap_or(false);
            if !reachable {
                return Err(SchedError::Unschedulable(format!(
                    "operation chained to a producer that is on no backward trail ({:?})",
                    function.ops[op_id].kind
                )));
            }
        }

        // Accumulated delay along each trail: the chain into this op must fit
        // the clock period. The scheduler's per-op finish times already bound
        // this; re-derive it from finish times for the report.
        let finish = schedule.op_finish.get(&op_id).copied().unwrap_or(0.0);
        report.max_trail_delay_ns = report.max_trail_delay_ns.max(finish);
        if finish > schedule.clock_period_ns + 1e-9 {
            return Err(SchedError::Unschedulable(format!(
                "chained delay {:.2} ns exceeds the clock period {:.2} ns",
                finish, schedule.clock_period_ns
            )));
        }
        let _ = library;
    }
    Ok(report)
}

/// Memoized backward-reachability bitsets over the basic blocks of a
/// **loop-free** function: `row(b)` holds, one bit per block, every block on
/// some backward path from `b` (excluding `b` itself).
///
/// Each row is the union of its predecessors' rows plus the predecessor bits
/// and is computed once, so the whole table costs
/// O(blocks × preds × row-words) — instead of one dense-visited BFS per
/// queried block, which dominated `validate_chaining` on the unrolled ILD.
struct Reachability {
    rows: Vec<Option<Vec<u64>>>,
    pred_lists: Vec<Option<Vec<BlockId>>>,
    words: usize,
}

impl Reachability {
    fn new(block_capacity: usize) -> Self {
        Reachability {
            rows: vec![None; block_capacity],
            pred_lists: vec![None; block_capacity],
            words: block_capacity.div_ceil(64).max(1),
        }
    }

    /// The reachability bitset of `block`, building any missing ancestor rows
    /// first (iteratively — the unrolled ILD nests hundreds of blocks deep).
    fn row(&mut self, block: BlockId, cfg: &Cfg) -> &[u64] {
        if self.rows[block.index()].is_none() {
            let mut stack = vec![block];
            while let Some(&top) = stack.last() {
                if self.rows[top.index()].is_some() {
                    stack.pop();
                    continue;
                }
                let preds = self.pred_lists[top.index()]
                    .get_or_insert_with(|| cfg.pred_blocks(top))
                    .clone();
                let mut pending = false;
                for &pred in &preds {
                    if self.rows[pred.index()].is_none() {
                        stack.push(pred);
                        pending = true;
                    }
                }
                if pending {
                    continue;
                }
                let mut row = vec![0u64; self.words];
                for &pred in &preds {
                    let pred_row = self.rows[pred.index()].as_ref().expect("pred row built");
                    for (word, &bits) in pred_row.iter().enumerate() {
                        row[word] |= bits;
                    }
                    row[pred.index() / 64] |= 1 << (pred.index() % 64);
                }
                self.rows[top.index()] = Some(row);
                stack.pop();
            }
        }
        self.rows[block.index()].as_deref().expect("row just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceLibrary;
    use crate::scheduler::{schedule, Constraints};
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    /// The Figure 5 shape: operation 4 chained with operations 1, 2, 3 that
    /// sit in the branches of two conditionals.
    fn figure5() -> Function {
        let mut b = FunctionBuilder::new("fig5");
        let cond1 = b.param("cond1", Type::Bool);
        let cond2 = b.param("cond2", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let c = b.param("c", Type::Bits(8));
        let d = b.param("d", Type::Bits(8));
        let o1 = b.var("o1", Type::Bits(8));
        let o2 = b.output("o2", Type::Bits(8));
        b.if_begin(Value::Var(cond1));
        b.if_begin(Value::Var(cond2));
        b.copy(o1, Value::Var(a)); // op 1
        b.else_begin();
        b.copy(o1, Value::Var(bb)); // op 2
        b.if_end();
        b.else_begin();
        b.copy(o1, Value::Var(c)); // op 3
        b.if_end();
        b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::Var(d)]); // op 4
        b.finish()
    }

    #[test]
    fn figure5_chains_across_three_trails_in_one_state() {
        let f = figure5();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        assert_eq!(sched.num_states, 1);
        let report = validate_chaining(&f, &graph, &sched, &lib).unwrap();
        assert!(
            report.chained_pairs >= 3,
            "op 4 chains with the writes on all trails"
        );
        assert!(report.cross_block_pairs >= 3);
        assert!(
            report.max_trails >= 3,
            "the paper lists three trails into BB8"
        );
        assert!(report.max_trail_delay_ns <= 10.0);
    }

    #[test]
    fn no_chaining_means_empty_report() {
        let f = figure5();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(
            &f,
            &graph,
            &lib,
            &Constraints::microprocessor_block(10.0).without_chaining(),
        )
        .unwrap();
        let report = validate_chaining(&f, &graph, &sched, &lib).unwrap();
        assert_eq!(report.chained_pairs, 0);
        assert_eq!(report.cross_block_pairs, 0);
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        let f = figure5();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let mut sched =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
        // Corrupt a finish time beyond the clock period.
        let victim = sched.op_finish.keys().last().unwrap();
        sched.op_finish.insert(victim, 99.0);
        let err = validate_chaining(&f, &graph, &sched, &lib).unwrap_err();
        assert!(matches!(err, SchedError::Unschedulable(_)));
    }
}
