//! Constant folding and constant propagation.
//!
//! After a loop is fully unrolled, the initial assignment of the loop index
//! can be propagated as a constant through all the unrolled iterations,
//! eliminating the index variable entirely (Figures 3 and 14 of the paper).
//! That is exactly what this pass does: it folds operations whose operands
//! are all constants, simplifies algebraic identities, and forwards
//! single-definition constants to every dominated use.

use spark_ir::{Constant, EditLog, Function, OpId, OpKind, Rewriter, Type, Value};

use crate::fine::{FineState, OpQueue};
use crate::report::{Invalidation, Report};

/// Evaluates a pure operation over constant operands.
///
/// Returns `None` for kinds that cannot be folded (array accesses, calls,
/// returns) or when the operand count is wrong.
pub fn fold_constants(kind: &OpKind, args: &[Constant], dest_ty: Type) -> Option<Constant> {
    let a = |i: usize| args.get(i).map(|c| c.value());
    let value = match kind {
        OpKind::Add => a(0)?.wrapping_add(a(1)?),
        OpKind::Sub => a(0)?.wrapping_sub(a(1)?),
        OpKind::Mul => a(0)?.wrapping_mul(a(1)?),
        OpKind::And => a(0)? & a(1)?,
        OpKind::Or => a(0)? | a(1)?,
        OpKind::Xor => a(0)? ^ a(1)?,
        OpKind::Not => !a(0)?,
        OpKind::Shl => a(0)? << a(1)?.min(63),
        OpKind::Shr => a(0)? >> a(1)?.min(63),
        OpKind::Eq => (a(0)? == a(1)?) as u64,
        OpKind::Ne => (a(0)? != a(1)?) as u64,
        OpKind::Lt => (a(0)? < a(1)?) as u64,
        OpKind::Le => (a(0)? <= a(1)?) as u64,
        OpKind::Gt => (a(0)? > a(1)?) as u64,
        OpKind::Ge => (a(0)? >= a(1)?) as u64,
        OpKind::Copy => a(0)?,
        OpKind::Select => {
            if a(0)? != 0 {
                a(1)?
            } else {
                a(2)?
            }
        }
        OpKind::Slice { hi, lo } => (a(0)? >> lo) & Type::Bits(hi - lo + 1).mask(),
        OpKind::Concat => {
            let low_width = args.get(1)?.ty().width();
            (a(0)? << low_width) | a(1)?
        }
        OpKind::ArrayRead { .. }
        | OpKind::ArrayWrite { .. }
        | OpKind::Call { .. }
        | OpKind::Return => return None,
    };
    Some(Constant::new(value, dest_ty))
}

/// Simplifies algebraic identities with one constant operand
/// (`x + 0`, `x * 1`, `x & 0`, `cond ? a : a`, ...). Returns the replacement
/// operand if the whole operation reduces to a single value.
fn simplify_identity(kind: &OpKind, args: &[Value]) -> Option<Value> {
    let const_of = |v: &Value| v.as_const();
    match kind {
        OpKind::Add | OpKind::Or | OpKind::Xor | OpKind::Shl | OpKind::Shr => {
            if const_of(&args[1]).map(|c| c.is_zero()).unwrap_or(false) {
                return Some(args[0]);
            }
            if matches!(kind, OpKind::Add | OpKind::Or | OpKind::Xor)
                && const_of(&args[0]).map(|c| c.is_zero()).unwrap_or(false)
            {
                return Some(args[1]);
            }
            None
        }
        OpKind::Sub => {
            if const_of(&args[1]).map(|c| c.is_zero()).unwrap_or(false) {
                return Some(args[0]);
            }
            None
        }
        OpKind::Mul => {
            for (this, other) in [(0usize, 1usize), (1, 0)] {
                if let Some(c) = const_of(&args[this]) {
                    if c.is_zero() {
                        return Some(Value::Const(c));
                    }
                    if c.value() == 1 {
                        return Some(args[other]);
                    }
                }
            }
            None
        }
        OpKind::And => {
            for (this, other) in [(0usize, 1usize), (1, 0)] {
                if let Some(c) = const_of(&args[this]) {
                    if c.is_zero() {
                        return Some(Value::Const(c));
                    }
                    let _ = other;
                }
            }
            None
        }
        OpKind::Select => {
            if let Some(c) = const_of(&args[0]) {
                return Some(if c.as_bool() { args[1] } else { args[2] });
            }
            if args[1] == args[2] {
                return Some(args[1]);
            }
            None
        }
        _ => None,
    }
}

/// Runs constant folding and propagation to a fixed point on `function`.
///
/// Stand-alone entry point: builds fresh analyses and seeds the worklist
/// with every live operation. Returns a [`Report`] with the number of folded
/// operations and forwarded constants.
pub fn constant_propagation(function: &mut Function) -> Report {
    let mut state = FineState::new(function);
    let seed = function.live_ops();
    let (report, _) = constant_propagation_seeded(function, &mut state, &seed);
    report
}

/// Worklist-driven constant folding and propagation over an incrementally
/// maintained [`FineState`].
///
/// The worklist is seeded with `seed` plus — for each seed operation with a
/// destination — the current readers of that destination, so passing the
/// operations a previous pass touched is sufficient to find every new
/// opportunity: folding depends only on an operation's own operands, and
/// forwarding only on the definition of an operand having become a constant
/// copy. Three confluent, monotone rewrites (operand → constant, operation →
/// `Copy`) drive the queue, so the fixed point equals the full-rescan
/// implementation's.
pub fn constant_propagation_seeded(
    function: &mut Function,
    state: &mut FineState,
    seed: &[OpId],
) -> (Report, EditLog) {
    let mut report = Report::new("constant-propagation", &function.name);
    report.set_invalidation(Invalidation::None);
    let FineState { graph, positions } = state;
    let mut rw = Rewriter::new(function, graph);

    let mut queue = OpQueue::default();
    for &op in seed {
        if rw.function().ops[op].dead {
            continue;
        }
        queue.push(op);
        if let Some(dest) = rw.function().ops[op].def() {
            for &user in rw.graph().uses_of(dest) {
                queue.push(user);
            }
        }
    }

    let mut changed = 0usize;
    while let Some(op_id) = queue.pop() {
        if rw.function().ops[op_id].dead {
            continue;
        }

        // --- Use-side forwarding: pull dominating single-def constants into
        // this operation's operands.
        for index in 0..rw.function().ops[op_id].args.len() {
            let Value::Var(var) = rw.function().ops[op_id].args[index] else {
                continue;
            };
            let defs = rw.graph().defs_of(var);
            if defs.len() != 1 || defs[0] == op_id {
                continue;
            }
            let def_op_id = defs[0];
            let def_op = &rw.function().ops[def_op_id];
            if !matches!(def_op.kind, OpKind::Copy) {
                continue;
            }
            let Some(constant) = def_op.args[0].as_const() else {
                continue;
            };
            // A definition inside a loop body may execute many times; the
            // constant is still the same every time, so forwarding is safe.
            if positions.dominates(def_op_id, op_id)
                && rw.replace_operand(op_id, index, Value::Const(constant))
            {
                changed += 1;
            }
        }

        // --- Folding: rewrite the op if its operands are all constants, or
        // an algebraic identity collapses it to a single value.
        let op = rw.function().ops[op_id].clone();
        if !op.kind.has_side_effects() && !matches!(op.kind, OpKind::Copy) {
            if let Some(dest) = op.dest {
                let dest_ty = rw.function().vars[dest].ty;
                let folded = if op.args.iter().all(|a| a.is_const()) {
                    let consts: Vec<Constant> =
                        op.args.iter().map(|a| a.as_const().unwrap()).collect();
                    fold_constants(&op.kind, &consts, dest_ty).map(Value::Const)
                } else {
                    None
                };
                let replacement = folded.or_else(|| {
                    if op.args.len() >= 2 || matches!(op.kind, OpKind::Select) {
                        simplify_identity(&op.kind, &op.args)
                    } else {
                        None
                    }
                });
                if let Some(replacement) = replacement {
                    rw.rewrite_op(op_id, OpKind::Copy, vec![replacement]);
                    changed += 1;
                }
            }
        }

        // --- Def-side forwarding: if this op is (or just became) a constant
        // copy with a single-def destination, push the constant into every
        // dominated use and requeue those uses (they may fold in turn).
        let op = &rw.function().ops[op_id];
        if matches!(op.kind, OpKind::Copy) {
            if let (Some(dest), Some(constant)) = (op.dest, op.args[0].as_const()) {
                if rw.graph().has_single_def(dest) {
                    let users: Vec<OpId> = rw.graph().uses_of(dest).to_vec();
                    for use_op in users {
                        if use_op == op_id || !positions.dominates(op_id, use_op) {
                            continue;
                        }
                        let mut rewrote = false;
                        for index in 0..rw.function().ops[use_op].args.len() {
                            if rw.function().ops[use_op].args[index] == Value::Var(dest)
                                && rw.replace_operand(use_op, index, Value::Const(constant))
                            {
                                changed += 1;
                                rewrote = true;
                            }
                        }
                        if rewrote {
                            queue.push(use_op);
                        }
                    }
                }
            }
        }
    }

    report.add(changed);
    let effects = rw.finish();
    state.debug_check(function);
    (report, effects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{Env, FunctionBuilder, Interpreter, Program, Type};

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::word(2), Value::word(3)]);
        b.assign(OpKind::Mul, y, vec![Value::Var(x), Value::word(4)]);
        let mut f = b.finish();
        let report = constant_propagation(&mut f);
        assert!(report.changes >= 3, "fold add, forward 5, fold mul");
        // y's definition is now a copy of the constant 20.
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        assert_eq!(last.kind, OpKind::Copy);
        assert_eq!(last.args[0].as_const().unwrap().value(), 20);
    }

    #[test]
    fn propagates_loop_index_after_unroll_style_code() {
        // Mimics Figure 14: i_1 = 1; use DataCalculation(i_1, i_1+1, ...)
        let mut b = FunctionBuilder::new("f");
        let i1 = b.var("i_1", Type::Bits(32));
        let a = b.var("a", Type::Bits(32));
        b.copy(i1, Value::word(1));
        b.assign(OpKind::Add, a, vec![Value::Var(i1), Value::word(1)]);
        let mut f = b.finish();
        constant_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[ops[1]];
        assert_eq!(last.kind, OpKind::Copy);
        assert_eq!(last.args[0].as_const().unwrap().value(), 2);
    }

    #[test]
    fn does_not_propagate_across_conditional_boundary() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.if_end();
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let mut f = b.finish();
        constant_propagation(&mut f);
        // The use of x after the join must still read x, not the constant.
        let ops = f.live_ops();
        let add = &f.ops[*ops.last().unwrap()];
        assert_eq!(add.args[0], Value::Var(x));
    }

    #[test]
    fn identities_are_simplified() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let z = b.var("z", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(0)]);
        b.assign(OpKind::Mul, y, vec![Value::Var(a), Value::word(1)]);
        b.assign(
            OpKind::Select,
            z,
            vec![Value::bool(true), Value::Var(a), Value::word(9)],
        );
        let mut f = b.finish();
        constant_propagation(&mut f);
        for op in f.live_ops() {
            assert_eq!(f.ops[op].kind, OpKind::Copy);
            assert_eq!(f.ops[op].args[0], Value::Var(a));
        }
    }

    #[test]
    fn semantics_preserved_on_random_program() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(3)]);
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(2)]);
        b.else_begin();
        b.assign(OpKind::Sub, y, vec![Value::Var(x), Value::word(2)]);
        b.if_end();
        b.ret(Value::Var(y));
        let f = b.finish();

        let mut p_before = Program::new();
        p_before.add_function(f.clone());
        let mut transformed = f;
        constant_propagation(&mut transformed);
        let mut p_after = Program::new();
        p_after.add_function(transformed);

        for a_val in [0u64, 7, 255] {
            for c_val in [0u64, 1] {
                let env = Env::new().with_scalar("a", a_val).with_scalar("c", c_val);
                let before = Interpreter::new(&p_before).run("f", &env).unwrap();
                let after = Interpreter::new(&p_after).run("f", &env).unwrap();
                assert_eq!(before.return_value, after.return_value);
            }
        }
    }

    #[test]
    fn fold_constants_covers_all_pure_kinds() {
        let c = |v: u64| Constant::word(v);
        let t = Type::Bits(32);
        assert_eq!(
            fold_constants(&OpKind::Sub, &[c(5), c(3)], t)
                .unwrap()
                .value(),
            2
        );
        assert_eq!(
            fold_constants(&OpKind::And, &[c(0b1100), c(0b1010)], t)
                .unwrap()
                .value(),
            0b1000
        );
        assert_eq!(
            fold_constants(&OpKind::Or, &[c(0b1100), c(0b1010)], t)
                .unwrap()
                .value(),
            0b1110
        );
        assert_eq!(
            fold_constants(&OpKind::Xor, &[c(0b1100), c(0b1010)], t)
                .unwrap()
                .value(),
            0b0110
        );
        assert_eq!(
            fold_constants(&OpKind::Shl, &[c(1), c(4)], t)
                .unwrap()
                .value(),
            16
        );
        assert_eq!(
            fold_constants(&OpKind::Shr, &[c(16), c(4)], t)
                .unwrap()
                .value(),
            1
        );
        assert_eq!(
            fold_constants(&OpKind::Lt, &[c(1), c(2)], Type::Bool)
                .unwrap()
                .value(),
            1
        );
        assert_eq!(
            fold_constants(&OpKind::Ge, &[c(1), c(2)], Type::Bool)
                .unwrap()
                .value(),
            0
        );
        assert_eq!(
            fold_constants(&OpKind::Slice { hi: 3, lo: 2 }, &[c(0b1100)], Type::Bits(2))
                .unwrap()
                .value(),
            0b11
        );
        assert!(fold_constants(&OpKind::Return, &[c(1)], t).is_none());
    }
}
