//! Source-level transformation of "natural" pointer-chasing loops into
//! bounded, synthesizable `for` loops.
//!
//! Figure 16 of the paper shows the most natural ILD description:
//!
//! ```c
//! while (1) {
//!     Mark[NextStartByte] = 1;
//!     len = CalculateLength(NextStartByte);
//!     NextStartByte += len;
//! }
//! ```
//!
//! The paper identifies turning such descriptions into the synthesizable
//! form of Figure 10 as future work. We implement the transformation for this
//! shape: a `while` loop with a designer-supplied trip bound `n` whose body
//! advances a single monotonically increasing *cursor* variable. The result
//! is the Figure 10 form:
//!
//! ```c
//! for (i = start; i <= n; i++) {
//!     if (i == NextStartByte) { ...body with the cursor read as i... }
//! }
//! ```
//!
//! The rewrite is valid because the cursor increases by at least one each
//! iteration, so each `i` matches the cursor at most once, and iterations
//! with `i != cursor` have no effect.

use spark_ir::{Function, HtgNode, LoopKind, NodeId, OpKind, Type, Value, Var};

use crate::report::{Invalidation, Report};
use crate::unroll::merge_invalidation;

/// Describes the cursor pattern found in a while-loop body.
#[derive(Debug)]
struct CursorPattern {
    /// The loop node.
    loop_node: NodeId,
    /// The cursor variable (e.g. `NextStartByte`).
    cursor: spark_ir::VarId,
    /// The designer-supplied trip bound (buffer size `n`).
    bound: u64,
}

/// Converts natural `while (1)` cursor loops into bounded `for` loops
/// (Figure 16 → Figure 10). Loops that do not match the pattern are left
/// untouched and noted in the report.
pub fn while_to_for(function: &mut Function) -> Report {
    let mut report = Report::new("while-to-for", &function.name);
    let mut invalidation = Invalidation::None;
    while let Some(pattern) = find_pattern(function) {
        if let Some(parent) = rewrite(function, &pattern) {
            invalidation = merge_invalidation(invalidation, Invalidation::Region(parent));
        }
        report.add(1);
        report.note(format!(
            "converted while(1) over cursor `{}` into a for loop of {} iterations",
            function.vars[pattern.cursor].name, pattern.bound
        ));
    }
    if report.is_noop() {
        report.note("no convertible while loops found");
    }
    report.set_invalidation(invalidation);
    report
}

fn find_pattern(function: &Function) -> Option<CursorPattern> {
    for (node_id, node) in function.nodes.iter() {
        let HtgNode::Loop(l) = node else { continue };
        let LoopKind::While { cond } = &l.kind else {
            continue;
        };
        // Must be an (effectively) infinite loop with a designer bound.
        let infinite = match cond {
            Value::Const(c) => c.as_bool(),
            Value::Var(_) => false,
        };
        let Some(bound) = l.trip_bound else { continue };
        if !infinite || !is_reachable(function, node_id) {
            continue;
        }
        // Look for the cursor: a variable updated as `cursor = cursor + x`
        // in the loop body and used elsewhere in the body.
        let body_ops = function.ops_in_region(l.body);
        for &op_id in &body_ops {
            let op = &function.ops[op_id];
            if op.kind != OpKind::Add {
                continue;
            }
            let Some(dest) = op.dest else { continue };
            let reads_self = op.args.contains(&Value::Var(dest));
            if !reads_self {
                continue;
            }
            let used_elsewhere = body_ops
                .iter()
                .any(|&other| other != op_id && function.ops[other].uses().contains(&dest));
            if used_elsewhere {
                return Some(CursorPattern {
                    loop_node: node_id,
                    cursor: dest,
                    bound,
                });
            }
        }
    }
    None
}

fn is_reachable(function: &Function, node: NodeId) -> bool {
    fn walk(function: &Function, region: spark_ir::RegionId, target: NodeId) -> bool {
        function.regions[region].nodes.iter().any(|&n| {
            n == target
                || match &function.nodes[n] {
                    HtgNode::Block(_) => false,
                    HtgNode::If(i) => {
                        walk(function, i.then_region, target)
                            || walk(function, i.else_region, target)
                    }
                    HtgNode::Loop(l) => walk(function, l.body, target),
                }
        })
    }
    walk(function, function.body, node)
}

/// Performs the rewrite, returning the region whose node list changed (the
/// parent of the converted loop).
fn rewrite(function: &mut Function, pattern: &CursorPattern) -> Option<spark_ir::RegionId> {
    let HtgNode::Loop(loop_data) = function.nodes[pattern.loop_node].clone() else {
        return None;
    };
    let cursor_ty = function.vars[pattern.cursor].ty;

    // Fresh loop index.
    let index = function.add_var(Var::register("i", cursor_ty));

    // Replace reads of the cursor inside the body with the index (the guard
    // `i == cursor` makes them equal on executed iterations). Writes keep the
    // cursor as destination.
    for op_id in function.ops_in_region(loop_data.body) {
        for arg in &mut function.ops[op_id].args {
            if *arg == Value::Var(pattern.cursor) {
                *arg = Value::Var(index);
            }
        }
    }

    // Guard block: eq = (i == cursor)
    let guard_var = function.fresh_temp("is_start", Type::Bool);
    let guard_block = function.add_block("guard");
    function.push_op(
        guard_block,
        OpKind::Eq,
        Some(guard_var),
        vec![Value::Var(index), Value::Var(pattern.cursor)],
    );
    let guard_node = function.add_block_node(guard_block);

    // if (eq) { original body }
    let empty_else = function.add_region();
    let if_node = function.add_if_node(Value::Var(guard_var), loop_data.body, empty_else);

    // for (i = start; i <= bound; i += 1) { guard; if ... }
    let for_body = function.add_region();
    function.region_push(for_body, guard_node);
    function.region_push(for_body, if_node);
    let start = spark_ir::Constant::new(1, cursor_ty);
    let for_node = function.add_loop_node(
        LoopKind::For {
            index,
            start,
            end: Value::Const(spark_ir::Constant::new(pattern.bound, cursor_ty)),
            step: 1,
        },
        for_body,
        Some(pattern.bound),
    );

    // Swap the while node for the for node in its parent region.
    for region_id in function.regions.ids().collect::<Vec<_>>() {
        let nodes = &mut function.regions[region_id].nodes;
        if let Some(position) = nodes.iter().position(|&n| n == pattern.loop_node) {
            nodes[position] = for_node;
            return Some(region_id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, Program};

    /// Figure 16 in miniature: mark every "instruction start" in a buffer of
    /// synthetic lengths. Each element of `len_in` holds the length of the
    /// instruction starting at that byte (1..=3).
    fn natural_description(n: u64) -> Function {
        // Arrays are sized generously: the natural while(1) form executes a
        // fixed number of iterations and may step the cursor past the window
        // of interest; only Mark[1..=n] is compared.
        let mut b = FunctionBuilder::new("ild_natural");
        let len_in = b.param_array("len_in", Type::Bits(8), 4 * n as u32 + 8);
        let mark = b.output_array("Mark", Type::Bool, 4 * n as u32 + 8);
        let cursor = b.var("NextStartByte", Type::Bits(16));
        let len = b.var("len", Type::Bits(8));
        b.copy(cursor, Value::word(1));
        b.while_begin(Value::bool(true), Some(n));
        b.array_write(mark, Value::Var(cursor), Value::bool(true));
        b.array_read(len, len_in, Value::Var(cursor));
        b.assign(
            OpKind::Add,
            cursor,
            vec![Value::Var(cursor), Value::Var(len)],
        );
        b.loop_end();
        b.finish()
    }

    fn run_marks(program: &Program, name: &str, lengths: &[u64], n: u64) -> Vec<u64> {
        let env = Env::new().with_array("len_in", lengths.to_vec());
        let out = Interpreter::new(program).run(name, &env).unwrap();
        out.array("Mark").unwrap()[1..=n as usize].to_vec()
    }

    #[test]
    fn natural_and_converted_forms_agree() {
        let n = 8u64;
        let original = natural_description(n);
        let mut converted = original.clone();
        let report = while_to_for(&mut converted);
        assert_eq!(report.changes, 1);
        verify(&converted).expect("well formed after conversion");
        assert_eq!(converted.loop_count(), 1);
        // It is now a for loop, not a while loop.
        let is_for = converted.nodes.iter().any(
            |(_, node)| matches!(node, HtgNode::Loop(l) if matches!(l.kind, LoopKind::For { .. })),
        );
        assert!(is_for);

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(converted);
        // Lengths: instruction at byte 1 is 2 long, at 3 is 1, at 4 is 3, at 7 is 2.
        let lengths = vec![0, 2, 9, 1, 3, 9, 9, 2, 9, 9, 9, 9];
        let before = run_marks(&p0, "ild_natural", &lengths, n);
        let after = run_marks(&p1, "ild_natural", &lengths, n);
        assert_eq!(before, after);
        assert_eq!(after, vec![1, 0, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn unbounded_while_is_left_alone() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        b.while_begin(Value::bool(true), None);
        b.assign(OpKind::Add, x, vec![Value::Var(x), Value::word(1)]);
        b.loop_end();
        let mut f = b.finish();
        let report = while_to_for(&mut f);
        assert!(report.is_noop());
    }

    #[test]
    fn while_without_cursor_is_left_alone() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.while_begin(Value::bool(true), Some(4));
        b.copy(y, Value::Var(x));
        b.loop_end();
        let mut f = b.finish();
        let report = while_to_for(&mut f);
        assert!(report.is_noop());
        assert!(report.notes.iter().any(|n| n.contains("no convertible")));
    }

    #[test]
    fn converted_loop_can_then_be_unrolled() {
        use crate::unroll::unroll_all_loops;
        let n = 4u64;
        let original = natural_description(n);
        let mut f = original.clone();
        while_to_for(&mut f);
        let unrolled = unroll_all_loops(&mut f);
        assert!(unrolled.changes >= n as usize);
        assert_eq!(f.loop_count(), 0);

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(f);
        let lengths = vec![0, 1, 1, 2, 9, 9, 9, 9];
        assert_eq!(
            run_marks(&p0, "ild_natural", &lengths, n),
            run_marks(&p1, "ild_natural", &lengths, n)
        );
    }
}
