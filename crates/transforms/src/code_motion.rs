//! Complementary code motions: reverse speculation, conditional speculation
//! and early condition execution.
//!
//! The paper cites these motions (developed in the authors' earlier work
//! [9, 14]) as part of the coordinated tool-box. They move operations *into*
//! conditional branches (reverse speculation / conditional speculation, to
//! shorten paths that do not need the result and to improve resource
//! sharing) and move condition computations as early as possible (early
//! condition execution, so branches can be resolved sooner).

use std::collections::BTreeSet;

use spark_ir::{DefUse, Function, HtgNode, OpId, RegionId, Value};

use crate::report::{Invalidation, Report};

/// Moves operations that are only needed inside one branch of a following
/// `if` into that branch (reverse speculation); operations needed in both
/// branches are duplicated into each (conditional speculation).
///
/// Only pure operations whose destinations are internal (not primary outputs)
/// and not read anywhere outside the `if` are moved.
pub fn reverse_speculation(function: &mut Function) -> Report {
    let mut report = Report::new("reverse-speculation", &function.name);
    let regions: Vec<RegionId> = function.regions.ids().collect();
    for region in regions {
        let nodes = function.regions[region].nodes.clone();
        for window in 1..nodes.len() {
            let block_node = nodes[window - 1];
            let if_node_id = nodes[window];
            let (Some(block), Some(if_node)) = (
                function.nodes[block_node].as_block(),
                function.nodes[if_node_id].as_if().cloned(),
            ) else {
                continue;
            };
            let def_use = DefUse::compute(function);
            let then_ops: BTreeSet<OpId> = function
                .ops_in_region(if_node.then_region)
                .into_iter()
                .collect();
            let else_ops: BTreeSet<OpId> = function
                .ops_in_region(if_node.else_region)
                .into_iter()
                .collect();

            let candidate_ops: Vec<OpId> = function.blocks[block].ops.clone();
            for op_id in candidate_ops.into_iter().rev() {
                if function.ops[op_id].dead {
                    continue;
                }
                let op = function.ops[op_id].clone();
                if op.kind.has_side_effects() {
                    continue;
                }
                let Some(dest) = op.dest else { continue };
                if function.vars[dest].direction == spark_ir::PortDirection::Output {
                    continue;
                }
                // The branch condition itself must not depend on this op.
                if if_node.cond == Value::Var(dest) {
                    continue;
                }
                let users = def_use.uses_of(dest);
                if users.is_empty() {
                    continue;
                }
                let all_then = users.iter().all(|u| then_ops.contains(u));
                let all_else = users.iter().all(|u| else_ops.contains(u));
                let all_inside = users
                    .iter()
                    .all(|u| then_ops.contains(u) || else_ops.contains(u));
                // Do not move if another op in this same block (after op_id)
                // also defines dest: keep it simple and skip multi-def blocks.
                if def_use.defs_of(dest).len() != 1 {
                    continue;
                }
                // Moving the op past the rest of the block must not change
                // what its operands read: skip if any operand is redefined
                // between the op and the end of the block.
                let operand_vars: BTreeSet<_> = op.args.iter().filter_map(|a| a.as_var()).collect();
                let position = function.blocks[block]
                    .ops
                    .iter()
                    .position(|&o| o == op_id)
                    .unwrap_or(0);
                let redefined_later =
                    function.blocks[block].ops[position + 1..]
                        .iter()
                        .any(|&later| {
                            !function.ops[later].dead
                                && function.ops[later]
                                    .def()
                                    .map(|d| operand_vars.contains(&d))
                                    .unwrap_or(false)
                        });
                if redefined_later {
                    continue;
                }
                if all_then {
                    move_op_into_region(function, block, op_id, if_node.then_region);
                    report.add(1);
                } else if all_else {
                    move_op_into_region(function, block, op_id, if_node.else_region);
                    report.add(1);
                } else if all_inside {
                    // Conditional speculation: duplicate into both branches.
                    duplicate_op_into_region(function, op_id, if_node.then_region);
                    duplicate_op_into_region(function, op_id, if_node.else_region);
                    function.kill_op(op_id);
                    report.add(1);
                }
            }
        }
    }
    if report.changes > 0 {
        report.note(format!(
            "moved or duplicated {} operation(s) into branches",
            report.changes
        ));
    } else {
        report.set_invalidation(Invalidation::None);
    }
    report
}

fn move_op_into_region(
    function: &mut Function,
    from_block: spark_ir::BlockId,
    op: OpId,
    region: RegionId,
) {
    function.blocks[from_block].remove(op);
    let target_block = first_block_of_region(function, region);
    function.blocks[target_block].insert(0, op);
}

fn duplicate_op_into_region(function: &mut Function, op: OpId, region: RegionId) {
    let original = function.ops[op].clone();
    let clone = function.add_op(original.kind, original.dest, original.args);
    function.ops[clone].speculative = original.speculative;
    let target_block = first_block_of_region(function, region);
    function.blocks[target_block].insert(0, clone);
}

/// Returns the first basic block of a region, creating one if the region is
/// empty or starts with a compound node.
fn first_block_of_region(function: &mut Function, region: RegionId) -> spark_ir::BlockId {
    if let Some(&first) = function.regions[region].nodes.first() {
        if let Some(block) = function.nodes[first].as_block() {
            return block;
        }
    }
    let block = function.add_block("rspec");
    let node = function.add_block_node(block);
    function.regions[region].nodes.insert(0, node);
    block
}

/// Moves the operation computing each `if` condition as early as possible
/// within its basic block, subject to its data dependences (early condition
/// execution). This lets the controller resolve branches sooner and shortens
/// the chains that steering logic sits on.
pub fn early_condition_execution(function: &mut Function) -> Report {
    let mut report = Report::new("early-condition-execution", &function.name);
    // Gather condition variables of all if nodes.
    let mut cond_vars = BTreeSet::new();
    for (_, node) in function.nodes.iter() {
        if let HtgNode::If(i) = node {
            if let Some(v) = i.cond.as_var() {
                cond_vars.insert(v);
            }
        }
    }
    for block_id in function.blocks_in_region(function.body) {
        let ops = function.blocks[block_id].ops.clone();
        for (position, &op_id) in ops.iter().enumerate() {
            if function.ops[op_id].dead {
                continue;
            }
            let op = function.ops[op_id].clone();
            let Some(dest) = op.dest else { continue };
            if !cond_vars.contains(&dest) || op.kind.has_side_effects() {
                continue;
            }
            // Find the earliest position after the last def of any operand.
            let operand_vars: BTreeSet<_> = op.args.iter().filter_map(|a| a.as_var()).collect();
            let mut earliest = 0usize;
            for (idx, &other) in ops.iter().enumerate().take(position) {
                if function.ops[other].dead {
                    continue;
                }
                if let Some(d) = function.ops[other].def() {
                    if operand_vars.contains(&d) || d == dest {
                        earliest = idx + 1;
                    }
                }
            }
            if earliest < position {
                let block = &mut function.blocks[block_id];
                block.remove(op_id);
                block.insert(earliest, op_id);
                report.add(1);
            }
        }
    }
    if report.changes > 0 {
        report.note(format!(
            "advanced {} condition computation(s)",
            report.changes
        ));
    } else {
        report.set_invalidation(Invalidation::None);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, OpKind, Program, Type};

    fn check_equivalent(original: &Function, transformed: &Function, inputs: &[(&str, Vec<u64>)]) {
        // Reverse speculation legitimately changes the final value of
        // *internal* variables on paths where they are no longer computed; the
        // observable behaviour is the primary outputs.
        let outputs: Vec<String> = original
            .outputs()
            .into_iter()
            .map(|v| original.vars[v].name.clone())
            .collect();
        let mut p0 = Program::new();
        p0.add_function(original.clone());
        let mut p1 = Program::new();
        p1.add_function(transformed.clone());
        // Cartesian product over small input sets.
        let mut envs = vec![Env::new()];
        for (name, values) in inputs {
            let mut next = Vec::new();
            for env in &envs {
                for &v in values {
                    next.push(env.clone().with_scalar(name, v));
                }
            }
            envs = next;
        }
        for env in envs {
            let a = Interpreter::new(&p0).run(&original.name, &env).unwrap();
            let b = Interpreter::new(&p1).run(&transformed.name, &env).unwrap();
            for output in &outputs {
                assert_eq!(
                    a.scalar(output),
                    b.scalar(output),
                    "output `{output}` differs"
                );
            }
            assert_eq!(a.arrays, b.arrays);
        }
    }

    #[test]
    fn moves_single_branch_use_into_branch() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::word(1)]); // only used in then
        b.if_begin(Value::Var(c));
        b.copy(out, Value::Var(t));
        b.else_begin();
        b.copy(out, Value::Var(a));
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        let report = reverse_speculation(&mut f);
        assert_eq!(report.changes, 1);
        verify(&f).expect("well formed");
        check_equivalent(&original, &f, &[("c", vec![0, 1]), ("a", vec![0, 9, 255])]);
        // The add now lives inside the then-branch.
        let if_node = f
            .nodes
            .iter()
            .find_map(|(_, n)| n.as_if().cloned())
            .expect("if node exists");
        let then_ops = f.ops_in_region(if_node.then_region);
        assert!(then_ops.iter().any(|&op| f.ops[op].kind == OpKind::Add));
    }

    #[test]
    fn duplicates_op_needed_in_both_branches() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::word(1)]);
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, out, vec![Value::Var(t), Value::word(1)]);
        b.else_begin();
        b.assign(OpKind::Sub, out, vec![Value::Var(t), Value::word(1)]);
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        let report = reverse_speculation(&mut f);
        assert_eq!(report.changes, 1);
        verify(&f).expect("well formed");
        check_equivalent(&original, &f, &[("c", vec![0, 1]), ("a", vec![3, 200])]);
        // The computation now appears twice (once per branch).
        let adds = f
            .live_ops()
            .into_iter()
            .filter(|&op| f.ops[op].kind == OpKind::Add && f.ops[op].dest == Some(t))
            .count();
        assert_eq!(adds, 2);
    }

    #[test]
    fn output_definitions_are_not_moved() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let out = b.output("out", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.copy(out, Value::word(5)); // primary output: must stay unconditional
        b.if_begin(Value::Var(c));
        b.assign(OpKind::Add, y, vec![Value::Var(out), Value::word(1)]);
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        reverse_speculation(&mut f);
        check_equivalent(&original, &f, &[("c", vec![0, 1])]);
        // The copy to `out` is still in the pre-branch block.
        let first_block = f.blocks_in_region(f.body)[0];
        assert!(!f.blocks[first_block].ops.is_empty());
    }

    #[test]
    fn early_condition_execution_moves_comparisons_up() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let cond = b.var("cond", Type::Bool);
        let out = b.output("out", Type::Bits(8));
        // Unrelated work sits between the operand definition and the compare.
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.assign(OpKind::Add, y, vec![Value::Var(a), Value::word(2)]);
        b.assign(OpKind::Mul, y, vec![Value::Var(y), Value::Var(y)]);
        b.assign(OpKind::Gt, cond, vec![Value::Var(x), Value::word(10)]);
        b.if_begin(Value::Var(cond));
        b.copy(out, Value::Var(y));
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        let report = early_condition_execution(&mut f);
        assert_eq!(report.changes, 1);
        verify(&f).expect("well formed");
        check_equivalent(&original, &f, &[("a", vec![0, 20, 255])]);
        // The comparison is now right after the definition of x.
        let first_block = f.blocks_in_region(f.body)[0];
        let kinds: Vec<_> = f.blocks[first_block]
            .ops
            .iter()
            .filter(|&&op| !f.ops[op].dead)
            .map(|&op| f.ops[op].kind.clone())
            .collect();
        assert_eq!(kinds[1], OpKind::Gt);
    }

    #[test]
    fn early_condition_execution_is_idempotent() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let cond = b.var("cond", Type::Bool);
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Gt, cond, vec![Value::Var(a), Value::word(10)]);
        b.if_begin(Value::Var(cond));
        b.copy(out, Value::word(1));
        b.if_end();
        let mut f = b.finish();
        assert!(early_condition_execution(&mut f).is_noop());
    }
}
