//! Transformation reports.
//!
//! Every pass returns a [`Report`] describing what it changed. The pass
//! manager in `spark-core` accumulates these into a synthesis log, and the
//! benchmark harness uses them to record the per-figure effect of each
//! transformation stage.

use std::fmt;

use spark_ir::RegionId;

/// How much of the cached whole-function analyses (def–use graph,
/// [`Positions`](crate::Positions), reachability) a pass invalidated.
///
/// The pass manager in `spark-core` reads this off every [`Report`] to
/// decide what to rebuild and how to seed the next worklist pass, instead of
/// unconditionally recomputing every analysis after every pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Invalidation {
    /// The pass kept all analyses consistent through the
    /// [`Rewriter`](spark_ir::Rewriter) mutation API (or changed nothing):
    /// nothing needs rebuilding.
    None,
    /// The pass restructured the program only underneath this region;
    /// analyses restricted to operations outside it remain valid, and a
    /// reseeded worklist over the region's operations suffices.
    Region(RegionId),
    /// Whole-function structural rewrite: every cached analysis must be
    /// rebuilt. The conservative default.
    #[default]
    Structure,
}

/// The outcome of running one transformation pass over one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Name of the pass (e.g. `"constant-propagation"`).
    pub pass: String,
    /// Name of the function the pass ran on.
    pub function: String,
    /// Number of IR changes made (ops rewritten, removed, created, moved).
    pub changes: usize,
    /// Free-form notes (e.g. which loops were unrolled and by how much).
    pub notes: Vec<String>,
    /// Which cached analyses the pass invalidated.
    pub invalidation: Invalidation,
}

impl Report {
    /// Creates an empty report for `pass` running on `function`, with the
    /// conservative [`Invalidation::Structure`] default.
    pub fn new(pass: &str, function: &str) -> Self {
        Report {
            pass: pass.to_string(),
            function: function.to_string(),
            changes: 0,
            notes: Vec::new(),
            invalidation: Invalidation::default(),
        }
    }

    /// Records how much of the cached analyses this pass invalidated.
    pub fn set_invalidation(&mut self, invalidation: Invalidation) {
        self.invalidation = invalidation;
    }

    /// Records `n` additional changes.
    pub fn add(&mut self, n: usize) {
        self.changes += n;
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Returns `true` if the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        self.changes == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} change(s)",
            self.pass, self.function, self.changes
        )?;
        for note in &self.notes {
            write!(f, "; {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("dce", "main");
        assert!(r.is_noop());
        r.add(3);
        r.note("removed 3 dead copies");
        assert_eq!(r.changes, 3);
        assert!(!r.is_noop());
        let text = r.to_string();
        assert!(text.contains("dce"));
        assert!(text.contains("3 change(s)"));
        assert!(text.contains("dead copies"));
    }
}
