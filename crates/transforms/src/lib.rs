//! # spark-transforms — coordinated parallelizing transformations
//!
//! The coarse-grain and fine-grain compiler transformations of the Spark HLS
//! reproduction (Gupta et al., DAC 2002, Section 3):
//!
//! * **Coarse grain:** [`inline_calls`], [`unroll_loop_fully`] /
//!   [`unroll_all_loops`], [`while_to_for`] (the source-level rewrite of the
//!   natural Figure 16 description into the synthesizable Figure 10 form).
//! * **Speculative code motions:** [`speculate`] (hoist pure operations above
//!   the conditions they depend on — Figure 11), [`reverse_speculation`] and
//!   [`early_condition_execution`].
//! * **Fine grain:** [`constant_propagation`] (with folding — Figures 3/14),
//!   [`copy_propagation`], [`common_subexpression_elimination`] and
//!   [`dead_code_elimination`].
//!
//! Every pass takes a mutable [`Function`](spark_ir::Function) (or
//! [`Program`](spark_ir::Program) for inlining), preserves the observable
//! semantics checked by the [`spark_ir::Interpreter`], and returns a
//! [`Report`] describing what changed — including which cached analyses it
//! [`Invalidation`]-invalidated — so that the `spark-core` pass manager can
//! log the per-stage effect exactly as the paper's figures do and rebuild
//! only what a pass actually dirtied.
//!
//! The fine-grain passes additionally come in `_seeded` form
//! ([`constant_propagation_seeded`], [`copy_propagation_seeded`],
//! [`common_subexpression_elimination_seeded`],
//! [`dead_code_elimination_seeded`]): worklist-driven variants over a shared
//! [`FineState`] (an incrementally maintained
//! [`DefUseGraph`](spark_ir::DefUseGraph) plus [`Positions`]), seeded by the
//! operations the previous pass touched instead of rescanning the whole
//! function per fixed-point round.
//!
//! # Examples
//!
//! Unroll and fold the loop of Figure 2/3:
//!
//! ```
//! use spark_ir::{FunctionBuilder, OpKind, Type, Value};
//! use spark_transforms::{constant_propagation, dead_code_elimination, unroll_all_loops};
//!
//! let mut b = FunctionBuilder::new("fig2");
//! let i = b.var("i", Type::Bits(32));
//! let acc = b.output("acc", Type::Bits(32));
//! b.copy(acc, Value::word(0));
//! b.for_begin(i, 0, Value::word(7), 1);
//! b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
//! b.loop_end();
//! let mut f = b.finish();
//!
//! unroll_all_loops(&mut f);
//! constant_propagation(&mut f);
//! dead_code_elimination(&mut f);
//! assert_eq!(f.loop_count(), 0);
//! ```

#![warn(missing_docs)]

mod code_motion;
mod const_prop;
mod copy_prop;
mod cse;
mod dce;
mod fine;
mod inline;
mod position;
mod report;
mod speculation;
mod unroll;
mod while_to_for;

pub use code_motion::{early_condition_execution, reverse_speculation};
pub use const_prop::{constant_propagation, constant_propagation_seeded, fold_constants};
pub use copy_prop::{copy_propagation, copy_propagation_seeded};
pub use cse::{common_subexpression_elimination, common_subexpression_elimination_seeded};
pub use dce::{dead_code_elimination, dead_code_elimination_seeded};
pub use fine::FineState;
pub use inline::inline_calls;
pub use position::Positions;
pub use report::{Invalidation, Report};
pub use speculation::{speculate, speculate_with, speculative_op_count, SpeculationOptions};
pub use unroll::{
    reachable_loops, unroll_all_loops, unroll_loop_fully, UnrollError, MAX_UNROLL_ITERATIONS,
};
pub use while_to_for::while_to_for;
