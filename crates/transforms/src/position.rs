//! Structural program positions and a structural dominance test.
//!
//! The fine-grain transformations (constant propagation, copy propagation,
//! CSE) must only forward a value from a definition to a use when the
//! definition is guaranteed to execute before the use on every path. For the
//! structured HTG this reduces to a simple *structural dominance* test: the
//! definition's chain of enclosing regions must be a prefix of the use's
//! chain, and the definition must come earlier in program order. A definition
//! buried inside a conditional branch therefore never dominates a use after
//! the join, while a definition at the top level dominates everything that
//! follows it.
//!
//! Positions stay valid across in-place rewrites and erasures: the fine
//! passes never move an operation between blocks, erasing operations keeps
//! the relative order of the survivors, and pruning emptied structure does
//! not change the region chain of any remaining operation. The pass manager
//! in `spark-core` therefore computes positions once per fine-grain phase
//! and shares them across every worklist pass, instead of recomputing them
//! per fixed-point round as the full-rescan passes did.

use std::collections::HashMap;

use spark_ir::{Function, HtgNode, OpId, RegionId, SecondaryMap};

/// Per-operation position record: an interned region chain, the pre-order
/// program index, and loop membership.
#[derive(Clone, Copy, Debug)]
struct OpPosition {
    /// Index into [`Positions::paths`].
    path: u32,
    /// Index in a pre-order walk of the whole body (program order).
    order: u32,
    /// Whether any enclosing HTG node is a loop.
    in_loop: bool,
}

/// Structural position of every live operation in a function.
///
/// Region chains are interned: operations in the same region share one path
/// entry, so the dominance test is usually a single integer comparison plus
/// an equality check, and computing positions allocates O(regions) instead
/// of O(operations) chains.
#[derive(Clone, Debug, Default)]
pub struct Positions {
    info: SecondaryMap<OpId, OpPosition>,
    /// Unique region chains from the body down, in first-encounter order.
    paths: Vec<Vec<RegionId>>,
}

impl Positions {
    /// Computes positions for all live operations of `function`.
    pub fn compute(function: &Function) -> Self {
        let mut positions = Positions::default();
        let mut interned: HashMap<Vec<RegionId>, u32> = HashMap::new();
        let mut counter = 0u32;
        let mut path = vec![function.body];
        walk(
            function,
            function.body,
            &mut path,
            false,
            &mut counter,
            &mut interned,
            &mut positions,
        );
        positions
    }

    /// Program-order index of an operation (`None` for dead/detached ops).
    pub fn order_of(&self, op: OpId) -> Option<usize> {
        self.info.get(&op).map(|p| p.order as usize)
    }

    /// Returns `true` if `op` is nested inside at least one loop.
    pub fn is_in_loop(&self, op: OpId) -> bool {
        self.info.get(&op).map(|p| p.in_loop).unwrap_or(false)
    }

    /// Returns `true` if `def` structurally dominates `user`: `def` executes
    /// before `user` on every path from the function entry to `user`.
    ///
    /// Conservative: operations inside loops never dominate operations
    /// outside their loop, and definitions inside conditional branches never
    /// dominate uses outside the branch.
    pub fn dominates(&self, def: OpId, user: OpId) -> bool {
        let (Some(def_pos), Some(use_pos)) = (self.info.get(&def), self.info.get(&user)) else {
            return false;
        };
        if def_pos.order >= use_pos.order {
            return false;
        }
        if def_pos.path == use_pos.path {
            return true;
        }
        // def's region chain must be a prefix of use's region chain.
        let def_path = &self.paths[def_pos.path as usize];
        let use_path = &self.paths[use_pos.path as usize];
        if def_path.len() > use_path.len() {
            return false;
        }
        def_path.iter().zip(use_path.iter()).all(|(a, b)| a == b)
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    function: &Function,
    region: RegionId,
    path: &mut Vec<RegionId>,
    in_loop: bool,
    counter: &mut u32,
    interned: &mut HashMap<Vec<RegionId>, u32>,
    positions: &mut Positions,
) {
    let mut path_id = None;
    for &node in &function.regions[region].nodes {
        match &function.nodes[node] {
            HtgNode::Block(b) => {
                for &op in &function.blocks[*b].ops {
                    if function.ops[op].dead {
                        continue;
                    }
                    let path_id = *path_id.get_or_insert_with(|| {
                        *interned.entry(path.clone()).or_insert_with(|| {
                            positions.paths.push(path.clone());
                            (positions.paths.len() - 1) as u32
                        })
                    });
                    positions.info.insert(
                        op,
                        OpPosition {
                            path: path_id,
                            order: *counter,
                            in_loop,
                        },
                    );
                    *counter += 1;
                }
            }
            HtgNode::If(i) => {
                path.push(i.then_region);
                walk(
                    function,
                    i.then_region,
                    path,
                    in_loop,
                    counter,
                    interned,
                    positions,
                );
                path.pop();
                path.push(i.else_region);
                walk(
                    function,
                    i.else_region,
                    path,
                    in_loop,
                    counter,
                    interned,
                    positions,
                );
                path.pop();
            }
            HtgNode::Loop(l) => {
                path.push(l.body);
                walk(function, l.body, path, true, counter, interned, positions);
                path.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    #[test]
    fn top_level_def_dominates_branch_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def = b.copy(x, Value::word(1));
        b.if_begin(Value::Var(c));
        let use_in_branch = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(pos.dominates(def, use_in_branch));
        assert!(!pos.dominates(use_in_branch, def));
    }

    #[test]
    fn branch_def_does_not_dominate_join_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let def = b.copy(x, Value::word(1));
        b.if_end();
        let after = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.dominates(def, after));
    }

    #[test]
    fn then_def_does_not_dominate_else_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let def = b.copy(x, Value::word(1));
        b.else_begin();
        let other = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.dominates(def, other));
    }

    #[test]
    fn loop_membership_is_tracked() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(32));
        let x = b.var("x", Type::Bits(32));
        let before = b.copy(x, Value::word(0));
        b.for_begin(i, 1, Value::word(4), 1);
        let inside = b.assign(OpKind::Add, x, vec![Value::Var(x), Value::Var(i)]);
        b.loop_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.is_in_loop(before));
        assert!(pos.is_in_loop(inside));
        // A def before the loop dominates ops inside it.
        assert!(pos.dominates(before, inside));
    }

    #[test]
    fn order_is_program_order() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let first = b.copy(x, Value::word(1));
        let second = b.copy(x, Value::word(2));
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(pos.order_of(first).unwrap() < pos.order_of(second).unwrap());
        assert_eq!(pos.order_of(spark_ir::OpId::from_raw(99)), None);
    }
}
