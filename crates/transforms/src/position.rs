//! Structural program positions and a structural dominance test.
//!
//! The fine-grain transformations (constant propagation, copy propagation,
//! CSE) must only forward a value from a definition to a use when the
//! definition is guaranteed to execute before the use on every path. For the
//! structured HTG this reduces to a simple *structural dominance* test: the
//! definition's chain of enclosing regions must be a prefix of the use's
//! chain, and the definition must come earlier in program order. A definition
//! buried inside a conditional branch therefore never dominates a use after
//! the join, while a definition at the top level dominates everything that
//! follows it.

use std::collections::BTreeMap;

use spark_ir::{Function, HtgNode, OpId, RegionId};

/// Structural position of every live operation in a function.
#[derive(Clone, Debug, Default)]
pub struct Positions {
    /// For each op: the chain of region ids from the function body down to
    /// the region containing the op's block.
    region_path: BTreeMap<OpId, Vec<RegionId>>,
    /// For each op: its index in a pre-order walk of the whole body
    /// (program order).
    order: BTreeMap<OpId, usize>,
    /// For each op: whether any enclosing HTG node is a loop.
    in_loop: BTreeMap<OpId, bool>,
}

impl Positions {
    /// Computes positions for all live operations of `function`.
    pub fn compute(function: &Function) -> Self {
        let mut positions = Positions::default();
        let mut counter = 0usize;
        let mut path = vec![function.body];
        walk(
            function,
            function.body,
            &mut path,
            false,
            &mut counter,
            &mut positions,
        );
        positions
    }

    /// Program-order index of an operation (`None` for dead/detached ops).
    pub fn order_of(&self, op: OpId) -> Option<usize> {
        self.order.get(&op).copied()
    }

    /// Returns `true` if `op` is nested inside at least one loop.
    pub fn is_in_loop(&self, op: OpId) -> bool {
        self.in_loop.get(&op).copied().unwrap_or(false)
    }

    /// Returns `true` if `def` structurally dominates `user`: `def` executes
    /// before `user` on every path from the function entry to `user`.
    ///
    /// Conservative: operations inside loops never dominate operations
    /// outside their loop, and definitions inside conditional branches never
    /// dominate uses outside the branch.
    pub fn dominates(&self, def: OpId, user: OpId) -> bool {
        let (Some(def_path), Some(use_path)) =
            (self.region_path.get(&def), self.region_path.get(&user))
        else {
            return false;
        };
        let (Some(&def_order), Some(&use_order)) = (self.order.get(&def), self.order.get(&user))
        else {
            return false;
        };
        if def_order >= use_order {
            return false;
        }
        // def's region chain must be a prefix of use's region chain.
        if def_path.len() > use_path.len() {
            return false;
        }
        def_path.iter().zip(use_path.iter()).all(|(a, b)| a == b)
    }
}

fn walk(
    function: &Function,
    region: RegionId,
    path: &mut Vec<RegionId>,
    in_loop: bool,
    counter: &mut usize,
    positions: &mut Positions,
) {
    for &node in &function.regions[region].nodes {
        match &function.nodes[node] {
            HtgNode::Block(b) => {
                for &op in &function.blocks[*b].ops {
                    if function.ops[op].dead {
                        continue;
                    }
                    positions.region_path.insert(op, path.clone());
                    positions.order.insert(op, *counter);
                    positions.in_loop.insert(op, in_loop);
                    *counter += 1;
                }
            }
            HtgNode::If(i) => {
                path.push(i.then_region);
                walk(function, i.then_region, path, in_loop, counter, positions);
                path.pop();
                path.push(i.else_region);
                walk(function, i.else_region, path, in_loop, counter, positions);
                path.pop();
            }
            HtgNode::Loop(l) => {
                path.push(l.body);
                walk(function, l.body, path, true, counter, positions);
                path.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    #[test]
    fn top_level_def_dominates_branch_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let def = b.copy(x, Value::word(1));
        b.if_begin(Value::Var(c));
        let use_in_branch = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(pos.dominates(def, use_in_branch));
        assert!(!pos.dominates(use_in_branch, def));
    }

    #[test]
    fn branch_def_does_not_dominate_join_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let def = b.copy(x, Value::word(1));
        b.if_end();
        let after = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.dominates(def, after));
    }

    #[test]
    fn then_def_does_not_dominate_else_use() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.if_begin(Value::Var(c));
        let def = b.copy(x, Value::word(1));
        b.else_begin();
        let other = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.dominates(def, other));
    }

    #[test]
    fn loop_membership_is_tracked() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(32));
        let x = b.var("x", Type::Bits(32));
        let before = b.copy(x, Value::word(0));
        b.for_begin(i, 1, Value::word(4), 1);
        let inside = b.assign(OpKind::Add, x, vec![Value::Var(x), Value::Var(i)]);
        b.loop_end();
        let f = b.finish();
        let pos = Positions::compute(&f);
        assert!(!pos.is_in_loop(before));
        assert!(pos.is_in_loop(inside));
        // A def before the loop dominates ops inside it.
        assert!(pos.dominates(before, inside));
    }
}
