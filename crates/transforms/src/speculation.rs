//! Speculative code motion.
//!
//! In speculative execution "operations are executed before the conditions
//! they depend on have been evaluated" (Section 3). Applied to the ILD's
//! `CalculateLength`, speculation hoists all the length-contribution and
//! `Need_kth_Byte` computations, as well as the candidate `TempLength` sums,
//! above the conditional structure; the conditionals that remain contain only
//! variable copies and collapse into steering (mux) logic in hardware
//! (Figure 11).
//!
//! Mechanically, a pure operation inside a branch is hoisted to a *speculation
//! block* inserted immediately before the `if` node. Its destination is
//! renamed to a fresh variable and a copy back to the original destination is
//! left at the original position, so the architectural state is still updated
//! only on the paths where the original operation executed. Copy propagation
//! and dead code elimination then clean up the copies that turn out to be
//! unnecessary.

use std::collections::{BTreeMap, BTreeSet};

use spark_ir::{Function, HtgNode, OpKind, RegionId, Value, VarId};

use crate::report::{Invalidation, Report};

/// Options controlling the speculation pass.
#[derive(Clone, Copy, Debug)]
pub struct SpeculationOptions {
    /// Maximum number of operations hoisted out of any single `if` node.
    /// Unlimited resource allocation (the microprocessor-block scenario of
    /// the paper) corresponds to a very large value; a small value models an
    /// ASIC-style resource-conscious flow.
    pub max_hoists_per_branch: usize,
    /// When `false`, comparisons are not speculated (some flows prefer to
    /// keep condition computations in place).
    pub speculate_comparisons: bool,
}

impl Default for SpeculationOptions {
    fn default() -> Self {
        SpeculationOptions {
            max_hoists_per_branch: usize::MAX,
            speculate_comparisons: true,
        }
    }
}

/// Runs speculation over the whole function with default options.
pub fn speculate(function: &mut Function) -> Report {
    speculate_with(function, SpeculationOptions::default())
}

/// Runs speculation with explicit [`SpeculationOptions`].
pub fn speculate_with(function: &mut Function, options: SpeculationOptions) -> Report {
    let mut report = Report::new("speculation", &function.name);
    let body = function.body;
    let hoisted = speculate_region(function, body, options);
    report.add(hoisted);
    if hoisted > 0 {
        report.note(format!("hoisted {hoisted} operation(s) above conditionals"));
        // Hoists insert blocks and move computations across any region of
        // the body that contains a conditional.
        report.set_invalidation(Invalidation::Region(body));
    } else {
        report.set_invalidation(Invalidation::None);
    }
    report
}

/// Recursively speculates inside `region`; returns the number of hoists.
fn speculate_region(
    function: &mut Function,
    region: RegionId,
    options: SpeculationOptions,
) -> usize {
    let mut hoists = 0;
    // Work on one snapshot of the node ids: hoisting only inserts block
    // nodes (which need no visit), and the insertion point is re-resolved by
    // node id. `inserted` keeps the running shift so the generated block
    // names match the historical position-with-insertions numbering.
    let nodes = function.regions[region].nodes.clone();
    let mut inserted = 0usize;
    for (snapshot_index, &node) in nodes.iter().enumerate() {
        match function.nodes[node].clone() {
            HtgNode::Block(_) => {}
            HtgNode::Loop(l) => {
                hoists += speculate_region(function, l.body, options);
            }
            HtgNode::If(if_node) => {
                // Innermost first: flatten the branches.
                hoists += speculate_region(function, if_node.then_region, options);
                hoists += speculate_region(function, if_node.else_region, options);
                // Then hoist from both branches to just before this if.
                let mut spec_ops: Vec<(OpKind, VarId, Vec<Value>, VarId)> = Vec::new();
                for branch in [if_node.then_region, if_node.else_region] {
                    hoists += hoist_branch(function, branch, options, &mut spec_ops);
                }
                if !spec_ops.is_empty() {
                    let spec_block =
                        function.add_block(format!("spec_{}", snapshot_index + inserted));
                    for (kind, new_dest, args, _orig) in spec_ops.drain(..) {
                        let op = function.push_op(spec_block, kind, Some(new_dest), args);
                        function.ops[op].speculative = true;
                    }
                    let spec_node = function.add_block_node(spec_block);
                    // Insert before the if node; its position is re-resolved
                    // by id because earlier insertions shifted it.
                    let position = function.regions[region]
                        .nodes
                        .iter()
                        .position(|&n| n == node)
                        .expect("if node stays in its region");
                    function.regions[region].nodes.insert(position, spec_node);
                    inserted += 1;
                }
            }
        }
    }
    hoists
}

/// Hoists pure operations out of one branch region. The hoisted operation
/// descriptors are appended to `spec_ops` (kind, fresh destination, rewritten
/// operands, original destination); the original operations are rewritten
/// into copies from the fresh destinations.
fn hoist_branch(
    function: &mut Function,
    branch: RegionId,
    options: SpeculationOptions,
    spec_ops: &mut Vec<(OpKind, VarId, Vec<Value>, VarId)>,
) -> usize {
    let mut hoists = 0;
    // Variables whose latest definition in this branch was hoisted, mapped to
    // the fresh speculative name.
    let mut renamed: BTreeMap<VarId, VarId> = BTreeMap::new();
    // Variables defined in this branch by operations that were *not* hoisted;
    // any operation reading them cannot be hoisted.
    let mut pinned: BTreeSet<VarId> = BTreeSet::new();

    let nodes = function.regions[branch].nodes.clone();
    for node in nodes {
        match function.nodes[node].clone() {
            HtgNode::Block(block) => {
                // Index-based iteration: rewriting an op in place never
                // changes the block's op list, so no snapshot (and no
                // per-operation clone) is needed.
                for position in 0..function.blocks[block].ops.len() {
                    let op_id = function.blocks[block].ops[position];
                    let op = &function.ops[op_id];
                    if op.dead {
                        continue;
                    }
                    let hoistable = !op.kind.has_side_effects()
                        && op.dest.is_some()
                        && (options.speculate_comparisons || !op.kind.is_comparison())
                        && hoists < options.max_hoists_per_branch
                        && op
                            .args
                            .iter()
                            .filter_map(|a| a.as_var())
                            .all(|v| !pinned.contains(&v))
                        // Reading an array element is pure in this IR (the
                        // instruction buffer is read-only), but reading an
                        // array that is *written* in this branch would not be.
                        && match &op.kind {
                            OpKind::ArrayRead { array } => !pinned.contains(array),
                            _ => true,
                        };
                    if hoistable {
                        let dest = op.dest.expect("hoistable op has a destination");
                        let kind = op.kind.clone();
                        // Rewrite operands through the rename map so hoisted
                        // ops read the speculative values of earlier hoisted
                        // definitions in the same branch.
                        let args: Vec<Value> = op
                            .args
                            .iter()
                            .map(|&a| match a {
                                Value::Var(v) => Value::Var(*renamed.get(&v).unwrap_or(&v)),
                                c => c,
                            })
                            .collect();
                        let ty = function.vars[dest].ty;
                        let fresh =
                            function.fresh_temp(&format!("spec_{}", function.vars[dest].name), ty);
                        spec_ops.push((kind, fresh, args, dest));
                        // The original op becomes a commit copy.
                        let op_mut = &mut function.ops[op_id];
                        op_mut.kind = OpKind::Copy;
                        op_mut.args = vec![Value::Var(fresh)];
                        renamed.insert(dest, fresh);
                        hoists += 1;
                    } else if let Some(defined) = op.def() {
                        pinned.insert(defined);
                        renamed.remove(&defined);
                    }
                }
            }
            HtgNode::If(inner) => {
                // Anything defined inside a nested conditional is only
                // conditionally defined: pin those variables.
                for op in function.ops_in_region(inner.then_region) {
                    if let Some(d) = function.ops[op].def() {
                        pinned.insert(d);
                        renamed.remove(&d);
                    }
                }
                for op in function.ops_in_region(inner.else_region) {
                    if let Some(d) = function.ops[op].def() {
                        pinned.insert(d);
                        renamed.remove(&d);
                    }
                }
            }
            HtgNode::Loop(l) => {
                for op in function.ops_in_region(l.body) {
                    if let Some(d) = function.ops[op].def() {
                        pinned.insert(d);
                        renamed.remove(&d);
                    }
                }
            }
        }
    }
    hoists
}

/// Counts the live operations marked as speculative.
pub fn speculative_op_count(function: &Function) -> usize {
    function
        .live_ops()
        .into_iter()
        .filter(|&op| function.ops[op].speculative)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_prop::copy_propagation;
    use crate::dce::dead_code_elimination;
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, Program, Type};

    /// The nested-conditional length computation of Figure 10's
    /// `CalculateLength`, in miniature: three nested ifs computing a sum.
    fn nested_length_function() -> Function {
        let mut b = FunctionBuilder::new("calc");
        let b1 = b.param("b1", Type::Bits(8));
        let b2 = b.param("b2", Type::Bits(8));
        let b3 = b.param("b3", Type::Bits(8));
        let length = b.output("Length", Type::Bits(8));
        let lc1 = b.var("lc1", Type::Bits(8));
        let lc2 = b.var("lc2", Type::Bits(8));
        let lc3 = b.var("lc3", Type::Bits(8));
        b.assign(OpKind::And, lc1, vec![Value::Var(b1), Value::word(3)]);
        let need2 = b.compute(
            OpKind::Gt,
            Type::Bool,
            vec![Value::Var(b1), Value::word(127)],
        );
        b.if_begin(Value::Var(need2));
        {
            b.assign(OpKind::And, lc2, vec![Value::Var(b2), Value::word(3)]);
            let need3 = b.compute(
                OpKind::Gt,
                Type::Bool,
                vec![Value::Var(b2), Value::word(127)],
            );
            b.if_begin(Value::Var(need3));
            {
                b.assign(OpKind::And, lc3, vec![Value::Var(b3), Value::word(3)]);
                let t = b.compute(
                    OpKind::Add,
                    Type::Bits(8),
                    vec![Value::Var(lc1), Value::Var(lc2)],
                );
                b.assign(OpKind::Add, length, vec![Value::Var(t), Value::Var(lc3)]);
            }
            b.else_begin();
            {
                b.assign(OpKind::Add, length, vec![Value::Var(lc1), Value::Var(lc2)]);
            }
            b.if_end();
        }
        b.else_begin();
        b.copy(length, Value::Var(lc1));
        b.if_end();
        b.finish()
    }

    fn run(program: &Program, b1: u64, b2: u64, b3: u64) -> u64 {
        let env = Env::new()
            .with_scalar("b1", b1)
            .with_scalar("b2", b2)
            .with_scalar("b3", b3);
        Interpreter::new(program)
            .run("calc", &env)
            .unwrap()
            .scalar("Length")
            .unwrap()
    }

    #[test]
    fn speculation_preserves_semantics() {
        let original = nested_length_function();
        let mut transformed = original.clone();
        let report = speculate(&mut transformed);
        assert!(report.changes > 0);
        verify(&transformed).expect("well formed after speculation");

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(transformed);
        for b1 in [0u64, 130, 255] {
            for b2 in [0u64, 200] {
                for b3 in [1u64, 7] {
                    assert_eq!(
                        run(&p0, b1, b2, b3),
                        run(&p1, b1, b2, b3),
                        "b1={b1} b2={b2} b3={b3}"
                    );
                }
            }
        }
    }

    #[test]
    fn branches_contain_only_copies_after_speculation() {
        let mut f = nested_length_function();
        speculate(&mut f);
        // Figure 11: after speculation all data computation is up front and
        // the conditional structure only selects results via copies.
        for (_, node) in f.nodes.iter() {
            if let HtgNode::If(if_node) = node {
                for branch in [if_node.then_region, if_node.else_region] {
                    for op in f.ops_in_region(branch) {
                        assert_eq!(
                            f.ops[op].kind,
                            OpKind::Copy,
                            "branch op `{:?}` should be a copy after speculation",
                            f.ops[op].kind
                        );
                    }
                }
            }
        }
        assert!(speculative_op_count(&f) > 0);
    }

    #[test]
    fn cleanup_after_speculation_keeps_semantics() {
        let original = nested_length_function();
        let mut f = original.clone();
        speculate(&mut f);
        copy_propagation(&mut f);
        dead_code_elimination(&mut f);
        verify(&f).expect("well formed after cleanup");
        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(f);
        for b1 in [5u64, 129, 255] {
            for b2 in [3u64, 180] {
                assert_eq!(run(&p0, b1, b2, 2), run(&p1, b1, b2, 2));
            }
        }
    }

    #[test]
    fn side_effecting_ops_are_not_hoisted() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let mark = b.output_array("Mark", Type::Bool, 4);
        b.if_begin(Value::Var(c));
        b.array_write(mark, Value::word(1), Value::bool(true));
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        let report = speculate(&mut f);
        assert!(
            report.is_noop(),
            "array writes must stay under their condition"
        );

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(f);
        for c in [0u64, 1] {
            let env = Env::new().with_scalar("c", c);
            let a = Interpreter::new(&p0).run("f", &env).unwrap();
            let b_ = Interpreter::new(&p1).run("f", &env).unwrap();
            assert_eq!(a.array("Mark"), b_.array("Mark"));
        }
    }

    #[test]
    fn hoist_limit_is_respected() {
        let mut f = nested_length_function();
        let report = speculate_with(
            &mut f,
            SpeculationOptions {
                max_hoists_per_branch: 1,
                speculate_comparisons: true,
            },
        );
        // With a limit of one per branch we hoist far fewer ops than the
        // unlimited case.
        assert!(report.changes <= 4);
    }

    #[test]
    fn ops_depending_on_pinned_values_stay() {
        // y is written by an array write dependent op chain: x = buf[c]; the
        // read itself is hoistable but a later op reading a pinned var is not.
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let out = b.output("out", Type::Bits(8));
        let scratch = b.array("scratch", Type::Bits(8), 2);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.array_write(scratch, Value::word(0), Value::word(5));
        b.array_read(x, scratch, Value::word(0));
        b.assign(OpKind::Add, out, vec![Value::Var(x), Value::word(1)]);
        b.if_end();
        let original = b.finish();
        let mut f = original.clone();
        speculate(&mut f);
        verify(&f).expect("well formed");
        // Semantics preserved: when c=0 nothing observable happens; when c=1
        // out becomes 6.
        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(f);
        for c in [0u64, 1] {
            let env = Env::new().with_scalar("c", c);
            let a = Interpreter::new(&p0).run("f", &env).unwrap();
            let b_ = Interpreter::new(&p1).run("f", &env).unwrap();
            assert_eq!(a.scalar("out"), b_.scalar("out"), "c={c}");
        }
    }
}
