//! Copy propagation.
//!
//! The speculation and wire-variable passes introduce a large number of
//! variable copies (`Length = TempLength1;`, `o1 = t1;`). Copy propagation
//! forwards the source of a copy to dominated uses of its destination so that
//! a following dead-code-elimination pass can delete the copy. The paper
//! lists it among the "standard compiler transformations" that support the
//! coarse-grain ones (Section 3).

use spark_ir::{EditLog, Function, OpId, OpKind, Rewriter, Value};

use crate::fine::{FineState, OpQueue};
use crate::report::{Invalidation, Report};

/// Runs copy propagation to a fixed point on `function`.
///
/// Stand-alone entry point: builds fresh analyses and seeds the worklist
/// with every live operation.
///
/// A copy `x = y` is forwarded to a use of `x` when:
/// * `x` has exactly one live definition (the copy itself),
/// * the copy structurally dominates the use, and
/// * `y` is never redefined (it has a single definition that dominates the
///   copy, or it is only defined as a parameter/primary input), so its value
///   at the use site equals its value at the copy site.
pub fn copy_propagation(function: &mut Function) -> Report {
    let mut state = FineState::new(function);
    let seed = function.live_ops();
    let (report, _) = copy_propagation_seeded(function, &mut state, &seed);
    report
}

/// Worklist-driven copy propagation over an incrementally maintained
/// [`FineState`].
///
/// Seeding mirrors [`constant_propagation_seeded`](crate::constant_propagation_seeded):
/// the worklist starts from `seed` plus the readers of each seed operation's
/// destination. Forwardability of a copy is otherwise static across the
/// fine-grain phase (definition counts of live, still-used variables never
/// change, and dominance is structural), so the operations another pass
/// rewrote — e.g. a CSE result turned into a fresh variable copy — are
/// exactly the new opportunities. Copy chains resolve transitively by
/// requeueing every rewritten use; each replacement substitutes the source
/// of a strictly earlier dominating copy, so the process terminates at the
/// same fixed point as the full-rescan implementation.
pub fn copy_propagation_seeded(
    function: &mut Function,
    state: &mut FineState,
    seed: &[OpId],
) -> (Report, EditLog) {
    let mut report = Report::new("copy-propagation", &function.name);
    report.set_invalidation(Invalidation::None);
    let FineState { graph, positions } = state;
    let mut rw = Rewriter::new(function, graph);

    let mut queue = OpQueue::default();
    for &op in seed {
        if rw.function().ops[op].dead {
            continue;
        }
        queue.push(op);
        if let Some(dest) = rw.function().ops[op].def() {
            for &user in rw.graph().uses_of(dest) {
                queue.push(user);
            }
        }
    }

    // Source stability: a constant, or a variable with a single dominating
    // definition (or no definition at all, e.g. an input).
    let stable =
        |rw: &Rewriter<'_>, positions: &crate::Positions, source: Value, copy: OpId| match source {
            Value::Const(_) => true,
            Value::Var(src) => {
                let src_defs = rw.graph().defs_of(src);
                match src_defs.len() {
                    0 => true,
                    1 => positions.dominates(src_defs[0], copy),
                    _ => false,
                }
            }
        };

    let mut changed = 0usize;
    while let Some(op_id) = queue.pop() {
        if rw.function().ops[op_id].dead {
            continue;
        }

        // --- Use-side: pull the source of a dominating forwardable copy
        // into this operation's operands.
        let mut rewrote_operand = false;
        for index in 0..rw.function().ops[op_id].args.len() {
            let Value::Var(var) = rw.function().ops[op_id].args[index] else {
                continue;
            };
            let defs = rw.graph().defs_of(var);
            if defs.len() != 1 || defs[0] == op_id {
                continue;
            }
            let copy_op_id = defs[0];
            let copy_op = &rw.function().ops[copy_op_id];
            if copy_op.kind != OpKind::Copy {
                continue;
            }
            let source = copy_op.args[0];
            if stable(&rw, positions, source, copy_op_id)
                && positions.dominates(copy_op_id, op_id)
                && rw.replace_operand(op_id, index, source)
            {
                changed += 1;
                rewrote_operand = true;
            }
        }
        if rewrote_operand {
            // The operand may now name another forwardable copy (chains), or
            // this op may itself be a copy whose source just changed.
            queue.push(op_id);
        }

        // --- Def-side: if this op is a forwardable copy, push its source
        // into every dominated use and requeue them for chain resolution.
        let op = &rw.function().ops[op_id];
        if op.kind != OpKind::Copy {
            continue;
        }
        let Some(dest) = op.dest else { continue };
        let source = op.args[0];
        if !rw.graph().has_single_def(dest) || !stable(&rw, positions, source, op_id) {
            continue;
        }
        let users: Vec<OpId> = rw.graph().uses_of(dest).to_vec();
        for use_op in users {
            if use_op == op_id || !positions.dominates(op_id, use_op) {
                continue;
            }
            let mut rewrote = false;
            for index in 0..rw.function().ops[use_op].args.len() {
                if rw.function().ops[use_op].args[index] == Value::Var(dest)
                    && rw.replace_operand(use_op, index, source)
                {
                    changed += 1;
                    rewrote = true;
                }
            }
            if rewrote {
                queue.push(use_op);
            }
        }
    }

    report.add(changed);
    let effects = rw.finish();
    state.debug_check(function);
    (report, effects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, Type};

    #[test]
    fn forwards_simple_copy_chain() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let out = b.var("out", Type::Bits(8));
        b.copy(t1, Value::Var(a));
        b.copy(t2, Value::Var(t1));
        b.assign(OpKind::Add, out, vec![Value::Var(t2), Value::word(1)]);
        let mut f = b.finish();
        let report = copy_propagation(&mut f);
        assert!(report.changes >= 2);
        let ops = f.live_ops();
        let add = &f.ops[*ops.last().unwrap()];
        assert_eq!(add.args[0], Value::Var(a));
    }

    #[test]
    fn does_not_forward_unstable_source() {
        // x = y; y = y + 1; z = x  -- x must keep reading the old y.
        let mut b = FunctionBuilder::new("f");
        let y = b.var("y", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let z = b.var("z", Type::Bits(8));
        b.copy(y, Value::word(1));
        b.copy(x, Value::Var(y));
        b.assign(OpKind::Add, y, vec![Value::Var(y), Value::word(1)]);
        b.copy(z, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        // z must still read x because y was redefined in between.
        assert_eq!(last.args[0], Value::Var(x));
    }

    #[test]
    fn does_not_forward_out_of_conditional() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let z = b.var("z", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::Var(a));
        b.if_end();
        b.copy(z, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        assert_eq!(last.args[0], Value::Var(x));
    }

    #[test]
    fn forwards_constants_through_copies() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.copy(x, Value::word(7));
        b.copy(y, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        assert_eq!(last.args[0], Value::word(7));
    }

    #[test]
    fn seeded_run_from_touched_ops_matches_full_rescan() {
        // Build a copy chain, resolve it fully, then rewrite one op into a
        // fresh copy (as CSE would) and check the seeded pass catches the
        // new opportunity from the touched op alone.
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.copy(t1, Value::Var(a));
        let mid = b.assign(OpKind::Add, t2, vec![Value::Var(t1), Value::word(0)]);
        let last = b.assign(OpKind::Add, out, vec![Value::Var(t2), Value::word(1)]);
        let mut f = b.finish();

        let mut state = FineState::new(&f);
        let all = f.live_ops();
        copy_propagation_seeded(&mut f, &mut state, &all);
        // `mid` still computes t2 = a + 0; turn it into a plain copy as a
        // later pass would, through the rewriter so the state stays live.
        let mut rw = Rewriter::new(&mut f, &mut state.graph);
        rw.rewrite_op(mid, OpKind::Copy, vec![Value::Var(a)]);
        let log = rw.finish();
        let (report, _) = copy_propagation_seeded(&mut f, &mut state, &log.touched);
        assert_eq!(report.changes, 1);
        assert_eq!(f.ops[last].args[0], Value::Var(a));
    }
}
