//! Copy propagation.
//!
//! The speculation and wire-variable passes introduce a large number of
//! variable copies (`Length = TempLength1;`, `o1 = t1;`). Copy propagation
//! forwards the source of a copy to dominated uses of its destination so that
//! a following dead-code-elimination pass can delete the copy. The paper
//! lists it among the "standard compiler transformations" that support the
//! coarse-grain ones (Section 3).

use spark_ir::{DefUse, Function, OpKind, Value};

use crate::position::Positions;
use crate::report::Report;

/// Runs copy propagation to a fixed point on `function`.
///
/// A copy `x = y` is forwarded to a use of `x` when:
/// * `x` has exactly one live definition (the copy itself),
/// * the copy structurally dominates the use, and
/// * `y` is never redefined (it has a single definition that dominates the
///   copy, or it is only defined as a parameter/primary input), so its value
///   at the use site equals its value at the copy site.
pub fn copy_propagation(function: &mut Function) -> Report {
    let mut report = Report::new("copy-propagation", &function.name);
    for _round in 0..64 {
        let def_use = DefUse::compute(function);
        let positions = Positions::compute(function);
        let mut rewrites: Vec<(spark_ir::OpId, usize, Value)> = Vec::new();

        for (var, defs) in &def_use.defs {
            if defs.len() != 1 {
                continue;
            }
            let copy_op_id = defs[0];
            let copy_op = &function.ops[copy_op_id];
            if copy_op.kind != OpKind::Copy {
                continue;
            }
            let source = copy_op.args[0];
            // Source must be stable: a constant, or a variable with a single
            // dominating definition (or no definition at all, e.g. an input).
            let stable = match source {
                Value::Const(_) => true,
                Value::Var(src) => {
                    let src_defs = def_use.defs_of(src);
                    match src_defs.len() {
                        0 => true,
                        1 => positions.dominates(src_defs[0], copy_op_id),
                        _ => false,
                    }
                }
            };
            if !stable {
                continue;
            }
            for &use_op in def_use.uses_of(*var) {
                if use_op == copy_op_id || !positions.dominates(copy_op_id, use_op) {
                    continue;
                }
                for (idx, arg) in function.ops[use_op].args.iter().enumerate() {
                    if *arg == Value::Var(*var) {
                        rewrites.push((use_op, idx, source));
                    }
                }
            }
        }

        let mut changed = 0;
        for (op_id, idx, value) in rewrites {
            if function.ops[op_id].args[idx] != value {
                function.ops[op_id].args[idx] = value;
                changed += 1;
            }
        }
        report.add(changed);
        if changed == 0 {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, Type};

    #[test]
    fn forwards_simple_copy_chain() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let out = b.var("out", Type::Bits(8));
        b.copy(t1, Value::Var(a));
        b.copy(t2, Value::Var(t1));
        b.assign(OpKind::Add, out, vec![Value::Var(t2), Value::word(1)]);
        let mut f = b.finish();
        let report = copy_propagation(&mut f);
        assert!(report.changes >= 2);
        let ops = f.live_ops();
        let add = &f.ops[*ops.last().unwrap()];
        assert_eq!(add.args[0], Value::Var(a));
    }

    #[test]
    fn does_not_forward_unstable_source() {
        // x = y; y = y + 1; z = x  -- x must keep reading the old y.
        let mut b = FunctionBuilder::new("f");
        let y = b.var("y", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let z = b.var("z", Type::Bits(8));
        b.copy(y, Value::word(1));
        b.copy(x, Value::Var(y));
        b.assign(OpKind::Add, y, vec![Value::Var(y), Value::word(1)]);
        b.copy(z, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        // z must still read x because y was redefined in between.
        assert_eq!(last.args[0], Value::Var(x));
    }

    #[test]
    fn does_not_forward_out_of_conditional() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let z = b.var("z", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::Var(a));
        b.if_end();
        b.copy(z, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        assert_eq!(last.args[0], Value::Var(x));
    }

    #[test]
    fn forwards_constants_through_copies() {
        let mut b = FunctionBuilder::new("f");
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        b.copy(x, Value::word(7));
        b.copy(y, Value::Var(x));
        let mut f = b.finish();
        copy_propagation(&mut f);
        let ops = f.live_ops();
        let last = &f.ops[*ops.last().unwrap()];
        assert_eq!(last.args[0], Value::word(7));
    }
}
