//! Dead code elimination.
//!
//! The paper relies on a dead-code-elimination pass to remove the variable
//! copies left behind by constant propagation, copy propagation and the
//! wire-variable insertion of Section 3.1.2 ("a dead code elimination pass
//! later removes any unnecessary variables and variable copies").

use spark_ir::{EditLog, Function, OpId, PortDirection, Rewriter};

use crate::fine::{FineState, OpQueue};
use crate::report::{Invalidation, Report};

/// Removes operations whose results are never observed.
///
/// Stand-alone entry point: builds fresh analyses and examines every live
/// operation.
///
/// An operation is dead when it has no side effects and either has no
/// destination or its destination is an internal variable with no live
/// readers. Array writes are removed only when the whole array is internal
/// and never read. Removal cascades through a worklist: erasing one
/// operation releases its operands, whose definitions are re-examined in
/// turn — the classic mark-and-cascade formulation, reaching the same fixed
/// point the round-based recompute implementation did.
pub fn dead_code_elimination(function: &mut Function) -> Report {
    let mut state = FineState::new(function);
    let (report, _) = dead_code_elimination_seeded(function, &mut state, None);
    report
}

/// Worklist-driven dead code elimination over an incrementally maintained
/// [`FineState`].
///
/// With `seed = Some(ops)` only those candidate operations (typically the
/// definitions of variables that lost uses in earlier passes, see
/// [`EditLog::released`]) and their cascade are examined; with `None`
/// every live operation is scanned once. Both modes cascade identically, so
/// a seeded run after a full run equals the next full run.
pub fn dead_code_elimination_seeded(
    function: &mut Function,
    state: &mut FineState,
    seed: Option<&[OpId]>,
) -> (Report, EditLog) {
    let mut report = Report::new("dead-code-elimination", &function.name);
    report.set_invalidation(Invalidation::None);
    let FineState { graph, .. } = state;
    let mut rw = Rewriter::new(function, graph);

    let mut queue = OpQueue::default();
    match seed {
        None => {
            for op in rw.function().live_ops() {
                queue.push(op);
            }
        }
        Some(ops) => {
            for &op in ops {
                queue.push(op);
            }
        }
    }

    while let Some(op_id) = queue.pop() {
        if rw.function().ops[op_id].dead {
            continue;
        }
        let op = &rw.function().ops[op_id];
        let victim = match &op.kind {
            kind if !kind.has_side_effects() => match op.dest {
                None => true,
                Some(dest) => rw.graph().is_dead(rw.function(), dest),
            },
            spark_ir::OpKind::ArrayWrite { array } => {
                rw.function().vars[*array].direction != PortDirection::Output
                    && rw.graph().uses_of(*array).is_empty()
            }
            _ => false,
        };
        if !victim {
            continue;
        }
        let released = rw.function().ops[op_id].uses();
        rw.erase_op(op_id);
        report.add(1);
        // Cascade: operands that lost their last reader may have dead
        // definitions now.
        for var in released {
            if rw.graph().uses_of(var).is_empty() {
                for &def in rw.graph().defs_of(var) {
                    queue.push(def);
                }
            }
        }
    }

    let effects = rw.finish();
    state.debug_check(function);
    // Remove structure (blocks, ifs, loops) that became empty. Region-list
    // pruning does not change the region chain or relative order of any
    // surviving operation, so the shared `Positions` stay valid.
    let pruned = function.prune_empty();
    if pruned > 0 {
        report.note(format!("pruned {pruned} empty node(s)"));
    }
    (report, effects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]); // feeds y only
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]); // unused
        b.copy(out, Value::Var(a));
        let mut f = b.finish();
        let report = dead_code_elimination(&mut f);
        assert_eq!(report.changes, 2, "both x and y definitions removed");
        assert_eq!(f.live_op_count(), 1);
    }

    #[test]
    fn keeps_output_writes_and_side_effects() {
        let mut b = FunctionBuilder::new("f");
        let mark = b.output_array("Mark", Type::Bool, 4);
        let out = b.output("o", Type::Bits(8));
        b.array_write(mark, Value::word(0), Value::bool(true));
        b.copy(out, Value::word(3));
        b.ret(Value::word(0));
        let mut f = b.finish();
        let report = dead_code_elimination(&mut f);
        assert!(report.is_noop());
        assert_eq!(f.live_op_count(), 3);
    }

    #[test]
    fn removes_writes_to_internal_unread_array() {
        let mut b = FunctionBuilder::new("f");
        let scratch = b.array("scratch", Type::Bits(8), 4);
        b.array_write(scratch, Value::word(0), Value::word(1));
        let mut f = b.finish();
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 0);
    }

    #[test]
    fn empty_conditionals_are_pruned() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.if_end();
        let mut f = b.finish();
        assert_eq!(f.if_count(), 1);
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 0);
        assert_eq!(f.if_count(), 0, "the now-empty if node is pruned");
    }

    #[test]
    fn keeps_reads_feeding_outputs() {
        let mut b = FunctionBuilder::new("f");
        let buf = b.param_array("buf", Type::Bits(8), 4);
        let out = b.output("o", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.array_read(x, buf, Value::word(1));
        b.copy(out, Value::Var(x));
        let mut f = b.finish();
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 2);
    }

    #[test]
    fn seeded_run_cascades_from_released_definitions() {
        // out = a; x = a + 1; y = x + 1 (y read by z, z read by out? no —
        // build a chain that becomes dead only after its head's use is cut).
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        let def_x = b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let def_y = b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        let tail = b.copy(out, Value::Var(y));
        let mut f = b.finish();

        let mut state = FineState::new(&f);
        let (report, _) = dead_code_elimination_seeded(&mut f, &mut state, None);
        assert!(report.is_noop(), "everything feeds the output");

        // Cut the chain: out now copies `a` directly (as copy propagation
        // would), releasing y.
        let mut rw = spark_ir::Rewriter::new(&mut f, &mut state.graph);
        rw.replace_operand(tail, 0, Value::Var(a));
        let log = rw.finish();
        let candidates: Vec<OpId> = log
            .released
            .iter()
            .flat_map(|&v| state.graph.defs_of(v).to_vec())
            .collect();
        let (report, _) = dead_code_elimination_seeded(&mut f, &mut state, Some(&candidates));
        assert_eq!(report.changes, 2, "x and y cascade away");
        assert!(f.ops[def_x].dead && f.ops[def_y].dead);
        assert_eq!(f.live_op_count(), 1);
    }
}
