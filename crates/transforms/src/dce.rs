//! Dead code elimination.
//!
//! The paper relies on a dead-code-elimination pass to remove the variable
//! copies left behind by constant propagation, copy propagation and the
//! wire-variable insertion of Section 3.1.2 ("a dead code elimination pass
//! later removes any unnecessary variables and variable copies").

use spark_ir::{DefUse, Function, PortDirection};

use crate::report::Report;

/// Removes operations whose results are never observed.
///
/// An operation is dead when it has no side effects and either has no
/// destination or its destination is an internal variable with no live
/// readers. Array writes are removed only when the whole array is internal
/// and never read. The pass iterates to a fixed point because removing one
/// operation can make its operands' definitions dead in turn.
pub fn dead_code_elimination(function: &mut Function) -> Report {
    let mut report = Report::new("dead-code-elimination", &function.name);
    loop {
        let def_use = DefUse::compute(function);
        let mut victims = Vec::new();
        for op_id in function.live_ops() {
            let op = &function.ops[op_id];
            match &op.kind {
                kind if !kind.has_side_effects() => {
                    let dead = match op.dest {
                        None => true,
                        Some(dest) => def_use.is_dead(function, dest),
                    };
                    if dead {
                        victims.push(op_id);
                    }
                }
                spark_ir::OpKind::ArrayWrite { array } => {
                    let array_var = &function.vars[*array];
                    let unread = def_use.uses_of(*array).is_empty();
                    if array_var.direction != PortDirection::Output && unread {
                        victims.push(op_id);
                    }
                }
                _ => {}
            }
        }
        if victims.is_empty() {
            break;
        }
        report.add(victims.len());
        for op in victims {
            function.kill_op(op);
        }
    }
    // Remove structure (blocks, ifs, loops) that became empty.
    let pruned = function.prune_empty();
    if pruned > 0 {
        report.note(format!("pruned {pruned} empty node(s)"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        let y = b.var("y", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]); // feeds y only
        b.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]); // unused
        b.copy(out, Value::Var(a));
        let mut f = b.finish();
        let report = dead_code_elimination(&mut f);
        assert_eq!(report.changes, 2, "both x and y definitions removed");
        assert_eq!(f.live_op_count(), 1);
    }

    #[test]
    fn keeps_output_writes_and_side_effects() {
        let mut b = FunctionBuilder::new("f");
        let mark = b.output_array("Mark", Type::Bool, 4);
        let out = b.output("o", Type::Bits(8));
        b.array_write(mark, Value::word(0), Value::bool(true));
        b.copy(out, Value::word(3));
        b.ret(Value::word(0));
        let mut f = b.finish();
        let report = dead_code_elimination(&mut f);
        assert!(report.is_noop());
        assert_eq!(f.live_op_count(), 3);
    }

    #[test]
    fn removes_writes_to_internal_unread_array() {
        let mut b = FunctionBuilder::new("f");
        let scratch = b.array("scratch", Type::Bits(8), 4);
        b.array_write(scratch, Value::word(0), Value::word(1));
        let mut f = b.finish();
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 0);
    }

    #[test]
    fn empty_conditionals_are_pruned() {
        let mut b = FunctionBuilder::new("f");
        let c = b.param("c", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        b.if_begin(Value::Var(c));
        b.copy(x, Value::word(1));
        b.if_end();
        let mut f = b.finish();
        assert_eq!(f.if_count(), 1);
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 0);
        assert_eq!(f.if_count(), 0, "the now-empty if node is pruned");
    }

    #[test]
    fn keeps_reads_feeding_outputs() {
        let mut b = FunctionBuilder::new("f");
        let buf = b.param_array("buf", Type::Bits(8), 4);
        let out = b.output("o", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.array_read(x, buf, Value::word(1));
        b.copy(out, Value::Var(x));
        let mut f = b.finish();
        dead_code_elimination(&mut f);
        assert_eq!(f.live_op_count(), 2);
    }
}
