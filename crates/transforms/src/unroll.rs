//! Loop unrolling.
//!
//! For microprocessor functional blocks, loops are "only a programming
//! convenience and latency constraints generally dictate the amount of
//! unrolling" (Section 3 of the paper). A design targeted at a single cycle
//! must have its loops unrolled completely (Figures 2 and 13). Each unrolled
//! iteration receives a fresh copy of the loop index initialised to the
//! iteration's constant value, so that the subsequent constant-propagation
//! pass can eliminate the index exactly as in Figures 3 and 14.

use std::collections::BTreeMap;

use spark_ir::{Constant, Function, HtgNode, LoopKind, NodeId, OpKind, RegionId, Value, Var};

use crate::report::{Invalidation, Report};

/// Hard limit on the number of iterations a single loop may be expanded to.
/// The ILD buffer sizes explored in the paper's domain are a few tens of
/// bytes; the limit only guards against run-away expansion.
pub const MAX_UNROLL_ITERATIONS: u64 = 4096;

/// Why a loop could not be unrolled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnrollError {
    /// The loop bound is not a compile-time constant and no trip bound was
    /// supplied.
    NonConstantBound,
    /// The loop would expand to more than [`MAX_UNROLL_ITERATIONS`] iterations.
    TooManyIterations(u64),
    /// The node is not a loop.
    NotALoop,
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::NonConstantBound => write!(f, "loop bound is not a constant"),
            UnrollError::TooManyIterations(n) => {
                write!(
                    f,
                    "loop would unroll to {n} iterations (limit {MAX_UNROLL_ITERATIONS})"
                )
            }
            UnrollError::NotALoop => write!(f, "node is not a loop"),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Computes the trip count of a `for` loop with constant bounds.
fn trip_count(start: Constant, end: Constant, step: i64) -> u64 {
    let start = start.value() as i64;
    let end = end.value() as i64;
    if step > 0 {
        if end < start {
            0
        } else {
            ((end - start) / step + 1) as u64
        }
    } else if step < 0 {
        if start < end {
            0
        } else {
            ((start - end) / (-step) + 1) as u64
        }
    } else {
        0
    }
}

/// Fully unrolls the loop at `loop_node`.
///
/// The loop must be a `for` loop whose bound is a constant. Each iteration
/// body is cloned with the loop index replaced by a fresh per-iteration
/// variable, initialised by an explicit constant copy (Figure 13); the
/// constants are *not* substituted into uses here — that is constant
/// propagation's job (Figure 14), keeping the two stages separately
/// observable as in the paper.
///
/// # Errors
/// Returns [`UnrollError`] if the node is not a `for` loop with constant
/// bounds or the trip count exceeds [`MAX_UNROLL_ITERATIONS`].
pub fn unroll_loop_fully(
    function: &mut Function,
    loop_node: NodeId,
) -> Result<Report, UnrollError> {
    let mut report = Report::new("loop-unroll", &function.name);
    let HtgNode::Loop(loop_data) = function.nodes[loop_node].clone() else {
        return Err(UnrollError::NotALoop);
    };
    let LoopKind::For {
        index,
        start,
        end,
        step,
    } = loop_data.kind
    else {
        return Err(UnrollError::NonConstantBound);
    };
    let Some(end_const) = end.as_const() else {
        return Err(UnrollError::NonConstantBound);
    };
    let iterations = trip_count(start, end_const, step);
    if iterations > MAX_UNROLL_ITERATIONS {
        return Err(UnrollError::TooManyIterations(iterations));
    }

    // Locate the loop node in its parent region.
    let parent = function
        .regions
        .iter()
        .find_map(|(region_id, region)| {
            region
                .nodes
                .iter()
                .position(|&n| n == loop_node)
                .map(|idx| (region_id, idx))
        })
        .ok_or(UnrollError::NotALoop)?;
    let (parent_region, position) = parent;

    let index_ty = function.vars[index].ty;
    let mut replacement: Vec<NodeId> = Vec::new();
    for k in 0..iterations {
        let value = (start.value() as i64 + k as i64 * step) as u64;
        // Fresh index variable for this iteration, with an explicit constant
        // initialisation so the intermediate state matches Figure 13.
        let iter_index = function.add_var(Var::register(
            format!("{}_{}", function.vars[index].name, k + 1),
            index_ty,
        ));
        let init_block =
            function.add_block(format!("unroll_{}_{}", function.vars[index].name, k + 1));
        function.push_op(
            init_block,
            OpKind::Copy,
            Some(iter_index),
            vec![Value::Const(Constant::new(value, index_ty))],
        );
        replacement.push(function.add_block_node(init_block));

        let mut var_map = BTreeMap::new();
        var_map.insert(index, iter_index);
        let body_clone = function.clone_region_mapped(loop_data.body, &var_map);
        let cloned_nodes = function.regions[body_clone].nodes.clone();
        replacement.extend(cloned_nodes);
    }

    let nodes = &mut function.regions[parent_region].nodes;
    nodes.remove(position);
    let mut rest = nodes.split_off(position);
    nodes.extend(replacement);
    nodes.append(&mut rest);

    report.add(iterations as usize);
    report.note(format!(
        "unrolled loop over `{}` into {iterations} iteration(s)",
        function.vars[index].name
    ));
    // Everything the unroll created or rewrote lives under the loop's parent
    // region; analyses over the rest of the function remain valid.
    report.set_invalidation(Invalidation::Region(parent_region));
    Ok(report)
}

/// Returns every loop node currently reachable from the function body, in
/// pre-order.
pub fn reachable_loops(function: &Function) -> Vec<NodeId> {
    fn walk(function: &Function, region: RegionId, out: &mut Vec<NodeId>) {
        for &node in &function.regions[region].nodes {
            match &function.nodes[node] {
                HtgNode::Block(_) => {}
                HtgNode::If(i) => {
                    walk(function, i.then_region, out);
                    walk(function, i.else_region, out);
                }
                HtgNode::Loop(l) => {
                    out.push(node);
                    walk(function, l.body, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(function, function.body, &mut out);
    out
}

/// Fully unrolls every `for` loop with constant bounds, repeatedly, until no
/// such loop remains (unrolling an outer loop may expose copies of inner
/// loops). Loops that cannot be unrolled are skipped and noted.
pub fn unroll_all_loops(function: &mut Function) -> Report {
    let mut report = Report::new("loop-unroll-all", &function.name);
    let mut invalidation = Invalidation::None;
    for _round in 0..64 {
        let loops = reachable_loops(function);
        let mut progressed = false;
        for node in loops {
            // The node may already have been detached by an enclosing unroll.
            if !reachable_loops(function).contains(&node) {
                continue;
            }
            match unroll_loop_fully(function, node) {
                Ok(r) => {
                    report.add(r.changes);
                    for n in r.notes {
                        report.note(n);
                    }
                    invalidation = merge_invalidation(invalidation, r.invalidation);
                    progressed = true;
                }
                Err(e) => report.note(format!("skipped loop: {e}")),
            }
        }
        if !progressed {
            break;
        }
    }
    report.set_invalidation(invalidation);
    report
}

/// Combines the invalidations of several sub-passes: distinct regions widen
/// to a whole-structure invalidation.
pub(crate) fn merge_invalidation(a: Invalidation, b: Invalidation) -> Invalidation {
    match (a, b) {
        (Invalidation::None, other) | (other, Invalidation::None) => other,
        (Invalidation::Region(ra), Invalidation::Region(rb)) if ra == rb => {
            Invalidation::Region(ra)
        }
        _ => Invalidation::Structure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::const_prop::constant_propagation;
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, Program, Type};

    /// The synthetic example of Figure 2: a loop computing r1(i) = Op1(i) and
    /// r2(i) = Op2(i, r1(i)).
    fn figure2_function(n: u64) -> Function {
        let mut b = FunctionBuilder::new("fig2");
        let input = b.param_array("in", Type::Bits(32), (n + 1) as u32);
        let r1 = b.array("r1", Type::Bits(32), (n + 1) as u32);
        let r2 = b.output_array("r2", Type::Bits(32), (n + 1) as u32);
        let i = b.var("i", Type::Bits(32));
        let t = b.var("t", Type::Bits(32));
        let u = b.var("u", Type::Bits(32));
        let v = b.var("v", Type::Bits(32));
        b.for_begin(i, 0, Value::word(n - 1), 1);
        // r1[i] = in[i] + i       (Op1)
        b.array_read(t, input, Value::Var(i));
        b.assign(OpKind::Add, u, vec![Value::Var(t), Value::Var(i)]);
        b.array_write(r1, Value::Var(i), Value::Var(u));
        // r2[i] = r1[i] * 2       (Op2)
        b.array_read(v, r1, Value::Var(i));
        let d = b.compute(
            OpKind::Mul,
            Type::Bits(32),
            vec![Value::Var(v), Value::word(2)],
        );
        b.array_write(r2, Value::Var(i), Value::Var(d));
        b.loop_end();
        b.finish()
    }

    #[test]
    fn full_unroll_preserves_semantics() {
        let n = 8u64;
        let original = figure2_function(n);
        let mut unrolled = original.clone();
        let report = unroll_all_loops(&mut unrolled);
        assert!(report.changes as u64 >= n);
        assert_eq!(unrolled.loop_count(), 0, "no loops remain");
        verify(&unrolled).expect("unrolled function is well formed");

        let mut p_before = Program::new();
        p_before.add_function(original);
        let mut p_after = Program::new();
        p_after.add_function(unrolled);
        let data: Vec<u64> = (0..=n).map(|x| x * 3 + 1).collect();
        let env = Env::new().with_array("in", data);
        let before = Interpreter::new(&p_before).run("fig2", &env).unwrap();
        let after = Interpreter::new(&p_after).run("fig2", &env).unwrap();
        assert_eq!(before.array("r2"), after.array("r2"));
    }

    #[test]
    fn unroll_then_const_prop_eliminates_index_uses() {
        let mut f = figure2_function(4);
        unroll_all_loops(&mut f);
        constant_propagation(&mut f);
        // After constant propagation no live op should read any of the
        // per-iteration index variables (they are only written, and DCE would
        // remove them next).
        for op in f.live_ops() {
            for used in f.ops[op].uses() {
                let name = &f.vars[used].name;
                assert!(
                    !name.starts_with("i_"),
                    "index variable `{name}` still read"
                );
            }
        }
    }

    #[test]
    fn op_count_scales_with_trip_count() {
        let original = figure2_function(4);
        let per_iteration = {
            // ops inside the loop body
            original.live_op_count()
        };
        let mut unrolled = original.clone();
        unroll_all_loops(&mut unrolled);
        // Each iteration adds the body ops plus one index initialisation.
        assert_eq!(unrolled.live_op_count(), 4 * (per_iteration + 1));
    }

    #[test]
    fn non_constant_bound_is_rejected() {
        let mut b = FunctionBuilder::new("f");
        let n = b.param("n", Type::Bits(32));
        let i = b.var("i", Type::Bits(32));
        let acc = b.var("acc", Type::Bits(32));
        b.for_begin(i, 0, Value::Var(n), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        let mut f = b.finish();
        let loops = reachable_loops(&f);
        let err = unroll_loop_fully(&mut f, loops[0]).unwrap_err();
        assert_eq!(err, UnrollError::NonConstantBound);
        // unroll_all_loops records the skip but does not fail.
        let report = unroll_all_loops(&mut f);
        assert!(report.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn excessive_trip_count_is_rejected() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(32));
        let acc = b.var("acc", Type::Bits(32));
        b.for_begin(i, 0, Value::word(100_000), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        let mut f = b.finish();
        let loops = reachable_loops(&f);
        let err = unroll_loop_fully(&mut f, loops[0]).unwrap_err();
        assert!(matches!(err, UnrollError::TooManyIterations(_)));
    }

    #[test]
    fn zero_trip_loop_unrolls_to_nothing() {
        let mut b = FunctionBuilder::new("f");
        let i = b.var("i", Type::Bits(32));
        let acc = b.output("acc", Type::Bits(32));
        b.copy(acc, Value::word(7));
        b.for_begin(i, 5, Value::word(1), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
        b.loop_end();
        let mut f = b.finish();
        unroll_all_loops(&mut f);
        assert_eq!(f.loop_count(), 0);
        assert_eq!(f.live_op_count(), 1, "only the initial copy remains");
    }

    #[test]
    fn nested_loops_unroll_completely() {
        let mut b = FunctionBuilder::new("nested");
        let i = b.var("i", Type::Bits(32));
        let j = b.var("j", Type::Bits(32));
        let acc = b.output("acc", Type::Bits(32));
        b.copy(acc, Value::word(0));
        b.for_begin(i, 1, Value::word(3), 1);
        b.for_begin(j, 1, Value::word(2), 1);
        b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(j)]);
        b.loop_end();
        b.loop_end();
        let f0 = b.finish();
        let mut f = f0.clone();
        unroll_all_loops(&mut f);
        assert_eq!(f.loop_count(), 0);
        verify(&f).expect("well formed");
        let mut p0 = Program::new();
        p0.add_function(f0);
        let mut p1 = Program::new();
        p1.add_function(f);
        let a = Interpreter::new(&p0).run("nested", &Env::new()).unwrap();
        let b_ = Interpreter::new(&p1).run("nested", &Env::new()).unwrap();
        assert_eq!(a.scalar("acc"), b_.scalar("acc"));
        assert_eq!(a.scalar("acc"), Some(9));
    }

    #[test]
    fn trip_count_arithmetic() {
        let c = |v: u64| Constant::word(v);
        assert_eq!(trip_count(c(1), c(8), 1), 8);
        assert_eq!(trip_count(c(0), c(7), 2), 4);
        assert_eq!(trip_count(c(5), c(4), 1), 0);
        assert_eq!(trip_count(c(8), c(1), -1), 8);
        assert_eq!(trip_count(c(1), c(1), 1), 1);
        assert_eq!(trip_count(c(1), c(8), 0), 0);
    }
}
