//! Common subexpression elimination (block-local).
//!
//! After speculation the ILD's `CalculateLength` computes
//! `TempLength1 = lc1 + lc2 + lc3 + lc4`, `TempLength2 = lc1 + lc2 + lc3`
//! and `TempLength3 = lc1 + lc2` (Figure 11). When those sums are expanded
//! into two-operand additions the partial sums repeat; CSE shares them, which
//! directly reduces the number of adders the final single-cycle datapath
//! needs.

use std::collections::HashMap;

use spark_ir::{EditLog, Function, OpId, OpKind, Rewriter, Value, VarId};

use crate::fine::FineState;
use crate::report::{Invalidation, Report};

/// Eliminates repeated pure computations within each basic block.
///
/// Stand-alone entry point: builds fresh analyses and scans every block.
///
/// Two operations are merged when they have the same kind and operands, the
/// earlier one's destination has not been overwritten in between, and none of
/// the shared operands has been redefined in between. The later operation is
/// rewritten into a copy of the earlier destination (and left for dead code
/// elimination / copy propagation to clean up).
pub fn common_subexpression_elimination(function: &mut Function) -> Report {
    let mut state = FineState::new(function);
    let (report, _) = common_subexpression_elimination_seeded(function, &mut state, None);
    report
}

/// Block-local CSE over an incrementally maintained [`FineState`].
///
/// CSE is a per-block linear scan, so the worklist unit is the *block*:
/// with `seed = Some(ops)` only the blocks owning those operations are
/// rescanned (a block no pass touched cannot have grown a new repeated
/// expression), with `None` every block is scanned. Rewrites go through the
/// [`Rewriter`] so the shared def–use graph stays consistent.
pub fn common_subexpression_elimination_seeded(
    function: &mut Function,
    state: &mut FineState,
    seed: Option<&[OpId]>,
) -> (Report, EditLog) {
    let mut report = Report::new("cse", &function.name);
    report.set_invalidation(Invalidation::None);
    let FineState { graph, .. } = state;
    let mut rw = Rewriter::new(function, graph);

    // Blocks to scan, in body traversal order.
    let blocks = rw.function().blocks_in_region(rw.function().body);
    let blocks: Vec<_> = match seed {
        None => blocks,
        Some(ops) => {
            let mut dirty = vec![false; rw.function().blocks.len()];
            for &op in ops {
                if let Some(block) = rw.graph().block_of(op) {
                    dirty[block.index()] = true;
                }
            }
            blocks.into_iter().filter(|b| dirty[b.index()]).collect()
        }
    };

    for block in blocks {
        let ops: Vec<_> = rw.function().blocks[block].ops.clone();
        // Available expressions: key -> dest var of the defining op.
        let mut available: HashMap<String, VarId> = HashMap::new();
        for op_id in ops {
            if rw.function().ops[op_id].dead {
                continue;
            }
            let op = rw.function().ops[op_id].clone();
            // Invalidate expressions that used the variable this op defines.
            if let Some(defined) = op.def() {
                available.retain(|key, dest| {
                    *dest != defined && !key.contains(&format!("v{}", defined.raw()))
                });
            }
            let pure = !op.kind.has_side_effects()
                && !matches!(op.kind, OpKind::Copy | OpKind::ArrayRead { .. });
            if !pure || op.dest.is_none() {
                continue;
            }
            let key = expression_key(&op.kind, &op.args);
            if let Some(&prev_dest) = available.get(&key) {
                rw.rewrite_op(op_id, OpKind::Copy, vec![Value::Var(prev_dest)]);
                report.add(1);
            } else {
                available.insert(key, op.dest.unwrap());
            }
        }
    }

    let effects = rw.finish();
    state.debug_check(function);
    (report, effects)
}

fn expression_key(kind: &OpKind, args: &[Value]) -> String {
    let mut parts: Vec<String> = args
        .iter()
        .map(|a| match a {
            Value::Var(v) => format!("v{}", v.raw()),
            Value::Const(c) => format!("c{}", c.value()),
        })
        .collect();
    if kind.is_commutative() {
        parts.sort();
    }
    // The mnemonic alone is not a sound key for parameterized kinds:
    // `x[1:1]` and `x[0:0]` are both "slice(v0)" but extract different bits.
    let kind_key = match kind {
        OpKind::Slice { hi, lo } => format!("slice[{hi}:{lo}]"),
        other => other.to_string(),
    };
    format!("{kind_key}({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, Type};

    #[test]
    fn shares_repeated_partial_sums() {
        // t1 = a + b; t2 = a + b; out = t1 + t2
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let out = b.var("out", Type::Bits(8));
        b.assign(OpKind::Add, t1, vec![Value::Var(a), Value::Var(bb)]);
        b.assign(OpKind::Add, t2, vec![Value::Var(a), Value::Var(bb)]);
        b.assign(OpKind::Add, out, vec![Value::Var(t1), Value::Var(t2)]);
        let mut f = b.finish();
        let report = common_subexpression_elimination(&mut f);
        assert_eq!(report.changes, 1);
        let ops = f.live_ops();
        assert_eq!(f.ops[ops[1]].kind, OpKind::Copy);
        assert_eq!(f.ops[ops[1]].args[0], Value::Var(t1));
    }

    #[test]
    fn commutative_operands_match_in_any_order() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        b.assign(OpKind::Add, t1, vec![Value::Var(a), Value::Var(bb)]);
        b.assign(OpKind::Add, t2, vec![Value::Var(bb), Value::Var(a)]);
        let mut f = b.finish();
        let report = common_subexpression_elimination(&mut f);
        assert_eq!(report.changes, 1);
    }

    #[test]
    fn redefinition_blocks_reuse() {
        // t1 = a + b; a = 0; t2 = a + b  -- t2 must not reuse t1.
        let mut b = FunctionBuilder::new("f");
        let a = b.var("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        b.assign(OpKind::Add, t1, vec![Value::Var(a), Value::Var(bb)]);
        b.copy(a, Value::word(0));
        b.assign(OpKind::Add, t2, vec![Value::Var(a), Value::Var(bb)]);
        let mut f = b.finish();
        let report = common_subexpression_elimination(&mut f);
        assert!(report.is_noop());
    }

    #[test]
    fn slices_with_different_bounds_are_distinct() {
        // p = x[1:1] ^ x[0:0] — the two slices share their operand but
        // extract different bits; merging them folds the xor to zero.
        let mut b = FunctionBuilder::new("f");
        let x = b.param("x", Type::Bits(8));
        let t1 = b.var("t1", Type::Bool);
        let t2 = b.var("t2", Type::Bool);
        let t3 = b.var("t3", Type::Bool);
        b.assign(OpKind::Slice { hi: 1, lo: 1 }, t1, vec![Value::Var(x)]);
        b.assign(OpKind::Slice { hi: 0, lo: 0 }, t2, vec![Value::Var(x)]);
        b.assign(OpKind::Slice { hi: 1, lo: 1 }, t3, vec![Value::Var(x)]);
        let mut f = b.finish();
        let report = common_subexpression_elimination(&mut f);
        // Only the repeated [1:1] slice merges.
        assert_eq!(report.changes, 1);
        let ops = f.live_ops();
        assert_eq!(f.ops[ops[1]].kind, OpKind::Slice { hi: 0, lo: 0 });
        assert_eq!(f.ops[ops[2]].kind, OpKind::Copy);
        assert_eq!(f.ops[ops[2]].args[0], Value::Var(t1));
    }

    #[test]
    fn non_commutative_order_matters() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        b.assign(OpKind::Sub, t1, vec![Value::Var(a), Value::Var(bb)]);
        b.assign(OpKind::Sub, t2, vec![Value::Var(bb), Value::Var(a)]);
        let mut f = b.finish();
        let report = common_subexpression_elimination(&mut f);
        assert!(report.is_noop());
    }
}
