//! Function inlining.
//!
//! Inlining replaces a call with the body of the callee so that the callee's
//! operations can be optimized together with the caller's (Figure 12 of the
//! paper: `CalculateLength` is inlined into the ILD's byte loop before the
//! loop is unrolled).

use std::collections::BTreeMap;

use spark_ir::{
    BlockId, Function, HtgNode, LoopKind, NodeId, OpId, OpKind, PortDirection, Program, RegionId,
    StorageClass, Value, Var, VarId,
};

use crate::report::{Invalidation, Report};
use crate::unroll::merge_invalidation;

/// Inlines every call inside `caller_name`, repeatedly, until no calls remain
/// (calls exposed by inlining are inlined too). Direct or indirect recursion
/// is not supported: a call to the caller itself is left in place and noted
/// in the report.
///
/// Returns values of the callee are assumed to be in tail position (the
/// paper's `CalculateLength` has this shape): each `return v` becomes a copy
/// of `v` into the call's destination.
pub fn inline_calls(program: &mut Program, caller_name: &str) -> Report {
    let mut report = Report::new("inline", caller_name);
    let mut invalidation = Invalidation::None;
    for _round in 0..256 {
        let Some(caller) = program.function(caller_name) else {
            report.note(format!("function `{caller_name}` not found"));
            return report;
        };
        // Find the first live call op.
        let call = caller.live_ops().into_iter().find_map(|op_id| {
            if let OpKind::Call { callee } = &caller.ops[op_id].kind {
                Some((op_id, callee.clone()))
            } else {
                None
            }
        });
        let Some((call_op, callee_name)) = call else {
            break;
        };
        if callee_name == caller_name {
            report.note("recursive call left in place");
            break;
        }
        let Some(callee) = program.function(&callee_name).cloned() else {
            report.note(format!(
                "callee `{callee_name}` not found; call left in place"
            ));
            break;
        };
        let caller = program.function_mut(caller_name).expect("caller exists");
        let spliced_region = inline_one(caller, &callee, call_op);
        invalidation = merge_invalidation(invalidation, Invalidation::Region(spliced_region));
        report.add(1);
        report.note(format!("inlined call to `{callee_name}`"));
    }
    report.set_invalidation(invalidation);
    report
}

/// Inlines a single call operation. `call_op` must be a live `Call` op of
/// `caller` whose callee is `callee`. Returns the region the callee body was
/// spliced into (the analyses-invalidation scope of this inline).
fn inline_one(caller: &mut Function, callee: &Function, call_op: OpId) -> RegionId {
    let call = caller.ops[call_op].clone();
    let OpKind::Call {
        callee: callee_name,
    } = &call.kind
    else {
        panic!("inline_one requires a call operation");
    };

    // 1. Map every callee variable to a caller variable. Array parameters are
    //    aliased to the caller array passed as the argument; everything else
    //    gets a fresh internal variable.
    let mut var_map: BTreeMap<VarId, VarId> = BTreeMap::new();
    for (callee_var_id, callee_var) in callee.vars.iter() {
        if let Some(position) = callee.params.iter().position(|&p| p == callee_var_id) {
            if callee_var.storage.is_array() {
                let arg = call.args.get(position).copied().unwrap_or(Value::word(0));
                if let Some(array_var) = arg.as_var() {
                    var_map.insert(callee_var_id, array_var);
                    continue;
                }
            }
        }
        let mut new_var = Var {
            name: format!("{}_{}", callee_name, callee_var.name),
            ty: callee_var.ty,
            storage: callee_var.storage,
            direction: PortDirection::Internal,
        };
        // Arrays keep their storage; scalars keep register/wire class.
        if let StorageClass::Array { length } = callee_var.storage {
            new_var.storage = StorageClass::Array { length };
        }
        let new_id = caller.add_var(new_var);
        var_map.insert(callee_var_id, new_id);
    }

    // 2. A binding block copies scalar arguments into the mapped parameters.
    let bind_block = caller.add_block(format!("{}_args", callee_name));
    for (position, &param) in callee.params.iter().enumerate() {
        if callee.vars[param].storage.is_array() {
            continue; // aliased above
        }
        let arg = call.args.get(position).copied().unwrap_or(Value::word(0));
        let mapped = var_map[&param];
        caller.push_op(bind_block, OpKind::Copy, Some(mapped), vec![arg]);
    }
    let bind_node = caller.add_block_node(bind_block);

    // 3. Import the callee body into the caller, rewriting returns into
    //    copies to the call destination.
    let imported = import_region(caller, callee, callee.body, &var_map, call.dest);

    // 4. Splice at the call site: split the containing block around the call.
    let (region, node_index, block, op_index) =
        locate_call(caller, call_op).expect("call op must be attached to a block");
    let tail_ops: Vec<OpId> = caller.blocks[block].ops.split_off(op_index + 1);
    caller.blocks[block].remove(call_op);
    caller.ops[call_op].dead = true;

    let mut insert: Vec<NodeId> = vec![bind_node];
    insert.extend(caller.regions[imported].nodes.clone());
    if !tail_ops.is_empty() {
        let tail_block = caller.add_block(format!("{}_cont", caller.blocks[block].label));
        caller.blocks[tail_block].ops = tail_ops;
        insert.push(caller.add_block_node(tail_block));
    }
    let nodes = &mut caller.regions[region].nodes;
    let mut rest = nodes.split_off(node_index + 1);
    nodes.extend(insert);
    nodes.append(&mut rest);
    region
}

/// Finds `(region, node index, block, op index)` of a live op.
fn locate_call(function: &Function, op: OpId) -> Option<(RegionId, usize, BlockId, usize)> {
    for (region_id, region) in function.regions.iter() {
        for (node_index, &node) in region.nodes.iter().enumerate() {
            if let HtgNode::Block(block) = function.nodes[node] {
                if let Some(op_index) = function.blocks[block].ops.iter().position(|&o| o == op) {
                    return Some((region_id, node_index, block, op_index));
                }
            }
        }
    }
    None
}

/// Recursively copies a callee region into the caller, applying `var_map` and
/// rewriting `return v` into `ret_dest = v`.
fn import_region(
    caller: &mut Function,
    callee: &Function,
    region: RegionId,
    var_map: &BTreeMap<VarId, VarId>,
    ret_dest: Option<VarId>,
) -> RegionId {
    let map_var = |v: VarId| *var_map.get(&v).unwrap_or(&v);
    let map_val = |v: Value| match v {
        Value::Var(var) => Value::Var(map_var(var)),
        c @ Value::Const(_) => c,
    };
    let new_region = caller.add_region();
    for &node in &callee.regions[region].nodes {
        let new_node = match &callee.nodes[node] {
            HtgNode::Block(b) => {
                let label = format!("inl_{}", callee.blocks[*b].label);
                let new_block = caller.add_block(label);
                for &op_id in &callee.blocks[*b].ops {
                    let op = &callee.ops[op_id];
                    if op.dead {
                        continue;
                    }
                    let (kind, dest, args): (OpKind, Option<VarId>, Vec<Value>) = match &op.kind {
                        OpKind::Return => {
                            // Tail-position return: assign the result.
                            match ret_dest {
                                Some(d) => (OpKind::Copy, Some(d), vec![map_val(op.args[0])]),
                                None => continue,
                            }
                        }
                        OpKind::ArrayRead { array } => (
                            OpKind::ArrayRead {
                                array: map_var(*array),
                            },
                            op.dest.map(map_var),
                            op.args.iter().map(|&a| map_val(a)).collect(),
                        ),
                        OpKind::ArrayWrite { array } => (
                            OpKind::ArrayWrite {
                                array: map_var(*array),
                            },
                            None,
                            op.args.iter().map(|&a| map_val(a)).collect(),
                        ),
                        other => (
                            other.clone(),
                            op.dest.map(map_var),
                            op.args.iter().map(|&a| map_val(a)).collect(),
                        ),
                    };
                    let new_op = caller.push_op(new_block, kind, dest, args);
                    caller.ops[new_op].speculative = op.speculative;
                }
                caller.add_block_node(new_block)
            }
            HtgNode::If(i) => {
                let cond = map_val(i.cond);
                let then_region = import_region(caller, callee, i.then_region, var_map, ret_dest);
                let else_region = import_region(caller, callee, i.else_region, var_map, ret_dest);
                caller.add_if_node(cond, then_region, else_region)
            }
            HtgNode::Loop(l) => {
                let kind = match &l.kind {
                    LoopKind::For {
                        index,
                        start,
                        end,
                        step,
                    } => LoopKind::For {
                        index: map_var(*index),
                        start: *start,
                        end: map_val(*end),
                        step: *step,
                    },
                    LoopKind::While { cond } => LoopKind::While {
                        cond: map_val(*cond),
                    },
                };
                let body = import_region(caller, callee, l.body, var_map, ret_dest);
                caller.add_loop_node(kind, body, l.trip_bound)
            }
        };
        caller.region_push(new_region, new_node);
    }
    new_region
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{verify, Env, FunctionBuilder, Interpreter, Type};

    /// main(a) { r = addone(a); s = addone(r); return s }
    /// addone(x) { if (x > 10) { y = x + 2 } else { y = x + 1 } return y }
    fn call_program() -> Program {
        let mut cb = FunctionBuilder::new("addone");
        let x = cb.param("x", Type::Bits(8));
        let y = cb.var("y", Type::Bits(8));
        let gt = cb.compute(OpKind::Gt, Type::Bool, vec![Value::Var(x), Value::word(10)]);
        cb.if_begin(Value::Var(gt));
        cb.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(2)]);
        cb.else_begin();
        cb.assign(OpKind::Add, y, vec![Value::Var(x), Value::word(1)]);
        cb.if_end();
        cb.ret(Value::Var(y));
        cb.returns(Type::Bits(8));

        let mut mb = FunctionBuilder::new("main");
        let a = mb.param("a", Type::Bits(8));
        let r = mb.var("r", Type::Bits(8));
        let s = mb.var("s", Type::Bits(8));
        mb.call(Some(r), "addone", vec![Value::Var(a)]);
        mb.call(Some(s), "addone", vec![Value::Var(r)]);
        mb.ret(Value::Var(s));

        let mut p = Program::new();
        p.add_function(mb.finish());
        p.add_function(cb.finish());
        p
    }

    #[test]
    fn inlining_preserves_semantics() {
        let original = call_program();
        let mut inlined = original.clone();
        let report = inline_calls(&mut inlined, "main");
        assert_eq!(report.changes, 2, "both calls inlined");

        let main = inlined.function("main").unwrap();
        verify(main).expect("inlined function is well formed");
        assert!(
            !main
                .live_ops()
                .iter()
                .any(|&op| matches!(main.ops[op].kind, OpKind::Call { .. })),
            "no calls remain"
        );

        for a in [0u64, 5, 11, 200, 255] {
            let env = Env::new().with_scalar("a", a);
            let before = Interpreter::new(&original).run("main", &env).unwrap();
            let after = Interpreter::new(&inlined).run("main", &env).unwrap();
            assert_eq!(before.return_value, after.return_value, "input a={a}");
        }
    }

    #[test]
    fn inlining_aliases_array_parameters() {
        // callee(buf, i) { v = buf[i]; return v }
        let mut cb = FunctionBuilder::new("peek");
        let buf = cb.param_array("buf", Type::Bits(8), 4);
        let i = cb.param("i", Type::Bits(32));
        let v = cb.var("v", Type::Bits(8));
        cb.array_read(v, buf, Value::Var(i));
        cb.ret(Value::Var(v));

        let mut mb = FunctionBuilder::new("main");
        let data = mb.param_array("data", Type::Bits(8), 4);
        let r = mb.var("r", Type::Bits(8));
        mb.call(Some(r), "peek", vec![Value::Var(data), Value::word(2)]);
        mb.ret(Value::Var(r));

        let mut p = Program::new();
        p.add_function(mb.finish());
        p.add_function(cb.finish());

        let original = p.clone();
        inline_calls(&mut p, "main");
        let env = Env::new().with_array("data", vec![3, 1, 4, 1]);
        let before = Interpreter::new(&original).run("main", &env).unwrap();
        let after = Interpreter::new(&p).run("main", &env).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.return_value, Some(4));
    }

    #[test]
    fn recursion_is_left_alone() {
        let mut rb = FunctionBuilder::new("rec");
        let x = rb.param("x", Type::Bits(8));
        let r = rb.var("r", Type::Bits(8));
        rb.call(Some(r), "rec", vec![Value::Var(x)]);
        rb.ret(Value::Var(r));
        let mut p = Program::new();
        p.add_function(rb.finish());
        let report = inline_calls(&mut p, "rec");
        assert!(report.is_noop());
        assert!(report.notes.iter().any(|n| n.contains("recursive")));
    }

    #[test]
    fn missing_callee_is_reported() {
        let mut mb = FunctionBuilder::new("main");
        let r = mb.var("r", Type::Bits(8));
        mb.call(Some(r), "ghost", vec![]);
        let mut p = Program::new();
        p.add_function(mb.finish());
        let report = inline_calls(&mut p, "main");
        assert!(report.is_noop());
        assert!(report.notes.iter().any(|n| n.contains("ghost")));
    }

    #[test]
    fn call_in_loop_body_is_inlined_in_place() {
        // main: for i in 1..=3 { acc = acc + addone(i) }
        let mut cb = FunctionBuilder::new("addone");
        let x = cb.param("x", Type::Bits(32));
        let y = cb.compute(
            OpKind::Add,
            Type::Bits(32),
            vec![Value::Var(x), Value::word(1)],
        );
        cb.ret(Value::Var(y));

        let mut mb = FunctionBuilder::new("main");
        let i = mb.var("i", Type::Bits(32));
        let acc = mb.var("acc", Type::Bits(32));
        let t = mb.var("t", Type::Bits(32));
        mb.copy(acc, Value::word(0));
        mb.for_begin(i, 1, Value::word(3), 1);
        mb.call(Some(t), "addone", vec![Value::Var(i)]);
        mb.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(t)]);
        mb.loop_end();
        mb.ret(Value::Var(acc));

        let mut p = Program::new();
        p.add_function(mb.finish());
        p.add_function(cb.finish());
        let original = p.clone();
        inline_calls(&mut p, "main");
        let before = Interpreter::new(&original)
            .run("main", &Env::new())
            .unwrap();
        let after = Interpreter::new(&p).run("main", &Env::new()).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.return_value, Some(2 + 3 + 4));
    }
}
