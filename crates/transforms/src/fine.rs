//! Shared analysis state for the worklist-driven fine-grain passes.
//!
//! Constant propagation, copy propagation, CSE and dead code elimination all
//! operate over the same two whole-function analyses: the incrementally
//! maintained [`DefUseGraph`] and the structural [`Positions`]. [`FineState`]
//! bundles them so the `spark-core` pass manager can build them once per
//! fine-grain phase and thread them through every pass, and so a wrapper
//! entry point (`constant_propagation(&mut Function)` and friends) can build
//! a fresh state for stand-alone use.
//!
//! Positions survive the whole phase because the fine passes only rewrite
//! operations in place or erase them — they never move an operation between
//! blocks, and pruning emptied structure does not change the region chain of
//! any surviving operation. The graph survives because every mutation goes
//! through the [`Rewriter`](spark_ir::Rewriter); in debug builds each pass
//! re-checks the graph against a from-scratch rebuild before returning.

use spark_ir::{DefUseGraph, Function, OpId};

use crate::position::Positions;

/// The analyses shared by the fine-grain worklist passes.
#[derive(Clone, Debug)]
pub struct FineState {
    /// Incrementally maintained def–use chains and op→block ownership.
    pub graph: DefUseGraph,
    /// Structural positions and the dominance test.
    pub positions: Positions,
}

impl FineState {
    /// Builds both analyses from scratch for `function`.
    pub fn new(function: &Function) -> Self {
        FineState {
            graph: DefUseGraph::compute(function),
            positions: Positions::compute(function),
        }
    }

    /// Debug-mode consistency check: the incrementally maintained graph must
    /// equal a from-scratch rebuild. Compiled to nothing in release builds.
    pub fn debug_check(&self, function: &Function) {
        if cfg!(debug_assertions) {
            self.graph.assert_consistent(function);
        }
    }
}

/// A FIFO worklist of operations with O(1) membership dedup.
///
/// Processing order is deterministic (seed order, then discovery order),
/// which keeps pass behaviour reproducible run over run.
#[derive(Debug, Default)]
pub(crate) struct OpQueue {
    queue: std::collections::VecDeque<OpId>,
    queued: Vec<bool>,
}

impl OpQueue {
    pub(crate) fn push(&mut self, op: OpId) {
        let index = op.index();
        if index >= self.queued.len() {
            self.queued.resize(index + 1, false);
        }
        if !self.queued[index] {
            self.queued[index] = true;
            self.queue.push_back(op);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<OpId> {
        let op = self.queue.pop_front()?;
        self.queued[op.index()] = false;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};

    #[test]
    fn op_queue_dedups_until_popped() {
        let mut q = OpQueue::default();
        let a = OpId::from_raw(3);
        let b = OpId::from_raw(1);
        q.push(a);
        q.push(b);
        q.push(a);
        assert_eq!(q.pop(), Some(a));
        q.push(a); // re-queuable once popped
        assert_eq!(q.pop(), Some(b));
        assert_eq!(q.pop(), Some(a));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fine_state_builds_consistent_analyses() {
        let mut b = FunctionBuilder::new("f");
        let a = b.param("a", Type::Bits(8));
        let x = b.var("x", Type::Bits(8));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        let f = b.finish();
        let state = FineState::new(&f);
        state.debug_check(&f);
        assert_eq!(state.graph.uses_of(a).len(), 1);
        assert!(state
            .positions
            .order_of(state.graph.defs_of(x)[0])
            .is_some());
    }
}
