//! # spark-core — the coordinated transformation pipeline
//!
//! The primary contribution of *"Coordinated Transformations for High-Level
//! Synthesis of High Performance Microprocessor Blocks"* (Gupta et al.,
//! DAC 2002) is not any single optimisation but the coordination of
//! source-level, coarse-grain and fine-grain transformations with a
//! chaining-aware scheduler so that a natural behavioral description of a
//! microprocessor functional block becomes a maximally parallel, few-cycle
//! (typically single-cycle) architecture.
//!
//! This crate provides that coordination: [`synthesize`] runs the whole flow
//! under [`FlowOptions`] (the microprocessor-block recipe or the classical
//! ASIC baseline), returning a [`SynthesisResult`] with the transformed
//! design, its schedule, binding, datapath report, generated VHDL and a
//! per-stage log mirroring the paper's Figure 10 → Figure 15 walk-through.
//! Design-space exploration helpers ([`sweep_clock_period`],
//! [`ablation_study`]) cover the "exploration of several alternative designs"
//! use-case of Section 4.
//!
//! # Examples
//!
//! Synthesize the instruction length decoder into a single cycle and check
//! it against the golden software model:
//!
//! ```
//! use spark_core::{synthesize, FlowOptions};
//! use spark_ild::{buffer_env, build_ild_program, decode_marks, random_buffer, ILD_FUNCTION};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 8;
//! let program = build_ild_program(n as u32);
//! let result = synthesize(&program, ILD_FUNCTION, &FlowOptions::microprocessor_block(200.0))?;
//! assert!(result.is_single_cycle());
//!
//! let buffer = random_buffer(n, 7);
//! let rtl = result.simulate(&buffer_env(&buffer))?;
//! let golden = decode_marks(&buffer, n);
//! for i in 1..=n {
//!     assert_eq!(rtl.array("Mark").unwrap()[i] != 0, golden[i]);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dse;
mod par;
mod pipeline;

pub use dse::{
    ablation_study, explore_configurations, format_table, sweep_clock_period, DesignPoint,
    Exploration, TransformKey,
};
pub use par::par_map;
pub use pipeline::{
    synthesize, synthesize_source, synthesize_transformed, synthesize_transformed_timed,
    synthesize_with_breakdown, transform_program, transform_run_count, FlowMode, FlowOptions,
    PassManager, PhaseBreakdown, SourceSynthesisError, StageSnapshot, SynthesisError,
    SynthesisResult, TransformedProgram,
};
