//! The coordinated synthesis pipeline — the paper's primary contribution.
//!
//! "A judicious balance of a number of these techniques driven by well
//! considered heuristics is likely to yield HLS results that compare in
//! quality to the manually designed functional blocks" (Section 1). The
//! [`synthesize`] function coordinates the whole tool-box in the order the
//! paper walks through for the ILD (Section 6): source-level rewriting,
//! inlining, speculation, full loop unrolling, constant and copy propagation,
//! CSE, dead-code elimination, chaining-aware scheduling, wire-variable
//! insertion, binding and RTL generation — recording the effect of every
//! stage so the figure-by-figure evolution of the design can be reproduced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use spark_bind::{Binding, LifetimeAnalysis};
use spark_ir::{Env, Function, FunctionStats, OpId, Program, RegionId};
use spark_rtl::{DatapathReport, RtlOutcome, RtlSimError, RtlSimulator, VhdlEmitter};
use spark_sched::{
    insert_wire_variables_logged, schedule_in, validate_chaining, ChainingReport, Constraints,
    Controller, DependenceGraph, ResourceLibrary, SchedContext, SchedError, Schedule, WireReport,
};
use spark_transforms as xf;

/// Which of the two synthesis scenarios of Figure 1 the flow targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// High-performance microprocessor block: unlimited resources, full
    /// chaining across conditional boundaries, aggressive transformations.
    MicroprocessorBlock,
    /// Classical ASIC-style HLS baseline: constrained resources, chaining
    /// only within basic blocks, no speculative code motions, no unrolling.
    AsicBaseline,
}

/// Options controlling the coordinated flow.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Target clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Overall scenario.
    pub mode: FlowMode,
    /// Rewrite natural `while(1)` cursor loops into bounded `for` loops
    /// (Figure 16 → Figure 10).
    pub while_to_for: bool,
    /// Inline calls (Figure 12).
    pub inline: bool,
    /// Speculate pure operations out of conditionals (Figure 11).
    pub speculate: bool,
    /// Fully unroll loops (Figure 13).
    pub unroll: bool,
    /// Run constant propagation (Figure 14).
    pub constant_propagation: bool,
    /// Run common-subexpression elimination on the flattened code.
    pub cse: bool,
    /// Run the complementary code motions (reverse speculation and early
    /// condition execution) before scheduling.
    pub secondary_code_motions: bool,
    /// Run [`spark_ir::verify`] on the top-level function after every
    /// transformation pass, so malformed IR from any producer (builder,
    /// frontend or a buggy pass) fails fast with the pass named instead of
    /// panicking somewhere downstream. Defaults to on in debug builds.
    pub verify_ir: bool,
}

impl FlowOptions {
    /// The coordinated microprocessor-block recipe of the paper.
    pub fn microprocessor_block(clock_period_ns: f64) -> Self {
        FlowOptions {
            clock_period_ns,
            mode: FlowMode::MicroprocessorBlock,
            while_to_for: true,
            inline: true,
            speculate: true,
            unroll: true,
            constant_propagation: true,
            cse: true,
            secondary_code_motions: false,
            verify_ir: cfg!(debug_assertions),
        }
    }

    /// The classical baseline: inlining only (classical HLS also flattens
    /// calls), no speculation, no unrolling, constrained resources.
    pub fn asic_baseline(clock_period_ns: f64) -> Self {
        FlowOptions {
            clock_period_ns,
            mode: FlowMode::AsicBaseline,
            while_to_for: true,
            inline: true,
            speculate: false,
            unroll: true,
            constant_propagation: true,
            cse: false,
            secondary_code_motions: false,
            verify_ir: cfg!(debug_assertions),
        }
    }

    fn constraints(&self) -> Constraints {
        match self.mode {
            FlowMode::MicroprocessorBlock => {
                Constraints::microprocessor_block(self.clock_period_ns)
            }
            FlowMode::AsicBaseline => Constraints::asic_baseline(self.clock_period_ns),
        }
    }
}

/// Why synthesis failed.
#[derive(Debug)]
pub enum SynthesisError {
    /// The requested top-level function does not exist in the program.
    UnknownFunction(String),
    /// Scheduling failed.
    Scheduling(SchedError),
    /// A transformation pass left the IR structurally malformed
    /// (reported only when [`FlowOptions::verify_ir`] is set).
    MalformedIr {
        /// Name of the pass after which verification failed (`"input"` when
        /// the program was malformed before any pass ran).
        pass: String,
        /// The structural violations found.
        errors: Vec<spark_ir::VerifyError>,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            SynthesisError::Scheduling(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::MalformedIr { pass, errors } => {
                write!(
                    f,
                    "IR malformed after pass `{pass}`: {}",
                    errors
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<SchedError> for SynthesisError {
    fn from(e: SchedError) -> Self {
        SynthesisError::Scheduling(e)
    }
}

/// Statistics captured after one named stage of the flow — the data behind
/// the paper's figure-by-figure walk-through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage name (e.g. `"speculation"`).
    pub stage: String,
    /// Structural statistics after the stage.
    pub stats: FunctionStats,
}

/// The complete result of synthesizing one block.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    /// The transformed, scheduled top-level function.
    pub function: Function,
    /// Dependence graph of the final function (guards included).
    pub graph: DependenceGraph,
    /// The schedule.
    pub schedule: Schedule,
    /// The FSM controller.
    pub controller: Controller,
    /// Register / functional-unit binding.
    pub binding: Binding,
    /// Structural and area/critical-path summary.
    pub report: DatapathReport,
    /// Per-pass change log.
    pub pass_log: Vec<xf::Report>,
    /// Per-stage structural snapshots (Figures 10–15 evolution).
    pub stages: Vec<StageSnapshot>,
    /// Wire-variable insertion summary (Section 3.1.2).
    pub wire_report: WireReport,
    /// Chaining-trail validation summary (Section 3.1.1).
    pub chaining: ChainingReport,
}

impl SynthesisResult {
    /// Emits the register-transfer-level VHDL of the design.
    pub fn vhdl(&self) -> String {
        VhdlEmitter::new(
            &self.function,
            &self.graph,
            &self.schedule,
            &self.controller,
        )
        .emit()
    }

    /// Simulates the generated design (RTL semantics) on one input set.
    ///
    /// # Errors
    /// Returns [`RtlSimError`] if the datapath hits an out-of-bounds access.
    pub fn simulate(&self, env: &Env) -> Result<RtlOutcome, RtlSimError> {
        RtlSimulator::new(&self.function, &self.graph, &self.schedule).run(env)
    }

    /// Simulates the generated design on a whole workload of input sets,
    /// reusing the simulator's value tables across buffers — the batch entry
    /// point for corpus checks and workload sweeps.
    ///
    /// # Errors
    /// Returns [`RtlSimError`] on the first failing input set.
    pub fn simulate_batch(&self, envs: &[Env]) -> Result<Vec<RtlOutcome>, RtlSimError> {
        RtlSimulator::new(&self.function, &self.graph, &self.schedule).run_batch(envs)
    }

    /// True when the design fits a single cycle — the architecture the
    /// paper's methodology targets (Figure 15).
    pub fn is_single_cycle(&self) -> bool {
        self.controller.is_single_cycle()
    }
}

/// A program after the source-level, coarse-grain and fine-grain
/// transformations, ready for scheduling.
///
/// Splitting the flow here lets clock-period sweeps run the (clock-agnostic)
/// transformation pipeline once and then schedule each period point against
/// the same transformed program — see
/// [`sweep_clock_period`](crate::sweep_clock_period).
#[derive(Debug)]
pub struct TransformedProgram {
    /// The transformed program.
    pub program: Program,
    /// Name of the top-level function the transformations targeted.
    pub top: String,
    /// Per-pass change log accumulated during transformation.
    pub pass_log: Vec<xf::Report>,
    /// Per-stage structural snapshots (Figures 10–15 evolution).
    pub stages: Vec<StageSnapshot>,
    /// Lazily built scheduling context (pre-wire dependence graph, interned
    /// guard table, op → block map), shared by every clock-sweep / DSE point
    /// scheduled against this program. See
    /// [`TransformedProgram::sched_context`].
    sched: OnceLock<Result<SchedContext, SchedError>>,
}

impl TransformedProgram {
    /// The clock-agnostic scheduling context of the transformed top-level
    /// function, built on first use and shared by every subsequent
    /// [`synthesize_transformed`] call on this program — a clock sweep builds
    /// the dependence graph **once**, not once per period point.
    ///
    /// # Errors
    /// Returns [`SchedError`] when the transformed function still contains
    /// loops or calls (e.g. unrolling was disabled on a looping program).
    pub fn sched_context(&self) -> Result<&SchedContext, SchedError> {
        let result = self.sched.get_or_init(|| {
            SchedContext::build(self.program.function(&self.top).expect("top exists"))
        });
        match result {
            Ok(context) => Ok(context),
            Err(error) => Err(error.clone()),
        }
    }
}

impl Clone for TransformedProgram {
    fn clone(&self) -> Self {
        // Carry an already-built context over to the clone instead of
        // forcing a rebuild there.
        let sched = OnceLock::new();
        if let Some(built) = self.sched.get() {
            let _ = sched.set(built.clone());
        }
        TransformedProgram {
            program: self.program.clone(),
            top: self.top.clone(),
            pass_log: self.pass_log.clone(),
            stages: self.stages.clone(),
            sched,
        }
    }
}

/// Global count of [`transform_program`] executions, for cache-hit
/// assertions in tests and for the DSE memoization counter.
static TRANSFORM_RUNS: AtomicUsize = AtomicUsize::new(0);

/// Number of times the transformation pipeline has executed in this process.
///
/// The design-space helpers memoize transformed programs on their transform
/// flag set; this counter is how tests assert that sharing actually happens
/// (see [`explore_configurations`](crate::explore_configurations)).
pub fn transform_run_count() -> usize {
    TRANSFORM_RUNS.load(Ordering::Relaxed)
}

/// The fine-grain worklist passes the pass manager schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FinePass {
    ConstProp = 0,
    CopyProp = 1,
    Cse = 2,
    Dce = 3,
}

const FINE_PASS_COUNT: usize = 4;

/// Pending worklist seed for one fine-grain pass.
#[derive(Clone, Debug)]
enum Seed {
    /// The pass has not run since the analyses were (re)built: examine every
    /// live operation / block.
    Everything,
    /// Operations touched by other passes since this pass last ran.
    Ops(Vec<OpId>),
}

/// Drives the transformation half of the coordinated flow: the coarse-grain
/// passes in the paper's order, then the fine-grain clean-up as a sequence
/// of worklist passes over shared, incrementally-maintained analyses.
///
/// The manager owns the cached [`xf::FineState`] (def–use graph and
/// structural positions), invalidates it from each pass's
/// [`Invalidation`](xf::Invalidation) report instead of rebuilding
/// unconditionally, and seeds every fine-grain pass with the operations the
/// previous passes touched — so the second constant-propagation /
/// copy-propagation / DCE round examines only what actually changed instead
/// of rescanning the whole function.
pub struct PassManager<'a> {
    options: &'a FlowOptions,
    top: String,
    working: Program,
    pass_log: Vec<xf::Report>,
    stages: Vec<StageSnapshot>,
    /// Cached fine-grain analyses; `None` until built or after a structural
    /// invalidation.
    analyses: Option<xf::FineState>,
    /// Per fine pass: what to examine on its next run.
    seeds: [Seed; FINE_PASS_COUNT],
    /// Regions invalidated by coarse passes since the analyses were built;
    /// folded into `Ops` seeds when the analyses are next rebuilt.
    dirty_regions: Vec<RegionId>,
}

impl<'a> PassManager<'a> {
    /// Clones `program` and prepares to transform function `top`.
    ///
    /// # Errors
    /// [`SynthesisError::UnknownFunction`] when `top` does not exist, and —
    /// with [`FlowOptions::verify_ir`] set — [`SynthesisError::MalformedIr`]
    /// (`pass: "input"`) when any input function is malformed.
    pub fn new(
        program: &Program,
        top: &str,
        options: &'a FlowOptions,
    ) -> Result<Self, SynthesisError> {
        let working = program.clone();
        if working.function(top).is_none() {
            return Err(SynthesisError::UnknownFunction(top.to_string()));
        }
        // Producers (builder-constructed workloads, the frontend, tests
        // poking the arenas directly) are checked before any pass touches
        // the program: every function is still present here, so all of them
        // are verified.
        if options.verify_ir {
            for function in &working.functions {
                spark_ir::verify(function).map_err(|errors| SynthesisError::MalformedIr {
                    pass: "input".to_string(),
                    errors,
                })?;
            }
        }
        let mut manager = PassManager {
            options,
            top: top.to_string(),
            working,
            pass_log: Vec::new(),
            stages: Vec::new(),
            analyses: None,
            seeds: std::array::from_fn(|_| Seed::Everything),
            dirty_regions: Vec::new(),
        };
        manager.snapshot("input");
        Ok(manager)
    }

    fn snapshot(&mut self, name: &str) {
        if let Some(f) = self.working.function(&self.top) {
            self.stages.push(StageSnapshot {
                stage: name.to_string(),
                stats: FunctionStats::of(f),
            });
        }
    }

    /// Appends a pass report to the log, applies its analysis invalidation,
    /// and — when [`FlowOptions::verify_ir`] is set — re-verifies the
    /// top-level function, so a pass that corrupts the IR fails here with
    /// its name attached instead of panicking downstream.
    fn record(&mut self, report: xf::Report) -> Result<(), SynthesisError> {
        match &report.invalidation {
            xf::Invalidation::None => {}
            xf::Invalidation::Region(region) => {
                // The cached graph cannot be partially rebuilt, but passes
                // that already consumed their full-function seed only need
                // re-examining under the invalidated region.
                self.analyses = None;
                self.dirty_regions.push(*region);
            }
            xf::Invalidation::Structure => {
                self.analyses = None;
                self.dirty_regions.clear();
                self.seeds = std::array::from_fn(|_| Seed::Everything);
            }
        }
        let pass = report.pass.clone();
        self.pass_log.push(report);
        if self.options.verify_ir {
            if let Some(function) = self.working.function(&self.top) {
                spark_ir::verify(function)
                    .map_err(|errors| SynthesisError::MalformedIr { pass, errors })?;
            }
        }
        Ok(())
    }

    /// Runs one coarse-grain pass over the working program.
    fn coarse(
        &mut self,
        run: impl FnOnce(&mut Program, &str) -> xf::Report,
    ) -> Result<(), SynthesisError> {
        let report = run(&mut self.working, &self.top);
        self.record(report)
    }

    /// Runs one fine-grain worklist pass, seeded by whatever the previous
    /// passes touched, and distributes what it touched to the other passes'
    /// seeds.
    fn fine(&mut self, which: FinePass) -> Result<(), SynthesisError> {
        // (Re)build the shared analyses if a coarse pass invalidated them,
        // folding region invalidations into the pending seeds.
        if self.analyses.is_none() {
            let function = self.working.function(&self.top).expect("top exists");
            if !self.dirty_regions.is_empty() {
                for seed in &mut self.seeds {
                    if let Seed::Ops(ops) = seed {
                        for &region in &self.dirty_regions {
                            ops.extend(function.ops_in_region(region));
                        }
                    }
                }
                self.dirty_regions.clear();
            }
            self.analyses = Some(xf::FineState::new(function));
        }

        let index = which as usize;
        let seed = std::mem::replace(&mut self.seeds[index], Seed::Ops(Vec::new()));
        let state = self.analyses.as_mut().expect("analyses just built");
        let function = self.working.function_mut(&self.top).expect("top exists");
        let (report, effects) = match (which, &seed) {
            (FinePass::ConstProp, Seed::Everything) => {
                let all = function.live_ops();
                xf::constant_propagation_seeded(function, state, &all)
            }
            (FinePass::ConstProp, Seed::Ops(ops)) => {
                xf::constant_propagation_seeded(function, state, ops)
            }
            (FinePass::CopyProp, Seed::Everything) => {
                let all = function.live_ops();
                xf::copy_propagation_seeded(function, state, &all)
            }
            (FinePass::CopyProp, Seed::Ops(ops)) => {
                xf::copy_propagation_seeded(function, state, ops)
            }
            (FinePass::Cse, Seed::Everything) => {
                xf::common_subexpression_elimination_seeded(function, state, None)
            }
            (FinePass::Cse, Seed::Ops(ops)) => {
                xf::common_subexpression_elimination_seeded(function, state, Some(ops))
            }
            (FinePass::Dce, Seed::Everything) => {
                xf::dead_code_elimination_seeded(function, state, None)
            }
            (FinePass::Dce, Seed::Ops(ops)) => {
                xf::dead_code_elimination_seeded(function, state, Some(ops))
            }
        };

        // Every op this pass touched may hold new work for the others; DCE
        // additionally re-examines the definitions of variables that lost a
        // reader.
        let state = self.analyses.as_ref().expect("analyses alive");
        for (other, seed) in self.seeds.iter_mut().enumerate() {
            if other == index {
                continue;
            }
            if let Seed::Ops(ops) = seed {
                ops.extend(effects.touched.iter().copied());
                if other == FinePass::Dce as usize {
                    for &var in &effects.released {
                        ops.extend(state.graph.defs_of(var));
                    }
                }
            }
        }
        self.record(report)
    }

    /// Runs the whole transformation recipe and returns the transformed
    /// program.
    pub fn run(mut self) -> Result<TransformedProgram, SynthesisError> {
        TRANSFORM_RUNS.fetch_add(1, Ordering::Relaxed);
        let options = self.options;

        // ---- Source-level and coarse-grain transformations ---------------
        if options.while_to_for {
            self.coarse(|p, top| xf::while_to_for(p.function_mut(top).expect("top exists")))?;
            self.snapshot("while-to-for");
        }
        if options.inline {
            self.coarse(xf::inline_calls)?;
            self.snapshot("inline");
        }
        if options.speculate {
            self.coarse(|p, top| xf::speculate(p.function_mut(top).expect("top exists")))?;
            self.snapshot("speculation");
        }
        if options.unroll {
            self.coarse(|p, top| xf::unroll_all_loops(p.function_mut(top).expect("top exists")))?;
            self.snapshot("loop-unroll");
        }
        // Speculation opportunities often only appear after unrolling exposes
        // the per-byte conditionals; run it again in the aggressive flow.
        if options.speculate {
            self.coarse(|p, top| xf::speculate(p.function_mut(top).expect("top exists")))?;
        }

        // ---- Fine-grain clean-up: worklist passes over shared analyses ----
        if options.constant_propagation {
            self.fine(FinePass::ConstProp)?;
            self.snapshot("constant-propagation");
        }
        self.fine(FinePass::CopyProp)?;
        if options.cse {
            self.fine(FinePass::Cse)?;
        }
        self.fine(FinePass::Dce)?;
        // A second round of constant propagation picks up constants exposed
        // by copy propagation; DCE then removes the dead copies. These runs
        // are seeded by the ops the passes above touched — on the ILD this
        // is a few hundred ops instead of the whole function.
        if options.constant_propagation {
            self.fine(FinePass::ConstProp)?;
        }
        self.fine(FinePass::CopyProp)?;
        self.fine(FinePass::Dce)?;
        self.snapshot("cleanup");

        if options.secondary_code_motions {
            self.coarse(|p, top| {
                xf::early_condition_execution(p.function_mut(top).expect("top exists"))
            })?;
            self.coarse(|p, top| {
                xf::reverse_speculation(p.function_mut(top).expect("top exists"))
            })?;
            self.snapshot("secondary-code-motions");
        }

        Ok(TransformedProgram {
            program: self.working,
            top: self.top,
            pass_log: self.pass_log,
            stages: self.stages,
            sched: OnceLock::new(),
        })
    }
}

/// Runs the transformation half of the coordinated flow: source-level
/// rewriting, inlining, speculation, unrolling and the fine-grain clean-up,
/// under the transformation switches of `options`. The clock period in
/// `options` is not consulted — transformations are clock-agnostic, which is
/// what makes the result reusable across a clock sweep.
///
/// This is a thin wrapper over [`PassManager::run`].
///
/// # Errors
/// Returns [`SynthesisError::UnknownFunction`] when `top` does not exist,
/// and — with [`FlowOptions::verify_ir`] set — [`SynthesisError::MalformedIr`]
/// naming the pass after which structural verification first failed.
pub fn transform_program(
    program: &Program,
    top: &str,
    options: &FlowOptions,
) -> Result<TransformedProgram, SynthesisError> {
    PassManager::new(program, top, options)?.run()
}

/// Wall-clock time spent in each phase of one synthesis run, milliseconds.
///
/// Emitted into `BENCH_synthesize.json` by the benchmark harness so the
/// per-phase performance trajectory (transform vs. schedule vs. bind vs.
/// RTL reporting) is visible PR over PR.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Transformation pipeline ([`transform_program`]).
    pub transform_ms: f64,
    /// Dependence graph, scheduling, wire-variable insertion, chaining
    /// validation and controller construction — the sum of the five
    /// `sched_*_ms` sub-phases below.
    pub schedule_ms: f64,
    /// Lifetime analysis and register/FU binding.
    pub bind_ms: f64,
    /// Datapath report construction (the RTL-level summary).
    pub rtl_ms: f64,
    /// Schedule sub-phase: dependence-graph / scheduling-context
    /// construction. Zero when the sweep-shared context was already built by
    /// an earlier point ([`TransformedProgram::sched_context`]).
    pub sched_deps_ms: f64,
    /// Schedule sub-phase: the chaining-aware list scheduler itself.
    pub sched_list_ms: f64,
    /// Schedule sub-phase: wire-variable insertion plus the incremental
    /// dependence-graph patch.
    pub sched_wires_ms: f64,
    /// Schedule sub-phase: chaining-trail validation.
    pub sched_validate_ms: f64,
    /// Schedule sub-phase: FSM controller construction.
    pub sched_controller_ms: f64,
}

impl PhaseBreakdown {
    /// Accumulates another run's phase times into this one.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.transform_ms += other.transform_ms;
        self.schedule_ms += other.schedule_ms;
        self.bind_ms += other.bind_ms;
        self.rtl_ms += other.rtl_ms;
        self.sched_deps_ms += other.sched_deps_ms;
        self.sched_list_ms += other.sched_list_ms;
        self.sched_wires_ms += other.sched_wires_ms;
        self.sched_validate_ms += other.sched_validate_ms;
        self.sched_controller_ms += other.sched_controller_ms;
    }

    /// Divides every phase time by `n` (for averaging over iterations).
    pub fn scale(&mut self, n: f64) {
        self.transform_ms /= n;
        self.schedule_ms /= n;
        self.bind_ms /= n;
        self.rtl_ms /= n;
        self.sched_deps_ms /= n;
        self.sched_list_ms /= n;
        self.sched_wires_ms /= n;
        self.sched_validate_ms /= n;
        self.sched_controller_ms /= n;
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs the back half of the flow — scheduling, chaining validation,
/// wire-variable insertion, binding and RTL reporting — on an already
/// transformed program, under the constraints (clock period, mode) of
/// `options`.
///
/// # Errors
/// Returns [`SynthesisError::Scheduling`] when the constraints cannot be met.
pub fn synthesize_transformed(
    transformed: &TransformedProgram,
    options: &FlowOptions,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize_transformed_timed(transformed, options).map(|(result, _)| result)
}

/// [`synthesize_transformed`] with per-phase wall times. The returned
/// breakdown's `transform_ms` is zero — the transformation happened before
/// this call; [`synthesize_with_breakdown`] fills it in.
///
/// # Errors
/// Returns [`SynthesisError::Scheduling`] when the constraints cannot be met.
pub fn synthesize_transformed_timed(
    transformed: &TransformedProgram,
    options: &FlowOptions,
) -> Result<(SynthesisResult, PhaseBreakdown), SynthesisError> {
    let mut breakdown = PhaseBreakdown::default();
    let library = ResourceLibrary::new();
    let top = transformed.top.as_str();
    let pass_log = transformed.pass_log.clone();
    let mut stages = transformed.stages.clone();
    let working = &transformed.program;

    // ---- Scheduling, chaining, binding, RTL --------------------------------
    // The pre-wire dependence graph (with its interned guard table) and the
    // op → block map come from the sweep-shared context: built at most once
    // per transformed program, not once per clock point.
    let started = Instant::now();
    let context = transformed.sched_context()?;
    breakdown.sched_deps_ms = ms_since(started);

    let started = Instant::now();
    let mut function = working.function(top).expect("top exists").clone();
    let constraints = options.constraints();
    let mut sched = schedule_in(&function, context, &library, &constraints)?;
    breakdown.sched_list_ms = ms_since(started);

    // Wire insertion adds blocks/ops and redirects operands; instead of
    // rebuilding the dependence graph from scratch, patch a copy of the
    // shared pre-wire graph from the structured edit log.
    let started = Instant::now();
    let (wire_report, wire_edits) = insert_wire_variables_logged(&mut function, &mut sched);
    let mut graph = context.graph.clone();
    graph.apply_wire_edits(&function, &wire_edits);
    breakdown.sched_wires_ms = ms_since(started);

    let started = Instant::now();
    let chaining = validate_chaining(&function, &graph, &sched, &library)?;
    breakdown.sched_validate_ms = ms_since(started);

    let started = Instant::now();
    let controller = Controller::build(&function, &graph, &sched);
    breakdown.sched_controller_ms = ms_since(started);

    breakdown.schedule_ms = breakdown.sched_deps_ms
        + breakdown.sched_list_ms
        + breakdown.sched_wires_ms
        + breakdown.sched_validate_ms
        + breakdown.sched_controller_ms;

    let started = Instant::now();
    let lifetimes = LifetimeAnalysis::compute(&function, &sched);
    let binding = Binding::compute(&function, &sched, &lifetimes, &library);
    breakdown.bind_ms = ms_since(started);

    let started = Instant::now();
    let report = DatapathReport::build(&function, &sched, &binding, &controller, &library);
    breakdown.rtl_ms = ms_since(started);
    stages.push(StageSnapshot {
        stage: "scheduled".to_string(),
        stats: FunctionStats::of(&function),
    });

    Ok((
        SynthesisResult {
            function,
            graph,
            schedule: sched,
            controller,
            binding,
            report,
            pass_log,
            stages,
            wire_report,
            chaining,
        },
        breakdown,
    ))
}

/// Runs the coordinated flow on `program`, synthesizing the function `top`.
///
/// Equivalent to [`transform_program`] followed by
/// [`synthesize_transformed`]; sweeps that vary only the clock period should
/// call the two halves directly and reuse the transformed program.
///
/// # Errors
/// Returns [`SynthesisError`] when the top function is missing or scheduling
/// fails under the given constraints.
pub fn synthesize(
    program: &Program,
    top: &str,
    options: &FlowOptions,
) -> Result<SynthesisResult, SynthesisError> {
    let transformed = transform_program(program, top, options)?;
    synthesize_transformed(&transformed, options)
}

/// [`synthesize`] with per-phase wall times (transform / schedule / bind /
/// RTL reporting), for the benchmark harness.
///
/// # Errors
/// Returns [`SynthesisError`] when the top function is missing or scheduling
/// fails under the given constraints.
pub fn synthesize_with_breakdown(
    program: &Program,
    top: &str,
    options: &FlowOptions,
) -> Result<(SynthesisResult, PhaseBreakdown), SynthesisError> {
    let started = Instant::now();
    let transformed = transform_program(program, top, options)?;
    let transform_ms = ms_since(started);
    let (result, mut breakdown) = synthesize_transformed_timed(&transformed, options)?;
    breakdown.transform_ms = transform_ms;
    Ok((result, breakdown))
}

/// Why source-level synthesis failed: either the frontend rejected the text
/// or the flow itself failed on the lowered program.
#[derive(Debug)]
pub enum SourceSynthesisError {
    /// The SPARK-C frontend reported diagnostics (source order).
    Frontend(Vec<spark_front::Diagnostic>),
    /// The coordinated flow failed on the lowered program.
    Synthesis(SynthesisError),
}

impl std::fmt::Display for SourceSynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceSynthesisError::Frontend(diags) => {
                write!(
                    f,
                    "{}",
                    diags
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("\n")
                )
            }
            SourceSynthesisError::Synthesis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceSynthesisError {}

impl From<SynthesisError> for SourceSynthesisError {
    fn from(e: SynthesisError) -> Self {
        SourceSynthesisError::Synthesis(e)
    }
}

/// Runs the coordinated flow directly on SPARK-C source text, synthesizing
/// the first function of the file (the conventional top level).
///
/// This is the paper's entry point made literal: behavioral C text in,
/// synthesized design out. Equivalent to [`spark_front::compile`] followed
/// by [`synthesize`].
///
/// # Errors
/// Returns [`SourceSynthesisError::Frontend`] with source-located
/// diagnostics when the text does not compile, or
/// [`SourceSynthesisError::Synthesis`] when the flow fails on the lowered
/// program.
pub fn synthesize_source(
    source: &str,
    options: &FlowOptions,
) -> Result<SynthesisResult, SourceSynthesisError> {
    let compiled = spark_front::compile(source).map_err(SourceSynthesisError::Frontend)?;
    Ok(synthesize(&compiled.program, &compiled.top, options)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ild::{buffer_env, build_ild_program, decode_marks, random_buffer, ILD_FUNCTION};

    #[test]
    fn ild_synthesizes_to_a_single_cycle() {
        let n = 8u32;
        let program = build_ild_program(n);
        let result = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(200.0),
        )
        .expect("synthesis succeeds");
        assert!(
            result.is_single_cycle(),
            "the coordinated flow reaches the Figure 15 architecture"
        );
        assert!(result.report.critical_path_ns <= 200.0);
        assert!(result
            .pass_log
            .iter()
            .any(|r| r.pass == "speculation" && r.changes > 0));
        assert!(result
            .pass_log
            .iter()
            .any(|r| r.pass == "loop-unroll-all" && r.changes > 0));
        assert!(result.stages.len() >= 5);
    }

    #[test]
    fn synthesized_ild_matches_golden_model() {
        let n = 8u32;
        let program = build_ild_program(n);
        let result = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(200.0),
        )
        .unwrap();
        for seed in 0..6u64 {
            let buffer = random_buffer(n as usize, seed);
            let rtl = result.simulate(&buffer_env(&buffer)).unwrap();
            let marks = rtl.array("Mark").unwrap();
            let golden = decode_marks(&buffer, n as usize);
            for i in 1..=n as usize {
                assert_eq!(marks[i] != 0, golden[i], "byte {i}, seed {seed}");
            }
        }
    }

    #[test]
    fn baseline_takes_more_cycles_than_spark() {
        let n = 8u32;
        let program = build_ild_program(n);
        let spark = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(200.0),
        )
        .unwrap();
        let baseline =
            synthesize(&program, ILD_FUNCTION, &FlowOptions::asic_baseline(20.0)).unwrap();
        assert!(spark.report.states < baseline.report.states);
        assert!(baseline.report.states > 1);
    }

    #[test]
    fn unknown_top_function_is_reported() {
        let program = build_ild_program(4);
        let err = synthesize(
            &program,
            "missing",
            &FlowOptions::microprocessor_block(100.0),
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::UnknownFunction(_)));
    }

    #[test]
    fn region_invalidation_reseeds_fine_passes_after_a_coarse_pass() {
        // Drive the manager out of recipe order: run a fine pass (consuming
        // its full-function seed), then a coarse unroll that reports a
        // `Region` invalidation, then the fine clean-up again. The second
        // const-prop run is reseeded from the invalidated region's ops —
        // this is the only path that exercises the `dirty_regions` fold —
        // and the result must equal the full-rescan reference sequence.
        use spark_ir::{FunctionBuilder, OpKind, Type, Value};
        let build = || {
            let mut b = FunctionBuilder::new("f");
            let a = b.param("a", Type::Bits(8));
            let i = b.var("i", Type::Bits(8));
            let acc = b.output("acc", Type::Bits(8));
            let t = b.var("t", Type::Bits(8));
            // Foldable straight-line prefix plus a constant-bound loop.
            b.assign(OpKind::Add, t, vec![Value::word(2), Value::word(3)]);
            b.copy(acc, Value::Var(t));
            b.for_begin(i, 1, Value::word(3), 1);
            b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
            b.loop_end();
            let _ = a;
            b.finish()
        };

        let mut program = Program::new();
        program.add_function(build());
        let mut options = FlowOptions::microprocessor_block(100.0);
        options.while_to_for = false;
        options.inline = false;
        options.speculate = false;
        options.unroll = false;
        let mut manager = PassManager::new(&program, "f", &options).unwrap();
        manager.fine(FinePass::ConstProp).unwrap();
        let unrolled_before_fine = manager.working.function("f").unwrap().live_op_count();
        manager
            .coarse(|p, top| xf::unroll_all_loops(p.function_mut(top).expect("top exists")))
            .unwrap();
        assert!(matches!(
            manager.pass_log.last().unwrap().invalidation,
            xf::Invalidation::Region(_)
        ));
        assert!(manager.analyses.is_none(), "coarse pass dropped the cache");
        manager.fine(FinePass::ConstProp).unwrap();
        manager.fine(FinePass::CopyProp).unwrap();
        manager.fine(FinePass::Dce).unwrap();
        let managed = manager.working.function("f").unwrap().clone();

        // Reference: the same sequence with stand-alone full-rescan passes.
        let mut reference = build();
        xf::constant_propagation(&mut reference);
        xf::unroll_all_loops(&mut reference);
        xf::constant_propagation(&mut reference);
        xf::copy_propagation(&mut reference);
        xf::dead_code_elimination(&mut reference);
        assert_eq!(managed.to_string(), reference.to_string());
        assert!(managed.live_op_count() < unrolled_before_fine + 3 * 2);
    }

    #[test]
    fn verify_ir_names_the_offending_pass() {
        // A malformed input program (dangling destination variable) must be
        // rejected at the named "input" step, not panic downstream.
        let mut function = spark_ir::Function::new("bad");
        let bb = function.add_block("BB0");
        let node = function.add_block_node(bb);
        let body = function.body;
        function.region_push(body, node);
        let ghost = spark_ir::VarId::from_raw(99);
        function.push_op(
            bb,
            spark_ir::OpKind::Copy,
            Some(ghost),
            vec![spark_ir::Value::word(1)],
        );
        let mut program = Program::new();
        program.add_function(function);
        let mut options = FlowOptions::microprocessor_block(100.0);
        options.verify_ir = true;
        let err = transform_program(&program, "bad", &options).unwrap_err();
        match err {
            SynthesisError::MalformedIr { pass, errors } => {
                assert_eq!(pass, "input");
                assert!(!errors.is_empty());
            }
            other => panic!("expected MalformedIr, got {other}"),
        }
    }

    #[test]
    fn synthesize_source_compiles_and_synthesizes_text() {
        let source =
            "u8 clip(u8 a) {\n  u8 r;\n  if (a > 100) { r = 100; } else { r = a; }\n  return r;\n}";
        let result = synthesize_source(source, &FlowOptions::microprocessor_block(500.0))
            .expect("source synthesizes");
        assert!(result.is_single_cycle());
        let vhdl = result.vhdl();
        assert!(vhdl.contains("entity clip is"));
    }

    #[test]
    fn synthesize_source_reports_diagnostics() {
        let err = synthesize_source(
            "u8 f() { return x; }",
            &FlowOptions::microprocessor_block(500.0),
        )
        .unwrap_err();
        match err {
            SourceSynthesisError::Frontend(diags) => {
                assert!(diags[0].to_string().contains("unknown variable `x`"));
            }
            other => panic!("expected frontend diagnostics, got {other}"),
        }
    }

    #[test]
    fn vhdl_is_generated_for_the_ild() {
        let program = build_ild_program(4);
        let result = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(200.0),
        )
        .unwrap();
        let vhdl = result.vhdl();
        assert!(vhdl.contains("entity ild is"));
        assert!(vhdl.contains("Mark_1 : out std_logic"));
    }
}
