//! Design-space exploration helpers.
//!
//! Spark's tunable transformations "enable the system to aid in exploration
//! of several alternative designs" (Section 4). These helpers sweep the knobs
//! a block designer would turn — clock period, flow mode, individual
//! transformations — and collect the resulting datapath reports; the
//! benchmark harness and the `design_space` example print them as tables.

use spark_ir::Program;
use spark_rtl::DatapathReport;

use crate::par::par_map;
use crate::pipeline::{
    synthesize_transformed, transform_program, FlowOptions, SynthesisError, TransformedProgram,
};

/// One point of a design-space sweep.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Human-readable label of the configuration.
    pub label: String,
    /// Clock period used.
    pub clock_period_ns: f64,
    /// The resulting datapath report (`None` if synthesis failed, e.g. an
    /// infeasible clock period).
    pub report: Option<DatapathReport>,
}

/// Sweeps the clock period with the microprocessor-block flow.
///
/// The (clock-agnostic) transformation pipeline runs once; each period point
/// then schedules the same transformed program, with the points fanned out
/// over worker threads. Points come back in input order, so the printed
/// tables are identical to the serial driver's.
pub fn sweep_clock_period(
    program: &Program,
    top: &str,
    periods_ns: &[f64],
) -> Result<Vec<DesignPoint>, SynthesisError> {
    // The transformation switches do not depend on the period, so any period
    // yields the same transformed program; scheduling gets the real one.
    let transformed = transform_program(program, top, &FlowOptions::microprocessor_block(1.0))?;
    // Build the shared scheduling context (pre-wire dependence graph, guard
    // table, op → block map) once up front instead of having every worker
    // block on the first point's lazy build. Loop/call errors are surfaced
    // per point, exactly as scheduling reported them before.
    let _ = transformed.sched_context();
    Ok(par_map(periods_ns, |&period| {
        let options = FlowOptions::microprocessor_block(period);
        let report = match synthesize_transformed(&transformed, &options) {
            Ok(result) => Some(result.report),
            Err(_) => None,
        };
        DesignPoint {
            label: format!("clock {period:.1} ns"),
            clock_period_ns: period,
            report,
        }
    }))
}

/// The set of [`FlowOptions`] switches the transformation pipeline actually
/// consults: the transformation toggles plus `verify_ir` (which controls
/// per-pass structural verification and its error reporting). Two
/// configurations with equal keys produce identical transformed programs —
/// and identical transform-time failure behaviour — regardless of clock
/// period or flow mode, so the design-space helpers memoize
/// [`transform_program`] on this key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransformKey {
    while_to_for: bool,
    inline: bool,
    speculate: bool,
    unroll: bool,
    constant_propagation: bool,
    cse: bool,
    secondary_code_motions: bool,
    verify_ir: bool,
}

impl TransformKey {
    /// Extracts the transform-relevant switches of `options`.
    pub fn of(options: &FlowOptions) -> Self {
        TransformKey {
            while_to_for: options.while_to_for,
            inline: options.inline,
            speculate: options.speculate,
            unroll: options.unroll,
            constant_propagation: options.constant_propagation,
            cse: options.cse,
            secondary_code_motions: options.secondary_code_motions,
            verify_ir: options.verify_ir,
        }
    }
}

/// The result of [`explore_configurations`]: the design points plus how many
/// transformation runs they actually cost after memoization.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// One design point per input configuration, in input order.
    pub points: Vec<DesignPoint>,
    /// Distinct transform-flag sets encountered — the number of times the
    /// transformation pipeline ran (the rest were cache hits).
    pub transform_runs: usize,
}

/// Synthesizes every labelled configuration, transforming the program **once
/// per distinct transform-flag set** and scheduling each point against the
/// shared transformed program. Points whose schedule is infeasible get
/// `report: None`; transform-level failures propagate as errors.
///
/// # Errors
/// Returns the first non-scheduling [`SynthesisError`] encountered.
pub fn explore_configurations(
    program: &Program,
    top: &str,
    configurations: &[(String, FlowOptions)],
) -> Result<Exploration, SynthesisError> {
    // Group configurations by transform key, preserving first-occurrence
    // order so results are deterministic.
    let mut keys: Vec<TransformKey> = Vec::new();
    let mut representatives: Vec<&FlowOptions> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(configurations.len());
    for (_, options) in configurations {
        let key = TransformKey::of(options);
        let group = keys.iter().position(|&k| k == key).unwrap_or_else(|| {
            keys.push(key);
            representatives.push(options);
            keys.len() - 1
        });
        group_of.push(group);
    }

    // One transform per distinct key, fanned out over worker threads.
    let transformed: Vec<Result<TransformedProgram, SynthesisError>> =
        par_map(&representatives, |options| {
            transform_program(program, top, options)
        });
    let mut shared: Vec<TransformedProgram> = Vec::with_capacity(transformed.len());
    for result in transformed {
        let group = result?;
        // One scheduling context per transform group, shared by every point
        // scheduled against it (errors surface per point, as before).
        let _ = group.sched_context();
        shared.push(group);
    }

    // Schedule every point against its group's transformed program.
    let units: Vec<(usize, &(String, FlowOptions))> =
        group_of.iter().copied().zip(configurations).collect();
    let results = par_map(&units, |(group, (label, options))| {
        let report = match synthesize_transformed(&shared[*group], options) {
            Ok(result) => Ok(Some(result.report)),
            // An infeasible schedule is a legitimate "no design here" point;
            // anything else is an error.
            Err(SynthesisError::Scheduling(_)) => Ok(None),
            Err(other) => Err(other),
        };
        (label.clone(), options.clock_period_ns, report)
    });
    let mut points = Vec::new();
    for (label, clock_period_ns, report) in results {
        points.push(DesignPoint {
            label,
            clock_period_ns,
            report: report?,
        });
    }
    Ok(Exploration {
        points,
        transform_runs: keys.len(),
    })
}

/// The ablation study called out in `DESIGN.md`: the coordinated flow with
/// each transformation switched off individually, plus the classical
/// baseline. Returns `(label, report)` per configuration.
///
/// Built on [`explore_configurations`], so configurations sharing a
/// transform-flag set share one transformed program instead of
/// re-transforming per point.
pub fn ablation_study(
    program: &Program,
    top: &str,
    clock_period_ns: f64,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    let full = FlowOptions::microprocessor_block(clock_period_ns);
    let mut configurations: Vec<(String, FlowOptions)> =
        vec![("coordinated (all on)".into(), full.clone())];

    let mut no_speculation = full.clone();
    no_speculation.speculate = false;
    configurations.push(("no speculation".into(), no_speculation));

    let mut no_unroll = full.clone();
    no_unroll.unroll = false;
    configurations.push(("no loop unrolling".into(), no_unroll));

    let mut no_const_prop = full.clone();
    no_const_prop.constant_propagation = false;
    configurations.push(("no constant propagation".into(), no_const_prop));

    let mut no_cse = full.clone();
    no_cse.cse = false;
    configurations.push(("no CSE".into(), no_cse));

    configurations.push((
        "ASIC baseline".into(),
        FlowOptions::asic_baseline(clock_period_ns),
    ));

    explore_configurations(program, top, &configurations).map(|exploration| exploration.points)
}

/// Formats design points as an aligned text table.
pub fn format_table(points: &[DesignPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12} {:>8} {:>10}\n",
        "configuration", "states", "FUs", "crit.path ns", "regs", "area"
    ));
    for point in points {
        match &point.report {
            Some(report) => out.push_str(&format!(
                "{:<28} {:>8} {:>8} {:>12.2} {:>8} {:>10.0}\n",
                point.label,
                report.states,
                report.total_functional_units(),
                report.critical_path_ns,
                report.registers,
                report.area_estimate
            )),
            None => out.push_str(&format!("{:<28} {:>8}\n", point.label, "infeasible")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ild::{build_ild_program, ILD_FUNCTION};

    #[test]
    fn clock_sweep_marks_infeasible_points() {
        let program = build_ild_program(4);
        let points = sweep_clock_period(&program, ILD_FUNCTION, &[0.1, 50.0, 200.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].report.is_none(), "0.1 ns is infeasible");
        assert!(points[2].report.is_some());
        let table = format_table(&points);
        assert!(table.contains("infeasible"));
        assert!(table.contains("clock 200.0 ns"));
    }

    #[test]
    fn ablation_study_covers_all_knobs() {
        let program = build_ild_program(4);
        let points = ablation_study(&program, ILD_FUNCTION, 200.0).unwrap();
        assert_eq!(points.len(), 6);
        let coordinated = points[0].report.as_ref().unwrap();
        let baseline = points.last().unwrap().report.as_ref().unwrap();
        assert!(coordinated.states <= baseline.states);
    }

    #[test]
    fn unknown_function_propagates() {
        let program = build_ild_program(4);
        assert!(sweep_clock_period(&program, "ghost", &[10.0]).is_err());
        assert!(ablation_study(&program, "ghost", 10.0).is_err());
        assert!(explore_configurations(
            &program,
            "ghost",
            &[("x".into(), FlowOptions::microprocessor_block(10.0))]
        )
        .is_err());
    }

    #[test]
    fn exploration_transforms_once_per_flag_set() {
        // Three configurations, two distinct transform-flag sets: the two
        // microprocessor points differ only in clock period (which the
        // transformations never consult) and must share one transformed
        // program.
        let program = build_ild_program(4);
        let configurations = vec![
            (
                "fast clock".to_string(),
                FlowOptions::microprocessor_block(100.0),
            ),
            (
                "slow clock".to_string(),
                FlowOptions::microprocessor_block(500.0),
            ),
            ("baseline".to_string(), FlowOptions::asic_baseline(20.0)),
        ];
        let before = crate::pipeline::transform_run_count();
        let exploration = explore_configurations(&program, ILD_FUNCTION, &configurations).unwrap();
        let after = crate::pipeline::transform_run_count();
        assert_eq!(exploration.transform_runs, 2, "one transform per flag set");
        assert_eq!(exploration.points.len(), 3);
        assert!(exploration.points.iter().all(|p| p.report.is_some()));
        // The global counter moved by at least the distinct-key count but —
        // tests run concurrently — possibly more from other tests.
        assert!(after - before >= 2);
        // Memoized points match a from-scratch synthesis.
        let serial = crate::pipeline::synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(500.0),
        )
        .unwrap();
        assert_eq!(exploration.points[1].report.as_ref(), Some(&serial.report));
    }

    #[test]
    fn ablation_study_covers_six_distinct_flag_sets() {
        // The standard ablation list happens to have six distinct transform
        // keys, so memoization keeps all six transforms — this pins the
        // sharing contract so a future config rearrangement that introduces
        // duplicates gets the cache for free and this test documents it.
        let program = build_ild_program(4);
        let full = FlowOptions::microprocessor_block(200.0);
        let mut no_speculation = full.clone();
        no_speculation.speculate = false;
        let configurations = vec![
            ("a".to_string(), full.clone()),
            ("b".to_string(), no_speculation.clone()),
            // A duplicate of an earlier flag set must NOT add a transform.
            ("c".to_string(), {
                let mut duplicate = no_speculation;
                duplicate.clock_period_ns = 55.0;
                duplicate
            }),
        ];
        let exploration = explore_configurations(&program, ILD_FUNCTION, &configurations).unwrap();
        assert_eq!(exploration.transform_runs, 2);
        assert_eq!(exploration.points.len(), 3);
    }

    #[test]
    fn verify_ir_is_part_of_the_transform_key() {
        // Identical transform toggles with different verification behaviour
        // must not share a transform run: the representative's `verify_ir`
        // would otherwise silently apply to the whole group.
        let program = build_ild_program(4);
        let mut verified = FlowOptions::microprocessor_block(100.0);
        verified.verify_ir = true;
        let mut unverified = verified.clone();
        unverified.verify_ir = false;
        let exploration = explore_configurations(
            &program,
            ILD_FUNCTION,
            &[("v".to_string(), verified), ("u".to_string(), unverified)],
        )
        .unwrap();
        assert_eq!(exploration.transform_runs, 2);
    }
}
