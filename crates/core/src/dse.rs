//! Design-space exploration helpers.
//!
//! Spark's tunable transformations "enable the system to aid in exploration
//! of several alternative designs" (Section 4). These helpers sweep the knobs
//! a block designer would turn — clock period, flow mode, individual
//! transformations — and collect the resulting datapath reports; the
//! benchmark harness and the `design_space` example print them as tables.

use spark_ir::Program;
use spark_rtl::DatapathReport;

use crate::par::par_map;
use crate::pipeline::{
    synthesize, synthesize_transformed, transform_program, FlowOptions, SynthesisError,
};

/// One point of a design-space sweep.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Human-readable label of the configuration.
    pub label: String,
    /// Clock period used.
    pub clock_period_ns: f64,
    /// The resulting datapath report (`None` if synthesis failed, e.g. an
    /// infeasible clock period).
    pub report: Option<DatapathReport>,
}

/// Sweeps the clock period with the microprocessor-block flow.
///
/// The (clock-agnostic) transformation pipeline runs once; each period point
/// then schedules the same transformed program, with the points fanned out
/// over worker threads. Points come back in input order, so the printed
/// tables are identical to the serial driver's.
pub fn sweep_clock_period(
    program: &Program,
    top: &str,
    periods_ns: &[f64],
) -> Result<Vec<DesignPoint>, SynthesisError> {
    // The transformation switches do not depend on the period, so any period
    // yields the same transformed program; scheduling gets the real one.
    let transformed = transform_program(program, top, &FlowOptions::microprocessor_block(1.0))?;
    Ok(par_map(periods_ns, |&period| {
        let options = FlowOptions::microprocessor_block(period);
        let report = match synthesize_transformed(&transformed, &options) {
            Ok(result) => Some(result.report),
            Err(_) => None,
        };
        DesignPoint {
            label: format!("clock {period:.1} ns"),
            clock_period_ns: period,
            report,
        }
    }))
}

/// The ablation study called out in `DESIGN.md`: the coordinated flow with
/// each transformation switched off individually, plus the classical
/// baseline. Returns `(label, report)` per configuration.
pub fn ablation_study(
    program: &Program,
    top: &str,
    clock_period_ns: f64,
) -> Result<Vec<DesignPoint>, SynthesisError> {
    let full = FlowOptions::microprocessor_block(clock_period_ns);
    let mut configurations: Vec<(String, FlowOptions)> =
        vec![("coordinated (all on)".into(), full.clone())];

    let mut no_speculation = full.clone();
    no_speculation.speculate = false;
    configurations.push(("no speculation".into(), no_speculation));

    let mut no_unroll = full.clone();
    no_unroll.unroll = false;
    configurations.push(("no loop unrolling".into(), no_unroll));

    let mut no_const_prop = full.clone();
    no_const_prop.constant_propagation = false;
    configurations.push(("no constant propagation".into(), no_const_prop));

    let mut no_cse = full.clone();
    no_cse.cse = false;
    configurations.push(("no CSE".into(), no_cse));

    configurations.push((
        "ASIC baseline".into(),
        FlowOptions::asic_baseline(clock_period_ns),
    ));

    // Each ablation point transforms differently, so every configuration is
    // an independent unit of parallel work (full synthesize per point).
    let results = par_map(&configurations, |(label, options)| {
        let report = match synthesize(program, top, options) {
            Ok(result) => Ok(Some(result.report)),
            // An infeasible schedule is a legitimate "no design here" point;
            // everything else (missing function, corrupted IR) is an error.
            Err(SynthesisError::Scheduling(_)) => Ok(None),
            Err(other) => Err(other),
        };
        (label.clone(), report)
    });
    let mut points = Vec::new();
    for (label, report) in results {
        points.push(DesignPoint {
            label,
            clock_period_ns,
            report: report?,
        });
    }
    Ok(points)
}

/// Formats design points as an aligned text table.
pub fn format_table(points: &[DesignPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12} {:>8} {:>10}\n",
        "configuration", "states", "FUs", "crit.path ns", "regs", "area"
    ));
    for point in points {
        match &point.report {
            Some(report) => out.push_str(&format!(
                "{:<28} {:>8} {:>8} {:>12.2} {:>8} {:>10.0}\n",
                point.label,
                report.states,
                report.total_functional_units(),
                report.critical_path_ns,
                report.registers,
                report.area_estimate
            )),
            None => out.push_str(&format!("{:<28} {:>8}\n", point.label, "infeasible")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ild::{build_ild_program, ILD_FUNCTION};

    #[test]
    fn clock_sweep_marks_infeasible_points() {
        let program = build_ild_program(4);
        let points = sweep_clock_period(&program, ILD_FUNCTION, &[0.1, 50.0, 200.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].report.is_none(), "0.1 ns is infeasible");
        assert!(points[2].report.is_some());
        let table = format_table(&points);
        assert!(table.contains("infeasible"));
        assert!(table.contains("clock 200.0 ns"));
    }

    #[test]
    fn ablation_study_covers_all_knobs() {
        let program = build_ild_program(4);
        let points = ablation_study(&program, ILD_FUNCTION, 200.0).unwrap();
        assert_eq!(points.len(), 6);
        let coordinated = points[0].report.as_ref().unwrap();
        let baseline = points.last().unwrap().report.as_ref().unwrap();
        assert!(coordinated.states <= baseline.states);
    }

    #[test]
    fn unknown_function_propagates() {
        let program = build_ild_program(4);
        assert!(sweep_clock_period(&program, "ghost", &[10.0]).is_err());
        assert!(ablation_study(&program, "ghost", 10.0).is_err());
    }
}
