//! A minimal parallel sweep driver.
//!
//! Experiment sweeps (clock-period sweeps, ablations, per-size benchmark
//! series) synthesize many independent design points; [`par_map`] fans them
//! out over `std::thread::scope` worker threads and returns the results in
//! input order, so tables print exactly as the serial driver printed them.
//! Built on the standard library only — the build image has no registry
//! access, so no rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Maps `f` over `items` on up to [`available_parallelism`] worker threads,
/// returning the results in input order.
///
/// Work is handed out through a shared atomic cursor, so uneven point costs
/// (an n=64 synthesis next to an n=4 one) balance across workers. With one
/// item, zero items, or a single-CPU machine it degrades to a plain serial
/// map with no thread overhead.
///
/// # Panics
/// Propagates a panic from any invocation of `f` once all workers finish.
///
/// [`available_parallelism`]: std::thread::available_parallelism
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                if sender.send((index, f(item))).is_err() {
                    break;
                }
            });
        }
    });
    drop(sender);

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = vec![50_000, 1, 40_000, 2, 30_000, 3];
        let sums = par_map(&items, |&n| (0..n).sum::<u64>());
        let expected: Vec<u64> = items.iter().map(|&n| (0..n).sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, |&x| {
            if x == 5 {
                panic!("worker boom");
            }
            x
        });
    }
}
