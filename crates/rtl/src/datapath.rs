//! Datapath summary and area/performance estimation.
//!
//! There is no commercial logic-synthesis flow behind this reproduction (the
//! paper itself could not compare against a hand design), so the generated
//! architecture is characterised structurally: functional units, registers,
//! steering logic, ports, the achieved number of control steps and the
//! chained critical path. The *shape* of these numbers across flows (baseline
//! vs. coordinated transformations) is what the benchmark harness reports.

use spark_bind::Binding;
use spark_ir::{Function, PortDirection, SecondaryMap, StorageClass};
use spark_sched::{Controller, FuClass, ResourceLibrary, Schedule};

/// A structural and quantitative summary of a synthesized design.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DatapathReport {
    /// Design (function) name.
    pub name: String,
    /// Number of FSM states (control steps).
    pub states: usize,
    /// Longest chained combinational path in any state (ns).
    pub critical_path_ns: f64,
    /// Clock period the design was scheduled for (ns).
    pub clock_period_ns: f64,
    /// Functional units per class.
    pub functional_units: SecondaryMap<FuClass, usize>,
    /// Physical registers (after left-edge packing), excluding output arrays.
    pub registers: usize,
    /// Output-array register bits (e.g. the ILD `Mark[]` vector).
    pub output_array_bits: usize,
    /// Two-input steering multiplexers.
    pub steering_muxes: usize,
    /// Primary input bits.
    pub input_bits: usize,
    /// Primary output bits.
    pub output_bits: usize,
    /// Total scheduled operations.
    pub operations: usize,
    /// Estimated area in gate equivalents.
    pub area_estimate: f64,
}

impl DatapathReport {
    /// Builds the report for one synthesized function.
    pub fn build(
        function: &Function,
        schedule: &Schedule,
        binding: &Binding,
        controller: &Controller,
        library: &ResourceLibrary,
    ) -> Self {
        let mut report = DatapathReport {
            name: function.name.clone(),
            states: controller.num_states(),
            critical_path_ns: controller.critical_path_ns(),
            clock_period_ns: schedule.clock_period_ns,
            registers: binding.register_count(),
            steering_muxes: binding.steering_muxes,
            operations: schedule.len(),
            area_estimate: binding.area_estimate,
            ..DatapathReport::default()
        };
        for (class, instances) in &binding.fu_instances {
            let used = instances.iter().filter(|i| !i.ops.is_empty()).count();
            if used > 0 {
                report.functional_units.insert(class, used);
            }
        }
        for (_, var) in function.vars.iter() {
            let bits = |length: Option<u32>| u32::from(var.ty.width()) * length.unwrap_or(1);
            match var.direction {
                PortDirection::Input => {
                    report.input_bits += bits(var.array_length()) as usize;
                }
                PortDirection::Output => {
                    report.output_bits += bits(var.array_length()) as usize;
                    if let StorageClass::Array { length } = var.storage {
                        report.output_array_bits += (u32::from(var.ty.width()) * length) as usize;
                    }
                }
                PortDirection::Internal => {}
            }
        }
        let _ = library;
        report
    }

    /// Total functional units of all classes.
    pub fn total_functional_units(&self) -> usize {
        self.functional_units.values().sum()
    }

    /// Latency of one block evaluation in nanoseconds (states × clock period).
    pub fn latency_ns(&self) -> f64 {
        self.states as f64 * self.clock_period_ns
    }
}

impl std::fmt::Display for DatapathReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "design `{}`:", self.name)?;
        writeln!(f, "  states             : {}", self.states)?;
        writeln!(
            f,
            "  critical path      : {:.2} ns (clock {:.2} ns)",
            self.critical_path_ns, self.clock_period_ns
        )?;
        writeln!(f, "  operations         : {}", self.operations)?;
        write!(f, "  functional units   :")?;
        if self.functional_units.is_empty() {
            writeln!(f, " none")?;
        } else {
            let parts: Vec<String> = self
                .functional_units
                .iter()
                .map(|(class, count)| format!("{count} {class}"))
                .collect();
            writeln!(f, " {}", parts.join(", "))?;
        }
        writeln!(f, "  registers          : {}", self.registers)?;
        writeln!(f, "  output array bits  : {}", self.output_array_bits)?;
        writeln!(f, "  steering muxes     : {}", self.steering_muxes)?;
        writeln!(
            f,
            "  ports              : {} in / {} out bits",
            self.input_bits, self.output_bits
        )?;
        writeln!(f, "  estimated area     : {:.0} gates", self.area_estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_bind::LifetimeAnalysis;
    use spark_ir::{FunctionBuilder, OpKind, Type, Value};
    use spark_sched::{schedule, Constraints, DependenceGraph};

    fn report_for(f: &Function, period: f64) -> DatapathReport {
        let graph = DependenceGraph::build(f).unwrap();
        let library = ResourceLibrary::new();
        let sched = schedule(
            f,
            &graph,
            &library,
            &Constraints::microprocessor_block(period),
        )
        .unwrap();
        let lifetimes = LifetimeAnalysis::compute(f, &sched);
        let binding = Binding::compute(f, &sched, &lifetimes, &library);
        let controller = Controller::build(f, &graph, &sched);
        DatapathReport::build(f, &sched, &binding, &controller, &library)
    }

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("dp");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let mark = b.output_array("Mark", Type::Bool, 4);
        let out = b.output("out", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::Var(bb)]);
        b.assign(OpKind::Add, out, vec![Value::Var(t), Value::word(1)]);
        b.array_write(mark, Value::word(0), Value::bool(true));
        b.finish()
    }

    #[test]
    fn report_counts_structure() {
        let report = report_for(&sample(), 10.0);
        assert_eq!(report.states, 1);
        assert_eq!(report.functional_units[&FuClass::Adder], 2);
        assert_eq!(report.total_functional_units(), 2);
        assert_eq!(report.registers, 1, "only `out` needs a register");
        assert_eq!(report.output_array_bits, 4);
        assert_eq!(report.input_bits, 16);
        assert_eq!(report.output_bits, 8 + 4);
        assert!((report.critical_path_ns - 4.0).abs() < 1e-9);
        assert!((report.latency_ns() - 10.0).abs() < 1e-9);
        assert!(report.area_estimate > 0.0);
    }

    #[test]
    fn display_is_readable() {
        let report = report_for(&sample(), 10.0);
        let text = report.to_string();
        assert!(text.contains("design `dp`"));
        assert!(text.contains("states             : 1"));
        assert!(text.contains("adder"));
    }
}
