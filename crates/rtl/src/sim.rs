//! Cycle-accurate RTL-semantics simulation of a scheduled design.
//!
//! The [`RtlSimulator`] executes a scheduled function the way the generated
//! hardware would: one pass through the FSM states, registers sampled at the
//! state boundary (reads observe the value at state entry, writes become
//! visible in the next state), wire-variables combinational within the state,
//! and guarded operations committing only when their branch conditions hold.
//!
//! This is deliberately a *different* evaluation model from the sequential
//! [`spark_ir::Interpreter`]: agreement between the two on the same inputs
//! demonstrates that scheduling, chaining and wire-variable insertion
//! preserved the behaviour — the verification step the paper could not do
//! against a hand design.
//!
//! After operation chaining, same-state consumers must read wire-variables
//! (inserted by [`spark_sched::insert_wire_variables`]); running the RTL
//! simulator on a chained design *without* that pass will expose the
//! register-read hazard, which is exactly what the tests check.

use std::collections::BTreeMap;

use spark_ir::{Env, Function, OpId, OpKind, PortDirection, SecondaryMap, Type, Value, VarId};
use spark_sched::{DependenceGraph, Guard, Schedule};

/// Result of one block evaluation (one pass through all FSM states).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtlOutcome {
    /// Final register/port values by variable name.
    pub scalars: BTreeMap<String, u64>,
    /// Final array contents by variable name.
    pub arrays: BTreeMap<String, Vec<u64>>,
    /// Number of cycles executed.
    pub cycles: usize,
}

impl RtlOutcome {
    /// Final value of a named scalar.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars.get(name).copied()
    }

    /// Final contents of a named array.
    pub fn array(&self, name: &str) -> Option<&[u64]> {
        self.arrays.get(name).map(Vec::as_slice)
    }
}

/// Errors raised by the RTL simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlSimError {
    /// An array access was out of bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: u64,
    },
    /// The design still contains operations the datapath cannot implement
    /// (calls must be inlined before RTL generation).
    UnsupportedOp(String),
}

impl std::fmt::Display for RtlSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtlSimError::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds for array `{array}`")
            }
            RtlSimError::UnsupportedOp(op) => write!(f, "unsupported operation in datapath: {op}"),
        }
    }
}

impl std::error::Error for RtlSimError {}

/// Reusable value tables of one simulator run. Holding these across
/// [`RtlSimulator::run_batch`] iterations lets every buffer after the first
/// reuse the allocations of the scalar register file and the per-state
/// snapshot/next tables instead of reallocating them per input set. (The
/// array store still collects one fresh `Vec` per array variable per run —
/// the env binding is cloned anyway.)
#[derive(Clone, Debug, Default)]
struct SimTables {
    registers: SecondaryMap<VarId, u64>,
    arrays: SecondaryMap<VarId, Vec<u64>>,
    register_snapshot: SecondaryMap<VarId, u64>,
    array_snapshot: SecondaryMap<VarId, Vec<u64>>,
    wires: SecondaryMap<VarId, u64>,
    next_registers: SecondaryMap<VarId, u64>,
    next_arrays: SecondaryMap<VarId, Vec<u64>>,
    written_this_state: SecondaryMap<VarId, ()>,
}

/// Cycle-accurate simulator for a scheduled function.
#[derive(Clone, Debug)]
pub struct RtlSimulator<'a> {
    function: &'a Function,
    graph: &'a DependenceGraph,
    schedule: &'a Schedule,
}

impl<'a> RtlSimulator<'a> {
    /// Creates a simulator for one scheduled function.
    pub fn new(function: &'a Function, graph: &'a DependenceGraph, schedule: &'a Schedule) -> Self {
        RtlSimulator {
            function,
            graph,
            schedule,
        }
    }

    /// Runs one block evaluation with the inputs of `env`.
    ///
    /// # Errors
    /// Returns [`RtlSimError`] on out-of-bounds array accesses or operations
    /// that have no datapath implementation (calls).
    pub fn run(&self, env: &Env) -> Result<RtlOutcome, RtlSimError> {
        let program_order = self.function.live_ops();
        self.run_with(env, &program_order, &mut SimTables::default())
    }

    /// Runs one block evaluation per input set, in order, reusing the value
    /// tables (register file, array store, per-state snapshots) and the
    /// program-order op list across buffers. With the per-buffer setup
    /// amortised this is the preferred entry point for workloads — corpus
    /// checks, golden-model sweeps — that simulate the same design on many
    /// input sets.
    ///
    /// # Errors
    /// Returns [`RtlSimError`] on the first failing input set.
    pub fn run_batch(&self, envs: &[Env]) -> Result<Vec<RtlOutcome>, RtlSimError> {
        let program_order = self.function.live_ops();
        let mut tables = SimTables::default();
        envs.iter()
            .map(|env| self.run_with(env, &program_order, &mut tables))
            .collect()
    }

    fn run_with(
        &self,
        env: &Env,
        program_order: &[OpId],
        tables: &mut SimTables,
    ) -> Result<RtlOutcome, RtlSimError> {
        let function = self.function;
        // Register file and array state, in dense per-variable tables.
        let SimTables {
            registers,
            arrays,
            register_snapshot,
            array_snapshot,
            wires,
            next_registers,
            next_arrays,
            written_this_state,
        } = tables;
        registers.clear();
        arrays.clear();
        for (var_id, var) in function.vars.iter() {
            match var.storage {
                spark_ir::StorageClass::Array { length } => {
                    let mut contents = env
                        .array_bindings()
                        .get(&var.name)
                        .cloned()
                        .unwrap_or_default();
                    contents.resize(length as usize, 0);
                    contents.iter_mut().for_each(|v| *v &= var.ty.mask());
                    arrays.insert(var_id, contents);
                }
                _ => {
                    let value = env.scalar_bindings().get(&var.name).copied().unwrap_or(0);
                    registers.insert(var_id, value & var.ty.mask());
                }
            }
        }

        let num_states = self.schedule.num_states.max(1);
        let unconditional = Guard::default();

        for state in 0..num_states {
            register_snapshot.clone_from(registers);
            array_snapshot.clone_from(arrays);
            wires.clear();
            next_registers.clone_from(registers);
            next_arrays.clone_from(arrays);
            // Registers already written earlier in this state. Data operands
            // must go through wire-variables to see such values (that is what
            // Section 3.1.2 is about), but the *controller* taps condition
            // signals combinationally: a branch condition computed in this
            // cycle steers the commits of this same cycle.
            written_this_state.clear();

            let read = |value: Value, wires: &SecondaryMap<VarId, u64>| -> u64 {
                match value {
                    Value::Const(c) => c.value(),
                    Value::Var(v) => {
                        if function.vars[v].is_wire() {
                            wires.get(&v).copied().unwrap_or(0)
                        } else {
                            register_snapshot.get(&v).copied().unwrap_or(0)
                        }
                    }
                }
            };
            let read_fresh = |value: Value,
                              wires: &SecondaryMap<VarId, u64>,
                              next_registers: &SecondaryMap<VarId, u64>,
                              written: &SecondaryMap<VarId, ()>|
             -> u64 {
                match value {
                    Value::Const(c) => c.value(),
                    Value::Var(v) => {
                        if function.vars[v].is_wire() {
                            wires.get(&v).copied().unwrap_or(0)
                        } else if written.contains_key(&v) {
                            next_registers.get(&v).copied().unwrap_or(0)
                        } else {
                            register_snapshot.get(&v).copied().unwrap_or(0)
                        }
                    }
                }
            };
            let guard_holds = |guard: &Guard,
                               wires: &SecondaryMap<VarId, u64>,
                               next_registers: &SecondaryMap<VarId, u64>,
                               written: &SecondaryMap<VarId, ()>|
             -> bool {
                guard.terms.iter().all(|(cond, polarity)| {
                    (read_fresh(*cond, wires, next_registers, written) != 0) == *polarity
                })
            };

            for &op_id in program_order {
                if self.schedule.op_state.get(&op_id) != Some(&state) {
                    continue;
                }
                let op = &function.ops[op_id];
                let guard = self.graph.guard_ref(op_id).unwrap_or(&unconditional);
                if !guard_holds(guard, wires, next_registers, written_this_state) {
                    continue;
                }
                let a = |i: usize| op.args.get(i).copied().unwrap_or(Value::word(0));
                let result: Option<u64> = match &op.kind {
                    OpKind::Add => Some(read(a(0), wires).wrapping_add(read(a(1), wires))),
                    OpKind::Sub => Some(read(a(0), wires).wrapping_sub(read(a(1), wires))),
                    OpKind::Mul => Some(read(a(0), wires).wrapping_mul(read(a(1), wires))),
                    OpKind::And => Some(read(a(0), wires) & read(a(1), wires)),
                    OpKind::Or => Some(read(a(0), wires) | read(a(1), wires)),
                    OpKind::Xor => Some(read(a(0), wires) ^ read(a(1), wires)),
                    OpKind::Not => Some(!read(a(0), wires)),
                    OpKind::Shl => Some(read(a(0), wires) << read(a(1), wires).min(63)),
                    OpKind::Shr => Some(read(a(0), wires) >> read(a(1), wires).min(63)),
                    OpKind::Eq => Some((read(a(0), wires) == read(a(1), wires)) as u64),
                    OpKind::Ne => Some((read(a(0), wires) != read(a(1), wires)) as u64),
                    OpKind::Lt => Some((read(a(0), wires) < read(a(1), wires)) as u64),
                    OpKind::Le => Some((read(a(0), wires) <= read(a(1), wires)) as u64),
                    OpKind::Gt => Some((read(a(0), wires) > read(a(1), wires)) as u64),
                    OpKind::Ge => Some((read(a(0), wires) >= read(a(1), wires)) as u64),
                    OpKind::Copy => Some(read(a(0), wires)),
                    OpKind::Select => Some(if read(a(0), wires) != 0 {
                        read(a(1), wires)
                    } else {
                        read(a(2), wires)
                    }),
                    OpKind::Slice { hi, lo } => {
                        Some((read(a(0), wires) >> lo) & Type::Bits(hi - lo + 1).mask())
                    }
                    OpKind::Concat => {
                        let low_width = match a(1) {
                            Value::Const(c) => c.ty().width(),
                            Value::Var(v) => function.vars[v].ty.width(),
                        };
                        Some((read(a(0), wires) << low_width) | read(a(1), wires))
                    }
                    OpKind::ArrayRead { array } => {
                        let index = read(a(0), wires);
                        let contents = array_snapshot.get(array).cloned().unwrap_or_default();
                        Some(
                            *contents
                                .get(index as usize)
                                .ok_or(RtlSimError::OutOfBounds {
                                    array: function.vars[*array].name.clone(),
                                    index,
                                })?,
                        )
                    }
                    OpKind::ArrayWrite { array } => {
                        let index = read(a(0), wires);
                        let value = read(a(1), wires) & function.vars[*array].ty.mask();
                        let name = function.vars[*array].name.clone();
                        let contents = next_arrays.get_or_insert_with(*array, Vec::new);
                        let slot = contents
                            .get_mut(index as usize)
                            .ok_or(RtlSimError::OutOfBounds { array: name, index })?;
                        *slot = value;
                        None
                    }
                    OpKind::Return => None,
                    OpKind::Call { callee } => {
                        return Err(RtlSimError::UnsupportedOp(format!("call to `{callee}`")))
                    }
                };
                if let (Some(dest), Some(value)) = (op.dest, result) {
                    let masked = value & function.vars[dest].ty.mask();
                    if function.vars[dest].is_wire() {
                        wires.insert(dest, masked);
                    } else {
                        next_registers.insert(dest, masked);
                        written_this_state.insert(dest, ());
                    }
                }
            }

            std::mem::swap(registers, next_registers);
            std::mem::swap(arrays, next_arrays);
        }

        let mut outcome = RtlOutcome {
            cycles: num_states,
            ..RtlOutcome::default()
        };
        for (var_id, var) in function.vars.iter() {
            if var.is_array() {
                if let Some(contents) = arrays.get(&var_id) {
                    outcome.arrays.insert(var.name.clone(), contents.clone());
                }
            } else if !var.is_wire() || var.direction != PortDirection::Internal {
                if let Some(&value) = registers.get(&var_id) {
                    outcome.scalars.insert(var.name.clone(), value);
                }
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, Interpreter, Program, Type};
    use spark_sched::{insert_wire_variables, schedule, Constraints, ResourceLibrary};

    /// Schedules `f` for a single cycle, inserts wire-variables and returns
    /// everything needed to simulate it.
    fn prepare(mut f: Function, period: f64) -> (Function, DependenceGraph, Schedule) {
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let mut sched =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(period)).unwrap();
        insert_wire_variables(&mut f, &mut sched);
        // Guards may have changed structurally (new blocks) — rebuild.
        let graph = DependenceGraph::build(&f).unwrap();
        (f, graph, sched)
    }

    fn chained_conditional() -> Function {
        // cond = a > 10; if (cond) { x = a + 1 } else { x = a - 1 }; out = x + b
        let mut b = FunctionBuilder::new("design");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let cond = b.var("cond", Type::Bool);
        let x = b.var("x", Type::Bits(8));
        let out = b.output("out", Type::Bits(8));
        b.assign(OpKind::Gt, cond, vec![Value::Var(a), Value::word(10)]);
        b.if_begin(Value::Var(cond));
        b.assign(OpKind::Add, x, vec![Value::Var(a), Value::word(1)]);
        b.else_begin();
        b.assign(OpKind::Sub, x, vec![Value::Var(a), Value::word(1)]);
        b.if_end();
        b.assign(OpKind::Add, out, vec![Value::Var(x), Value::Var(bb)]);
        b.finish()
    }

    #[test]
    fn rtl_matches_interpreter_on_single_cycle_design() {
        let original = chained_conditional();
        let (f, graph, sched) = prepare(original.clone(), 20.0);
        assert_eq!(sched.num_states, 1);

        let mut program = Program::new();
        program.add_function(original);
        for a in [0u64, 5, 11, 200, 255] {
            for b in [0u64, 3, 250] {
                let env = Env::new().with_scalar("a", a).with_scalar("b", b);
                let golden = Interpreter::new(&program).run("design", &env).unwrap();
                let rtl = RtlSimulator::new(&f, &graph, &sched).run(&env).unwrap();
                assert_eq!(golden.scalar("out"), rtl.scalar("out"), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn rtl_matches_interpreter_on_multi_cycle_design() {
        let original = chained_conditional();
        // Tight clock: comparator, adders spread over several states.
        let (f, graph, sched) = prepare(original.clone(), 2.5);
        assert!(sched.num_states > 1);
        let mut program = Program::new();
        program.add_function(original);
        for a in [7u64, 42] {
            let env = Env::new().with_scalar("a", a).with_scalar("b", 9);
            let golden = Interpreter::new(&program).run("design", &env).unwrap();
            let rtl = RtlSimulator::new(&f, &graph, &sched).run(&env).unwrap();
            assert_eq!(golden.scalar("out"), rtl.scalar("out"), "a={a}");
        }
    }

    #[test]
    fn without_wire_insertion_the_register_hazard_shows() {
        // Same design, scheduled into one state but *without* wire-variable
        // insertion: the chained read of `x` observes the stale register and
        // the result differs from the golden model — demonstrating why
        // Section 3.1.2 is necessary.
        let f = chained_conditional();
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(20.0)).unwrap();
        let env = Env::new().with_scalar("a", 20).with_scalar("b", 1);
        let rtl = RtlSimulator::new(&f, &graph, &sched).run(&env).unwrap();
        // golden would be (20+1)+1 = 22; the hazard yields 0+1 = 1.
        assert_ne!(rtl.scalar("out"), Some(22));
    }

    #[test]
    fn guarded_array_writes_commit_only_when_taken() {
        let mut b = FunctionBuilder::new("marks");
        let c = b.param("c", Type::Bool);
        let mark = b.output_array("Mark", Type::Bool, 4);
        b.if_begin(Value::Var(c));
        b.array_write(mark, Value::word(2), Value::bool(true));
        b.if_end();
        let f = b.finish();
        let (f, graph, sched) = prepare(f, 10.0);
        let sim = RtlSimulator::new(&f, &graph, &sched);
        let taken = sim.run(&Env::new().with_scalar("c", 1)).unwrap();
        assert_eq!(taken.array("Mark"), Some(&[0, 0, 1, 0][..]));
        let skipped = sim.run(&Env::new().with_scalar("c", 0)).unwrap();
        assert_eq!(skipped.array("Mark"), Some(&[0, 0, 0, 0][..]));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = FunctionBuilder::new("oob");
        let i = b.param("i", Type::Bits(8));
        let mark = b.output_array("Mark", Type::Bool, 2);
        b.array_write(mark, Value::Var(i), Value::bool(true));
        let f = b.finish();
        let (f, graph, sched) = prepare(f, 10.0);
        let err = RtlSimulator::new(&f, &graph, &sched)
            .run(&Env::new().with_scalar("i", 9))
            .unwrap_err();
        assert!(matches!(err, RtlSimError::OutOfBounds { .. }));
    }
}
