//! # spark-rtl — RTL generation, estimation and simulation
//!
//! The back end of the Spark HLS reproduction (Gupta et al., DAC 2002):
//!
//! * [`DatapathReport`] — structural summary and area/critical-path estimate
//!   of a scheduled, bound design (the quantity the benchmark harness
//!   reports for every figure of the paper);
//! * [`RtlSimulator`] — cycle-accurate simulation with register/wire
//!   semantics, used to check that the generated architecture behaves exactly
//!   like the golden behavioral description;
//! * [`VhdlEmitter`] — synthesizable register-transfer-level VHDL text, with
//!   the paper's mapping of registers to VHDL signals and wire-variables to
//!   VHDL variables (footnote 1).
//!
//! # Examples
//!
//! ```
//! use spark_bind::{Binding, LifetimeAnalysis};
//! use spark_ir::{FunctionBuilder, OpKind, Type, Value};
//! use spark_rtl::{DatapathReport, VhdlEmitter};
//! use spark_sched::{schedule, Constraints, Controller, DependenceGraph, ResourceLibrary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("incr");
//! let a = b.param("a", Type::Bits(8));
//! let y = b.output("y", Type::Bits(8));
//! b.assign(OpKind::Add, y, vec![Value::Var(a), Value::word(1)]);
//! let f = b.finish();
//!
//! let graph = DependenceGraph::build(&f)?;
//! let library = ResourceLibrary::new();
//! let sched = schedule(&f, &graph, &library, &Constraints::microprocessor_block(10.0))?;
//! let lifetimes = LifetimeAnalysis::compute(&f, &sched);
//! let binding = Binding::compute(&f, &sched, &lifetimes, &library);
//! let controller = Controller::build(&f, &graph, &sched);
//! let report = DatapathReport::build(&f, &sched, &binding, &controller, &library);
//! assert_eq!(report.states, 1);
//! let vhdl = VhdlEmitter::new(&f, &graph, &sched, &controller).emit();
//! assert!(vhdl.contains("entity incr"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod datapath;
mod sim;
mod vhdl;

pub use datapath::DatapathReport;
pub use sim::{RtlOutcome, RtlSimError, RtlSimulator};
pub use vhdl::VhdlEmitter;
