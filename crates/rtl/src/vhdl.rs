//! Register-transfer-level VHDL emission.
//!
//! Spark "takes a behavioral description in ANSI-C as input and generates
//! synthesizable register-transfer level VHDL" (Section 4). Footnote 1 of the
//! paper fixes the mapping this emitter follows: variables bound to registers
//! become VHDL *signals*, wire-variables become VHDL *variables* inside the
//! clocked process (so they can be read in the cycle they are written).

use spark_ir::{Function, OpKind, PortDirection, StorageClass, Value, VarId};
use spark_sched::{Controller, DependenceGraph, Schedule};

/// Emits synthesizable VHDL for a scheduled, bound function.
#[derive(Clone, Debug)]
pub struct VhdlEmitter<'a> {
    function: &'a Function,
    graph: &'a DependenceGraph,
    schedule: &'a Schedule,
    controller: &'a Controller,
}

impl<'a> VhdlEmitter<'a> {
    /// Creates an emitter.
    pub fn new(
        function: &'a Function,
        graph: &'a DependenceGraph,
        schedule: &'a Schedule,
        controller: &'a Controller,
    ) -> Self {
        VhdlEmitter {
            function,
            graph,
            schedule,
            controller,
        }
    }

    fn sanitized(&self, var: VarId) -> String {
        self.function.vars[var]
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect()
    }

    fn vector(&self, width: u16) -> String {
        if width == 1 {
            "std_logic".to_string()
        } else {
            format!("std_logic_vector({} downto 0)", width - 1)
        }
    }

    fn operand(&self, value: Value) -> String {
        match value {
            Value::Const(c) => {
                if c.ty().width() == 1 {
                    format!("'{}'", c.value())
                } else {
                    format!(
                        "std_logic_vector(to_unsigned({}, {}))",
                        c.value(),
                        c.ty().width()
                    )
                }
            }
            Value::Var(v) => {
                let var = &self.function.vars[v];
                if var.is_wire() {
                    format!("v_{}", self.sanitized(v))
                } else if var.direction == PortDirection::Input {
                    // Primary inputs are read straight from the entity port.
                    self.sanitized(v)
                } else {
                    format!("r_{}", self.sanitized(v))
                }
            }
        }
    }

    fn expression(&self, kind: &OpKind, args: &[Value]) -> String {
        let a = |i: usize| self.operand(args[i]);
        match kind {
            OpKind::Add => format!("std_logic_vector(unsigned({}) + unsigned({}))", a(0), a(1)),
            OpKind::Sub => format!("std_logic_vector(unsigned({}) - unsigned({}))", a(0), a(1)),
            OpKind::Mul => format!(
                "std_logic_vector(resize(unsigned({}) * unsigned({}), {}))",
                a(0),
                a(1),
                64
            ),
            OpKind::And => format!("{} and {}", a(0), a(1)),
            OpKind::Or => format!("{} or {}", a(0), a(1)),
            OpKind::Xor => format!("{} xor {}", a(0), a(1)),
            OpKind::Not => format!("not {}", a(0)),
            OpKind::Shl => format!(
                "std_logic_vector(shift_left(unsigned({}), to_integer(unsigned({}))))",
                a(0),
                a(1)
            ),
            OpKind::Shr => format!(
                "std_logic_vector(shift_right(unsigned({}), to_integer(unsigned({}))))",
                a(0),
                a(1)
            ),
            OpKind::Eq => format!("bool_to_sl(unsigned({}) = unsigned({}))", a(0), a(1)),
            OpKind::Ne => format!("bool_to_sl(unsigned({}) /= unsigned({}))", a(0), a(1)),
            OpKind::Lt => format!("bool_to_sl(unsigned({}) < unsigned({}))", a(0), a(1)),
            OpKind::Le => format!("bool_to_sl(unsigned({}) <= unsigned({}))", a(0), a(1)),
            OpKind::Gt => format!("bool_to_sl(unsigned({}) > unsigned({}))", a(0), a(1)),
            OpKind::Ge => format!("bool_to_sl(unsigned({}) >= unsigned({}))", a(0), a(1)),
            OpKind::Copy => a(0),
            OpKind::Select => format!("{} when {} = '1' else {}", a(1), a(0), a(2)),
            OpKind::Slice { hi, lo } => format!("{}({} downto {})", a(0), hi, lo),
            OpKind::Concat => format!("{} & {}", a(0), a(1)),
            OpKind::ArrayRead { array } => match args[0] {
                Value::Const(c) => {
                    let prefix = if self.function.vars[*array].direction == PortDirection::Input {
                        String::new()
                    } else {
                        "r_".to_string()
                    };
                    format!("{prefix}{}_{}", self.sanitized(*array), c.value())
                }
                _ => format!("array_read({}, {})", self.sanitized(*array), a(0)),
            },
            OpKind::ArrayWrite { .. } | OpKind::Call { .. } | OpKind::Return => String::new(),
        }
    }

    /// Generates the VHDL entity/architecture pair for the design.
    pub fn emit(&self) -> String {
        let f = self.function;
        let name = &f.name;
        let mut out = String::new();
        out.push_str(
            "-- Generated by the Spark HLS reproduction (DAC 2002 coordinated transformations)\n",
        );
        out.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n");

        // Entity: expand arrays element-wise so every port is a plain vector.
        out.push_str(&format!(
            "entity {name} is\n  port (\n    clk : in std_logic;\n    rst : in std_logic"
        ));
        for (var_id, var) in f.vars.iter() {
            let direction = match var.direction {
                PortDirection::Input => "in",
                PortDirection::Output => "out",
                PortDirection::Internal => continue,
            };
            match var.storage {
                StorageClass::Array { length } => {
                    for element in 0..length {
                        out.push_str(&format!(
                            ";\n    {}_{} : {} {}",
                            self.sanitized(var_id),
                            element,
                            direction,
                            self.vector(var.ty.width())
                        ));
                    }
                }
                _ => out.push_str(&format!(
                    ";\n    {} : {} {}",
                    self.sanitized(var_id),
                    direction,
                    self.vector(var.ty.width())
                )),
            }
        }
        out.push_str("\n  );\nend entity;\n\n");

        // Architecture: registers are signals, wire-variables are variables.
        out.push_str(&format!("architecture spark of {name} is\n"));
        out.push_str(&format!(
            "  signal state : integer range 0 to {};\n",
            self.controller.num_states().saturating_sub(1)
        ));
        for (var_id, var) in f.vars.iter() {
            // Inputs come straight from the ports; wire-variables become
            // process variables. Everything else (internal registers and the
            // registers backing output ports) is a signal.
            if var.direction == PortDirection::Input || var.is_wire() {
                continue;
            }
            match var.storage {
                StorageClass::Array { length } => {
                    for element in 0..length {
                        out.push_str(&format!(
                            "  signal r_{}_{} : {};\n",
                            self.sanitized(var_id),
                            element,
                            self.vector(var.ty.width())
                        ));
                    }
                }
                _ => out.push_str(&format!(
                    "  signal r_{} : {};\n",
                    self.sanitized(var_id),
                    self.vector(var.ty.width())
                )),
            }
        }
        out.push_str("begin\n  datapath : process(clk)\n");
        for (var_id, var) in f.vars.iter() {
            if var.is_wire() {
                out.push_str(&format!(
                    "    variable v_{} : {};\n",
                    self.sanitized(var_id),
                    self.vector(var.ty.width())
                ));
            }
        }
        out.push_str(
            "  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        state <= 0;\n",
        );
        out.push_str("      else\n        case state is\n");
        for step in &self.controller.steps {
            out.push_str(&format!("          when {} =>\n", step.index));
            for scheduled in &step.ops {
                let op = &f.ops[scheduled.op];
                if matches!(op.kind, OpKind::Return) {
                    continue;
                }
                let indent = "            ";
                let guard_open: String = scheduled
                    .guard
                    .terms
                    .iter()
                    .map(|(cond, polarity)| {
                        format!(
                            "{indent}if {} = '{}' then\n",
                            self.operand(*cond),
                            if *polarity { 1 } else { 0 }
                        )
                    })
                    .collect();
                let guard_close = format!("{indent}end if;\n").repeat(scheduled.guard.terms.len());
                out.push_str(&guard_open);
                match &op.kind {
                    OpKind::ArrayWrite { array } => {
                        let target = match op.args[0] {
                            Value::Const(c) => {
                                format!("r_{}_{}", self.sanitized(*array), c.value())
                            }
                            _ => format!("-- dynamic write to {}", self.sanitized(*array)),
                        };
                        out.push_str(&format!(
                            "{indent}{target} <= {};\n",
                            self.operand(op.args[1])
                        ));
                    }
                    kind => {
                        if let Some(dest) = op.dest {
                            let rhs = self.expression(kind, &op.args);
                            if f.vars[dest].is_wire() {
                                out.push_str(&format!(
                                    "{indent}v_{} := {rhs};\n",
                                    self.sanitized(dest)
                                ));
                            } else {
                                out.push_str(&format!(
                                    "{indent}r_{} <= {rhs};\n",
                                    self.sanitized(dest)
                                ));
                            }
                        }
                    }
                }
                out.push_str(&guard_close);
            }
            let next = (step.index + 1) % self.controller.num_states().max(1);
            out.push_str(&format!("            state <= {next};\n"));
        }
        out.push_str("          when others => state <= 0;\n        end case;\n      end if;\n    end if;\n  end process;\n");

        // Drive output ports from their registers.
        for (var_id, var) in f.vars.iter() {
            if var.direction != PortDirection::Output {
                continue;
            }
            match var.storage {
                StorageClass::Array { length } => {
                    for element in 0..length {
                        out.push_str(&format!(
                            "  {0}_{1} <= r_{0}_{1};\n",
                            self.sanitized(var_id),
                            element
                        ));
                    }
                }
                _ => out.push_str(&format!("  {0} <= r_{0};\n", self.sanitized(var_id))),
            }
        }
        out.push_str("end architecture;\n");
        let _ = (self.graph, self.schedule);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_ir::{FunctionBuilder, Type};
    use spark_sched::{insert_wire_variables, schedule, Constraints, ResourceLibrary};

    fn emit(mut f: Function) -> String {
        let graph = DependenceGraph::build(&f).unwrap();
        let lib = ResourceLibrary::new();
        let mut sched =
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(20.0)).unwrap();
        insert_wire_variables(&mut f, &mut sched);
        let graph = DependenceGraph::build(&f).unwrap();
        let controller = Controller::build(&f, &graph, &sched);
        VhdlEmitter::new(&f, &graph, &sched, &controller).emit()
    }

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("calc");
        let a = b.param("a", Type::Bits(8));
        let cond = b.param("cond", Type::Bool);
        let mark = b.output_array("Mark", Type::Bool, 2);
        let result = b.output("result", Type::Bits(8));
        let t = b.var("t", Type::Bits(8));
        b.assign(OpKind::Add, t, vec![Value::Var(a), Value::word(1)]);
        b.if_begin(Value::Var(cond));
        b.assign(OpKind::Add, result, vec![Value::Var(t), Value::word(2)]);
        b.array_write(mark, Value::word(0), Value::bool(true));
        b.else_begin();
        b.copy(result, Value::Var(t));
        b.if_end();
        b.finish()
    }

    #[test]
    fn emits_entity_with_expanded_ports() {
        let vhdl = emit(sample());
        assert!(vhdl.contains("entity calc is"));
        assert!(vhdl.contains("clk : in std_logic"));
        assert!(vhdl.contains("a : in std_logic_vector(7 downto 0)"));
        assert!(vhdl.contains("Mark_0 : out std_logic"));
        assert!(vhdl.contains("Mark_1 : out std_logic"));
        assert!(vhdl.contains("result : out std_logic_vector(7 downto 0)"));
    }

    #[test]
    fn registers_are_signals_and_wires_are_variables() {
        // Footnote 1 of the paper: registers -> VHDL signals,
        // wire-variables -> VHDL variables.
        let vhdl = emit(sample());
        assert!(
            vhdl.contains("signal r_t"),
            "the chained temporary t is a register signal candidate"
        );
        assert!(
            vhdl.contains("variable v_w_t_0"),
            "the inserted wire-variable becomes a process variable"
        );
        assert!(
            vhdl.contains(":="),
            "wire-variables are assigned with variable assignment"
        );
        assert!(
            vhdl.contains("<="),
            "registers are assigned with signal assignment"
        );
    }

    #[test]
    fn guarded_ops_are_wrapped_in_conditions() {
        let vhdl = emit(sample());
        assert!(vhdl.contains("if cond = '1' then"));
        assert!(vhdl.contains("if cond = '0' then"));
        assert!(vhdl.contains("end if;"));
    }

    #[test]
    fn fsm_case_structure_present() {
        let vhdl = emit(sample());
        assert!(vhdl.contains("case state is"));
        assert!(vhdl.contains("when 0 =>"));
        assert!(vhdl.contains("state <= 0;"));
    }
}
