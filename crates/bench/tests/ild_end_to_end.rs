//! End-to-end reproduction of the paper's case study (Sections 5–6).
//!
//! The instruction length decoder is synthesized by the coordinated flow and
//! checked at every level against the golden software model: interpreted
//! behavioral IR, interpreted IR after every transformation stage, and the
//! cycle-accurate RTL simulation of the generated single-cycle architecture
//! (Figure 15).

use spark_core::{synthesize, FlowOptions};
use spark_ild::{
    buffer_env, build_ild_natural_program, build_ild_program, decode_marks, instruction_count,
    long_instruction_buffer, marks_from_outcome, mixed_instruction_buffer, random_buffer,
    short_instruction_buffer, ILD_FUNCTION, ILD_NATURAL_FUNCTION,
};
use spark_ir::Interpreter;

fn golden_window(buffer: &[u8], n: usize) -> Vec<bool> {
    decode_marks(buffer, n)[1..=n].to_vec()
}

fn rtl_marks(result: &spark_core::SynthesisResult, buffer: &[u8], n: usize) -> Vec<bool> {
    let rtl = result
        .simulate(&buffer_env(buffer))
        .expect("RTL simulation succeeds");
    let marks = rtl.array("Mark").expect("Mark output present");
    (1..=n).map(|i| marks[i] != 0).collect()
}

#[test]
fn single_cycle_ild_matches_golden_model_on_random_buffers() {
    for n in [4usize, 8, 16] {
        let program = build_ild_program(n as u32);
        let result = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(500.0),
        )
        .expect("synthesis succeeds");
        assert!(
            result.is_single_cycle(),
            "n={n}: the ILD must fit a single cycle"
        );
        // One batch simulation over the whole seeded workload (the batch
        // entry point reuses the simulator's value tables across buffers).
        let buffers: Vec<Vec<u8>> = (0..10u64).map(|seed| random_buffer(n, seed)).collect();
        let envs: Vec<_> = buffers.iter().map(|b| buffer_env(b)).collect();
        let outcomes = result.simulate_batch(&envs).expect("batch simulation");
        for (seed, (buffer, rtl)) in buffers.iter().zip(outcomes).enumerate() {
            let marks = rtl.array("Mark").expect("Mark output present");
            let got: Vec<bool> = (1..=n).map(|i| marks[i] != 0).collect();
            assert_eq!(got, golden_window(buffer, n), "n={n} seed={seed}");
        }
    }
}

#[test]
fn single_cycle_ild_matches_golden_model_on_extreme_workloads() {
    let n = 16usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    for buffer in [
        short_instruction_buffer(n),
        long_instruction_buffer(n),
        mixed_instruction_buffer(n, 11),
    ] {
        assert_eq!(rtl_marks(&result, &buffer, n), golden_window(&buffer, n));
    }
}

#[test]
fn natural_description_synthesizes_through_source_level_transformation() {
    // Figure 16 form: the while(1) description goes through while_to_for,
    // then the same coordinated flow, and still matches the golden model.
    let n = 8usize;
    let program = build_ild_natural_program(n as u32);
    let result = synthesize(
        &program,
        ILD_NATURAL_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .expect("natural description synthesizes");
    assert!(result.is_single_cycle());
    for seed in [1u64, 5, 9] {
        let buffer = random_buffer(n, seed);
        assert_eq!(
            rtl_marks(&result, &buffer, n),
            golden_window(&buffer, n),
            "seed={seed}"
        );
    }
}

#[test]
fn behavioral_description_matches_golden_model_before_any_transformation() {
    let n = 12usize;
    let program = build_ild_program(n as u32);
    let interp = Interpreter::new(&program);
    for seed in 0..5u64 {
        let buffer = random_buffer(n, seed);
        let outcome = interp.run(ILD_FUNCTION, &buffer_env(&buffer)).unwrap();
        assert_eq!(marks_from_outcome(&outcome, n), golden_window(&buffer, n));
    }
}

#[test]
fn baseline_and_spark_flows_agree_functionally() {
    // The ASIC baseline takes many cycles but must compute the same marks.
    let n = 8usize;
    let program = build_ild_program(n as u32);
    let spark = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let baseline = synthesize(&program, ILD_FUNCTION, &FlowOptions::asic_baseline(20.0)).unwrap();
    assert!(baseline.report.states > spark.report.states);
    for seed in [2u64, 4] {
        let buffer = random_buffer(n, seed);
        assert_eq!(rtl_marks(&spark, &buffer, n), golden_window(&buffer, n));
        assert_eq!(rtl_marks(&baseline, &buffer, n), golden_window(&buffer, n));
    }
}

#[test]
fn generated_vhdl_describes_the_single_cycle_architecture() {
    let n = 4usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let vhdl = result.vhdl();
    assert!(vhdl.contains("entity ild is"));
    // One-hot mark outputs and the expanded byte ports of the buffer.
    for i in 1..=n {
        assert!(vhdl.contains(&format!("Mark_{i} : out std_logic")));
        assert!(vhdl.contains(&format!("buffer_{i} : in std_logic_vector(7 downto 0)")));
    }
    // Single-cycle controller: only state 0 exists.
    assert!(vhdl.contains("when 0 =>"));
    assert!(!vhdl.contains("when 1 =>"));
}

use spark_bench::corpus::synthesis_fingerprint;

/// The dense-map scheduler must keep producing byte-identical schedules,
/// bindings and `DatapathReport`s to the seed (BTreeMap-based) implementation.
/// The constants below were captured from the seed build of this repository
/// on the ILD suite; any behavioural drift in scheduling, binding or
/// reporting shows up as a fingerprint mismatch.
#[test]
fn dense_map_scheduler_is_byte_identical_to_seed_behavior() {
    let golden: [(u32, u64, u64); 3] = [
        (4, 0x73de636006e5f576, 0xbce74b12e9252c2e),
        (8, 0x79d06c3a6a4aba09, 0x1968396cdcefea81),
        (16, 0xb582675d4c3be87f, 0xa1675c0cae1c494d),
    ];
    for (n, spark_expected, baseline_expected) in golden {
        let program = build_ild_program(n);
        let spark = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(2000.0),
        )
        .expect("coordinated synthesis succeeds");
        assert_eq!(
            synthesis_fingerprint(&spark),
            spark_expected,
            "coordinated flow drifted from seed behavior at n={n}"
        );
        let baseline = synthesize(&program, ILD_FUNCTION, &FlowOptions::asic_baseline(20.0))
            .expect("baseline synthesis succeeds");
        assert_eq!(
            synthesis_fingerprint(&baseline),
            baseline_expected,
            "baseline flow drifted from seed behavior at n={n}"
        );
    }
}

/// The parallel clock sweep must return points in input order with the same
/// reports the serial per-point flow produces.
#[test]
fn parallel_sweep_matches_serial_synthesis_point_by_point() {
    let n = 8u32;
    let program = build_ild_program(n);
    let periods = [0.1f64, 20.0, 100.0, 500.0, 2000.0];
    let points =
        spark_core::sweep_clock_period(&program, ILD_FUNCTION, &periods).expect("sweep runs");
    assert_eq!(points.len(), periods.len());
    for (&period, point) in periods.iter().zip(&points) {
        assert_eq!(point.clock_period_ns, period, "points stay in input order");
        let serial = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(period),
        );
        match serial {
            Ok(result) => assert_eq!(
                point.report.as_ref(),
                Some(&result.report),
                "sweep report differs from serial synthesis at {period} ns"
            ),
            Err(_) => assert!(point.report.is_none(), "infeasible point at {period} ns"),
        }
    }
}

#[test]
fn instruction_density_extremes_are_reflected_in_the_marks() {
    let n = 22usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let dense = rtl_marks(&result, &short_instruction_buffer(n), n);
    let sparse = rtl_marks(&result, &long_instruction_buffer(n), n);
    assert_eq!(dense.iter().filter(|&&m| m).count(), n);
    assert_eq!(sparse.iter().filter(|&&m| m).count(), 2);
    let golden = decode_marks(&long_instruction_buffer(n), n);
    assert_eq!(instruction_count(&golden), 2);
}
