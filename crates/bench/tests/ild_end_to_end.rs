//! End-to-end reproduction of the paper's case study (Sections 5–6).
//!
//! The instruction length decoder is synthesized by the coordinated flow and
//! checked at every level against the golden software model: interpreted
//! behavioral IR, interpreted IR after every transformation stage, and the
//! cycle-accurate RTL simulation of the generated single-cycle architecture
//! (Figure 15).

use spark_core::{synthesize, FlowOptions};
use spark_ild::{
    buffer_env, build_ild_natural_program, build_ild_program, decode_marks, instruction_count,
    long_instruction_buffer, marks_from_outcome, mixed_instruction_buffer, random_buffer,
    short_instruction_buffer, ILD_FUNCTION, ILD_NATURAL_FUNCTION,
};
use spark_ir::Interpreter;

fn golden_window(buffer: &[u8], n: usize) -> Vec<bool> {
    decode_marks(buffer, n)[1..=n].to_vec()
}

fn rtl_marks(result: &spark_core::SynthesisResult, buffer: &[u8], n: usize) -> Vec<bool> {
    let rtl = result
        .simulate(&buffer_env(buffer))
        .expect("RTL simulation succeeds");
    let marks = rtl.array("Mark").expect("Mark output present");
    (1..=n).map(|i| marks[i] != 0).collect()
}

#[test]
fn single_cycle_ild_matches_golden_model_on_random_buffers() {
    for n in [4usize, 8, 16] {
        let program = build_ild_program(n as u32);
        let result = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(500.0),
        )
        .expect("synthesis succeeds");
        assert!(
            result.is_single_cycle(),
            "n={n}: the ILD must fit a single cycle"
        );
        for seed in 0..10u64 {
            let buffer = random_buffer(n, seed);
            assert_eq!(
                rtl_marks(&result, &buffer, n),
                golden_window(&buffer, n),
                "n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn single_cycle_ild_matches_golden_model_on_extreme_workloads() {
    let n = 16usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    for buffer in [
        short_instruction_buffer(n),
        long_instruction_buffer(n),
        mixed_instruction_buffer(n, 11),
    ] {
        assert_eq!(rtl_marks(&result, &buffer, n), golden_window(&buffer, n));
    }
}

#[test]
fn natural_description_synthesizes_through_source_level_transformation() {
    // Figure 16 form: the while(1) description goes through while_to_for,
    // then the same coordinated flow, and still matches the golden model.
    let n = 8usize;
    let program = build_ild_natural_program(n as u32);
    let result = synthesize(
        &program,
        ILD_NATURAL_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .expect("natural description synthesizes");
    assert!(result.is_single_cycle());
    for seed in [1u64, 5, 9] {
        let buffer = random_buffer(n, seed);
        assert_eq!(
            rtl_marks(&result, &buffer, n),
            golden_window(&buffer, n),
            "seed={seed}"
        );
    }
}

#[test]
fn behavioral_description_matches_golden_model_before_any_transformation() {
    let n = 12usize;
    let program = build_ild_program(n as u32);
    let interp = Interpreter::new(&program);
    for seed in 0..5u64 {
        let buffer = random_buffer(n, seed);
        let outcome = interp.run(ILD_FUNCTION, &buffer_env(&buffer)).unwrap();
        assert_eq!(marks_from_outcome(&outcome, n), golden_window(&buffer, n));
    }
}

#[test]
fn baseline_and_spark_flows_agree_functionally() {
    // The ASIC baseline takes many cycles but must compute the same marks.
    let n = 8usize;
    let program = build_ild_program(n as u32);
    let spark = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let baseline = synthesize(&program, ILD_FUNCTION, &FlowOptions::asic_baseline(20.0)).unwrap();
    assert!(baseline.report.states > spark.report.states);
    for seed in [2u64, 4] {
        let buffer = random_buffer(n, seed);
        assert_eq!(rtl_marks(&spark, &buffer, n), golden_window(&buffer, n));
        assert_eq!(rtl_marks(&baseline, &buffer, n), golden_window(&buffer, n));
    }
}

#[test]
fn generated_vhdl_describes_the_single_cycle_architecture() {
    let n = 4usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let vhdl = result.vhdl();
    assert!(vhdl.contains("entity ild is"));
    // One-hot mark outputs and the expanded byte ports of the buffer.
    for i in 1..=n {
        assert!(vhdl.contains(&format!("Mark_{i} : out std_logic")));
        assert!(vhdl.contains(&format!("buffer_{i} : in std_logic_vector(7 downto 0)")));
    }
    // Single-cycle controller: only state 0 exists.
    assert!(vhdl.contains("when 0 =>"));
    assert!(!vhdl.contains("when 1 =>"));
}

#[test]
fn instruction_density_extremes_are_reflected_in_the_marks() {
    let n = 22usize;
    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();
    let dense = rtl_marks(&result, &short_instruction_buffer(n), n);
    let sparse = rtl_marks(&result, &long_instruction_buffer(n), n);
    assert_eq!(dense.iter().filter(|&&m| m).count(), n);
    assert_eq!(sparse.iter().filter(|&&m| m).count(), 2);
    let golden = decode_marks(&long_instruction_buffer(n), n);
    assert_eq!(instruction_count(&golden), 2);
}
