//! Smoke test for the paper-reproduction driver: runs the exact entry point
//! of the `reproduce` binary on the smallest ILD size, so the figure
//! pipeline cannot rot between manual runs.

use spark_bench::experiments::{run_all, ReproduceOptions};

#[test]
fn reproduce_driver_runs_on_smallest_ild() {
    // Runs every experiment (E1, E2-E4, E5-E8, E9, E10, ablation) end to
    // end; any panic or failed synthesis inside the driver fails the test.
    run_all(&ReproduceOptions::smoke());
}

#[test]
fn smoke_options_are_a_strict_subset_of_the_paper_sweep() {
    let paper = ReproduceOptions::paper();
    let smoke = ReproduceOptions::smoke();
    assert!(smoke.sizes.iter().all(|n| paper.sizes.contains(n)));
    assert!(smoke.detail_n <= paper.detail_n);
    assert!(smoke
        .natural_sizes
        .iter()
        .all(|n| paper.natural_sizes.contains(n)));
}
