//! Property-based tests over the core invariants of the reproduction.

use std::sync::OnceLock;

use proptest::prelude::*;
use spark_core::{synthesize, transform_program, FlowOptions, SynthesisResult};
use spark_ild::{buffer_env, build_ild_program, decode_marks, ILD_FUNCTION};
use spark_ir::{
    verify, DefUseGraph, Env, Function, FunctionBuilder, Interpreter, OpKind, Program, Type, Value,
};
use spark_sched::{
    insert_wire_variables_logged, schedule, Constraints, DependenceGraph, ResourceLibrary,
};
use spark_transforms as xf;

// ---------------------------------------------------------------------------
// Random structured-program generation for the def-use / worklist properties.
// ---------------------------------------------------------------------------

/// Builds a deterministic random function from a byte script: a mix of
/// straight-line arithmetic over a growing variable pool, conditionals,
/// small counted loops, repeated expressions (CSE fodder), constant copies
/// (const-prop fodder) and variable copies (copy-prop fodder), ending in
/// writes to primary outputs so not everything is dead.
fn build_scripted_function(script: &[u8]) -> Function {
    let mut b = FunctionBuilder::new("gen");
    let p0 = b.param("p0", Type::Bits(8));
    let p1 = b.param("p1", Type::Bits(8));
    let cond = b.param("cond", Type::Bool);
    let out0 = b.output("out0", Type::Bits(8));
    let out1 = b.output("out1", Type::Bits(8));
    let mut pool = vec![p0, p1];
    let mut depth = 0usize;
    let mut loops = 0usize;

    let mut bytes = script.iter().copied();
    while let Some(choice) = bytes.next() {
        let a = bytes.next().unwrap_or(1);
        let c = bytes.next().unwrap_or(2);
        let pick = |sel: u8, pool: &[spark_ir::VarId]| pool[sel as usize % pool.len()];
        match choice % 10 {
            // Fresh computation over the pool.
            0..=2 => {
                let kinds = [
                    OpKind::Add,
                    OpKind::Sub,
                    OpKind::Mul,
                    OpKind::And,
                    OpKind::Xor,
                ];
                let kind = kinds[c as usize % kinds.len()].clone();
                let dest = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                let lhs = Value::Var(pick(a, &pool));
                let rhs = if c % 3 == 0 {
                    Value::word(u64::from(c % 7))
                } else {
                    Value::Var(pick(c, &pool))
                };
                b.assign(kind, dest, vec![lhs, rhs]);
                pool.push(dest);
            }
            // A constant copy (constant-propagation fodder).
            3 => {
                let dest = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                b.copy(dest, Value::word(u64::from(a % 16)));
                pool.push(dest);
            }
            // A variable copy (copy-propagation fodder).
            4 => {
                let dest = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                b.copy(dest, Value::Var(pick(a, &pool)));
                pool.push(dest);
            }
            // A deliberately repeated expression (CSE fodder).
            5 => {
                let lhs = Value::Var(pick(a, &pool));
                let rhs = Value::Var(pick(c, &pool));
                let d1 = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                b.assign(OpKind::Add, d1, vec![lhs, rhs]);
                pool.push(d1);
                let d2 = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                b.assign(OpKind::Add, d2, vec![lhs, rhs]);
                pool.push(d2);
            }
            // Open a conditional (bounded nesting).
            6 if depth < 2 => {
                b.if_begin(Value::Var(cond));
                depth += 1;
            }
            // Else-branch or close of the innermost conditional.
            7 if depth > 0 => {
                if a % 2 == 0 {
                    b.else_begin();
                }
                b.if_end();
                depth -= 1;
            }
            // A small counted loop accumulating into a fresh variable.
            8 if depth == 0 && loops < 2 => {
                let i = b.var(&format!("i{loops}"), Type::Bits(8));
                let acc = b.var(&format!("v{}", pool.len()), Type::Bits(8));
                b.copy(acc, Value::Var(pick(a, &pool)));
                b.for_begin(i, 0, Value::word(u64::from(c % 3) + 1), 1);
                b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
                b.loop_end();
                pool.push(acc);
                loops += 1;
            }
            // Write an output from the pool.
            _ => {
                let dest = if a % 2 == 0 { out0 } else { out1 };
                b.copy(dest, Value::Var(pick(c, &pool)));
            }
        }
    }
    while depth > 0 {
        b.if_end();
        depth -= 1;
    }
    // Always observe the two most recent pool values.
    b.copy(out0, Value::Var(pool[pool.len() - 1]));
    b.copy(out1, Value::Var(pool[pool.len() - 2]));
    b.finish()
}

/// The fine-grain clean-up sequence of `transform_program`, expressed with
/// the stand-alone full-rescan entry points (each pass builds fresh analyses
/// and examines everything) — the reference the worklist pipeline must
/// match.
fn reference_cleanup(f: &mut Function) {
    xf::constant_propagation(f);
    xf::copy_propagation(f);
    xf::common_subexpression_elimination(f);
    xf::dead_code_elimination(f);
    xf::constant_propagation(f);
    xf::copy_propagation(f);
    xf::dead_code_elimination(f);
}

/// Options running only the fine-grain clean-up (all coarse passes off).
fn fine_only_options() -> FlowOptions {
    let mut options = FlowOptions::microprocessor_block(100.0);
    options.while_to_for = false;
    options.inline = false;
    options.speculate = false;
    options.unroll = false;
    options
}

const ILD_N: usize = 8;

fn synthesized_ild() -> &'static SynthesisResult {
    static RESULT: OnceLock<SynthesisResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        let program = build_ild_program(ILD_N as u32);
        synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(500.0),
        )
        .expect("ILD synthesis succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synthesized single-cycle ILD equals the golden software decoder on
    /// arbitrary instruction buffers.
    #[test]
    fn synthesized_ild_equals_golden_on_arbitrary_buffers(bytes in proptest::collection::vec(any::<u8>(), ILD_N)) {
        let mut buffer = vec![0u8; ILD_N + 4];
        buffer[1..=ILD_N].copy_from_slice(&bytes);
        let golden = decode_marks(&buffer, ILD_N);
        let rtl = synthesized_ild().simulate(&buffer_env(&buffer)).expect("simulation succeeds");
        let marks = rtl.array("Mark").expect("Mark present");
        for i in 1..=ILD_N {
            prop_assert_eq!(marks[i] != 0, golden[i], "byte {}", i);
        }
    }

    /// The fine-grain clean-up passes preserve the observable behaviour of a
    /// small parameterised conditional accumulator, for arbitrary inputs and
    /// arbitrary constants baked into the code.
    #[test]
    fn cleanup_passes_preserve_semantics(a in 0u64..256, b in 0u64..256, k in 0u64..16, c in proptest::bool::ANY) {
        let mut builder = FunctionBuilder::new("prog");
        let av = builder.param("a", Type::Bits(8));
        let bv = builder.param("b", Type::Bits(8));
        let cv = builder.param("c", Type::Bool);
        let out = builder.output("out", Type::Bits(8));
        let t1 = builder.var("t1", Type::Bits(8));
        let t2 = builder.var("t2", Type::Bits(8));
        builder.assign(OpKind::Add, t1, vec![Value::Var(av), Value::word(k)]);
        builder.assign(OpKind::Add, t2, vec![Value::Var(av), Value::word(k)]);
        builder.if_begin(Value::Var(cv));
        builder.assign(OpKind::Add, out, vec![Value::Var(t1), Value::Var(bv)]);
        builder.else_begin();
        builder.assign(OpKind::Sub, out, vec![Value::Var(t2), Value::Var(bv)]);
        builder.if_end();
        let original = builder.finish();

        let mut transformed = original.clone();
        xf::constant_propagation(&mut transformed);
        xf::common_subexpression_elimination(&mut transformed);
        xf::copy_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        xf::speculate(&mut transformed);
        xf::copy_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        prop_assert!(verify(&transformed).is_ok());

        let env = Env::new()
            .with_scalar("a", a)
            .with_scalar("b", b)
            .with_scalar("c", c as u64);
        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(transformed);
        let before = Interpreter::new(&p0).run("prog", &env).unwrap();
        let after = Interpreter::new(&p1).run("prog", &env).unwrap();
        prop_assert_eq!(before.scalar("out"), after.scalar("out"));
    }

    /// Loop unrolling followed by constant propagation preserves the value of
    /// an accumulation loop for arbitrary bounds and increments.
    #[test]
    fn unrolling_preserves_accumulation(n in 1u64..24, step in 1u64..5, init in 0u64..100) {
        let build = || {
            let mut b = FunctionBuilder::new("acc");
            let i = b.var("i", Type::Bits(32));
            let acc = b.output("acc", Type::Bits(32));
            b.copy(acc, Value::word(init));
            b.for_begin(i, 1, Value::word(n), step as i64);
            b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
            b.loop_end();
            b.finish()
        };
        let original = build();
        let mut transformed = build();
        xf::unroll_all_loops(&mut transformed);
        xf::constant_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        prop_assert_eq!(transformed.loop_count(), 0);
        prop_assert!(verify(&transformed).is_ok());

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(transformed);
        let before = Interpreter::new(&p0).run("acc", &Env::new()).unwrap();
        let after = Interpreter::new(&p1).run("acc", &Env::new()).unwrap();
        prop_assert_eq!(before.scalar("acc"), after.scalar("acc"));
    }

    /// The length encoding invariant the whole case study rests on: every
    /// instruction is 1..=11 bytes long.
    #[test]
    fn encoding_length_bounds(b1 in any::<u8>(), b2 in any::<u8>(), b3 in any::<u8>(), b4 in any::<u8>()) {
        let len = spark_ild::encoding::calculate_length(b1, b2, b3, b4);
        prop_assert!((1..=spark_ild::encoding::MAX_INSTRUCTION_LENGTH).contains(&len));
    }

    /// The incrementally-maintained `DefUseGraph` equals a from-scratch
    /// rebuild after every fine-grain pass, on arbitrary generated programs
    /// (conditionals, loops, copies, repeated expressions). The pass-internal
    /// debug check asserts the same thing mid-run; this property also pins it
    /// at the suite level, over the wrapper entry points.
    #[test]
    fn defuse_graph_stays_consistent_through_every_pass(
        script in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let mut f = build_scripted_function(&script);
        xf::unroll_all_loops(&mut f);
        let mut state = xf::FineState::new(&f);
        let all = f.live_ops();
        xf::constant_propagation_seeded(&mut f, &mut state, &all);
        prop_assert!(state.graph.consistency_errors(&f).is_empty());
        let all = f.live_ops();
        xf::copy_propagation_seeded(&mut f, &mut state, &all);
        prop_assert!(state.graph.consistency_errors(&f).is_empty());
        xf::common_subexpression_elimination_seeded(&mut f, &mut state, None);
        prop_assert!(state.graph.consistency_errors(&f).is_empty());
        xf::dead_code_elimination_seeded(&mut f, &mut state, None);
        prop_assert!(state.graph.consistency_errors(&f).is_empty());
        prop_assert!(verify(&f).is_ok());
        // And the maintained graph answers queries identically to a fresh one.
        let fresh = DefUseGraph::compute(&f);
        for op in f.live_ops() {
            prop_assert_eq!(state.graph.block_of(op), fresh.block_of(op));
        }
    }

    /// The worklist-driven pipeline (shared analyses, touched-op seeding, as
    /// driven by the `spark-core` pass manager) produces the same final IR as
    /// the full-rescan reference sequence, and preserves interpreter
    /// semantics, on arbitrary generated programs.
    #[test]
    fn worklist_pipeline_matches_full_rescan_reference(
        script in proptest::collection::vec(any::<u8>(), 96),
        p0 in 0u64..256, p1 in 0u64..256, cond in proptest::bool::ANY,
    ) {
        let original = build_scripted_function(&script);

        // Reference: stand-alone full-rescan passes in pipeline order.
        let mut reference = original.clone();
        xf::unroll_all_loops(&mut reference);
        reference_cleanup(&mut reference);

        // Worklist pipeline: the pass manager's seeded fine-grain phase.
        let mut program = Program::new();
        program.add_function(original.clone());
        let mut options = fine_only_options();
        options.unroll = true;
        let transformed = transform_program(&program, "gen", &options).unwrap();
        let managed = transformed.program.function("gen").unwrap();

        // Identical final IR: same printed function, op for op.
        prop_assert_eq!(reference.to_string(), managed.to_string());

        // And unchanged observable semantics vs. the untransformed original.
        let env = Env::new()
            .with_scalar("p0", p0)
            .with_scalar("p1", p1)
            .with_scalar("cond", cond as u64);
        let mut p_before = Program::new();
        p_before.add_function(original);
        let before = Interpreter::new(&p_before).run("gen", &env).unwrap();
        let after = Interpreter::new(&transformed.program).run("gen", &env).unwrap();
        prop_assert_eq!(before.scalar("out0"), after.scalar("out0"));
        prop_assert_eq!(before.scalar("out1"), after.scalar("out1"));
    }

    /// The incrementally patched post-wire dependence graph equals a
    /// from-scratch rebuild — same operation order, same guards, same edge
    /// multiset per operation — on arbitrary generated programs scheduled at
    /// an arbitrary clock period. (Debug builds also assert this inside
    /// `apply_wire_edits`; this property pins it at the suite level, across
    /// periods that produce single-state chains, multi-state schedules and
    /// conditional writers.)
    #[test]
    fn patched_dependence_graph_equals_rebuild(
        script in proptest::collection::vec(any::<u8>(), 64),
        // Lower bound just above the slowest functional unit (mul, 6.0 ns)
        // so every generated program is schedulable; the range still covers
        // tight multi-state schedules and generous single-state chains.
        period_tenths in 61u64..200,
    ) {
        let mut f = build_scripted_function(&script);
        xf::unroll_all_loops(&mut f);
        let pre_wire = DependenceGraph::build(&f).unwrap();
        let library = ResourceLibrary::new();
        let constraints = Constraints::microprocessor_block(period_tenths as f64 / 10.0);
        let mut sched = schedule(&f, &pre_wire, &library, &constraints).unwrap();
        let (_, log) = insert_wire_variables_logged(&mut f, &mut sched);
        let mut patched = pre_wire.clone();
        patched.apply_wire_edits(&f, &log);
        let rebuilt = DependenceGraph::build(&f).unwrap();
        if let Err(difference) = patched.same_dependences(&rebuilt) {
            panic!("patched dependence graph diverges from rebuild: {difference}");
        }
    }

    /// The interned-guard mutual-exclusion bitset answers every operation
    /// pair exactly as the term-by-term `Guard::mutually_exclusive`
    /// reference, on arbitrary generated programs (nested conditionals
    /// included), both before and after wire insertion.
    #[test]
    fn interned_guard_exclusion_matches_reference(
        script in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let mut f = build_scripted_function(&script);
        xf::unroll_all_loops(&mut f);
        let graph = DependenceGraph::build(&f).unwrap();
        let library = ResourceLibrary::new();
        let mut sched = schedule(
            &f,
            &graph,
            &library,
            &Constraints::microprocessor_block(50.0),
        )
        .unwrap();
        let (_, log) = insert_wire_variables_logged(&mut f, &mut sched);
        let mut patched = graph.clone();
        patched.apply_wire_edits(&f, &log);
        for g in [&graph, &patched] {
            for &a in &g.order {
                for &b in &g.order {
                    prop_assert_eq!(
                        g.mutually_exclusive(a, b),
                        g.guard_of(a).mutually_exclusive(&g.guard_of(b)),
                        "ops {:?} / {:?}", a, b
                    );
                }
            }
        }
    }

    /// `SecondaryMap` round-trips an arbitrary insert/remove script against a
    /// `BTreeMap` model: same final contents, same `get` answers, same
    /// key-ordered iteration.
    #[test]
    fn secondary_map_matches_btreemap_model(
        keys in proptest::collection::vec(0usize..48, 64),
        values in proptest::collection::vec(any::<u64>(), 64),
        removes in proptest::collection::vec(proptest::bool::ANY, 64),
    ) {
        use std::collections::BTreeMap;
        use spark_ir::{Id, SecondaryMap};
        type Key = Id<u8>;

        let mut dense: SecondaryMap<Key, u64> = SecondaryMap::new();
        let mut model: BTreeMap<Key, u64> = BTreeMap::new();
        for ((&raw, &value), &remove) in keys.iter().zip(&values).zip(&removes) {
            let key = Key::from_raw(raw as u32);
            if remove {
                prop_assert_eq!(dense.remove(&key), model.remove(&key));
            } else {
                prop_assert_eq!(dense.insert(key, value), model.insert(key, value));
            }
            prop_assert_eq!(dense.len(), model.len());
        }
        for raw in 0..64u32 {
            let key = Key::from_raw(raw);
            prop_assert_eq!(dense.get(&key), model.get(&key));
            prop_assert_eq!(dense.contains_key(&key), model.contains_key(&key));
        }
        let dense_pairs: Vec<(Key, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        let model_pairs: Vec<(Key, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(dense_pairs, model_pairs, "iteration order and contents agree");
        let rebuilt: SecondaryMap<Key, u64> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(rebuilt, dense);
    }
}
