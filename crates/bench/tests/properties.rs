//! Property-based tests over the core invariants of the reproduction.

use std::sync::OnceLock;

use proptest::prelude::*;
use spark_core::{synthesize, FlowOptions, SynthesisResult};
use spark_ild::{buffer_env, build_ild_program, decode_marks, ILD_FUNCTION};
use spark_ir::{verify, Env, FunctionBuilder, Interpreter, OpKind, Program, Type, Value};
use spark_transforms as xf;

const ILD_N: usize = 8;

fn synthesized_ild() -> &'static SynthesisResult {
    static RESULT: OnceLock<SynthesisResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        let program = build_ild_program(ILD_N as u32);
        synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(500.0),
        )
        .expect("ILD synthesis succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synthesized single-cycle ILD equals the golden software decoder on
    /// arbitrary instruction buffers.
    #[test]
    fn synthesized_ild_equals_golden_on_arbitrary_buffers(bytes in proptest::collection::vec(any::<u8>(), ILD_N)) {
        let mut buffer = vec![0u8; ILD_N + 4];
        buffer[1..=ILD_N].copy_from_slice(&bytes);
        let golden = decode_marks(&buffer, ILD_N);
        let rtl = synthesized_ild().simulate(&buffer_env(&buffer)).expect("simulation succeeds");
        let marks = rtl.array("Mark").expect("Mark present");
        for i in 1..=ILD_N {
            prop_assert_eq!(marks[i] != 0, golden[i], "byte {}", i);
        }
    }

    /// The fine-grain clean-up passes preserve the observable behaviour of a
    /// small parameterised conditional accumulator, for arbitrary inputs and
    /// arbitrary constants baked into the code.
    #[test]
    fn cleanup_passes_preserve_semantics(a in 0u64..256, b in 0u64..256, k in 0u64..16, c in proptest::bool::ANY) {
        let mut builder = FunctionBuilder::new("prog");
        let av = builder.param("a", Type::Bits(8));
        let bv = builder.param("b", Type::Bits(8));
        let cv = builder.param("c", Type::Bool);
        let out = builder.output("out", Type::Bits(8));
        let t1 = builder.var("t1", Type::Bits(8));
        let t2 = builder.var("t2", Type::Bits(8));
        builder.assign(OpKind::Add, t1, vec![Value::Var(av), Value::word(k)]);
        builder.assign(OpKind::Add, t2, vec![Value::Var(av), Value::word(k)]);
        builder.if_begin(Value::Var(cv));
        builder.assign(OpKind::Add, out, vec![Value::Var(t1), Value::Var(bv)]);
        builder.else_begin();
        builder.assign(OpKind::Sub, out, vec![Value::Var(t2), Value::Var(bv)]);
        builder.if_end();
        let original = builder.finish();

        let mut transformed = original.clone();
        xf::constant_propagation(&mut transformed);
        xf::common_subexpression_elimination(&mut transformed);
        xf::copy_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        xf::speculate(&mut transformed);
        xf::copy_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        prop_assert!(verify(&transformed).is_ok());

        let env = Env::new()
            .with_scalar("a", a)
            .with_scalar("b", b)
            .with_scalar("c", c as u64);
        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(transformed);
        let before = Interpreter::new(&p0).run("prog", &env).unwrap();
        let after = Interpreter::new(&p1).run("prog", &env).unwrap();
        prop_assert_eq!(before.scalar("out"), after.scalar("out"));
    }

    /// Loop unrolling followed by constant propagation preserves the value of
    /// an accumulation loop for arbitrary bounds and increments.
    #[test]
    fn unrolling_preserves_accumulation(n in 1u64..24, step in 1u64..5, init in 0u64..100) {
        let build = || {
            let mut b = FunctionBuilder::new("acc");
            let i = b.var("i", Type::Bits(32));
            let acc = b.output("acc", Type::Bits(32));
            b.copy(acc, Value::word(init));
            b.for_begin(i, 1, Value::word(n), step as i64);
            b.assign(OpKind::Add, acc, vec![Value::Var(acc), Value::Var(i)]);
            b.loop_end();
            b.finish()
        };
        let original = build();
        let mut transformed = build();
        xf::unroll_all_loops(&mut transformed);
        xf::constant_propagation(&mut transformed);
        xf::dead_code_elimination(&mut transformed);
        prop_assert_eq!(transformed.loop_count(), 0);
        prop_assert!(verify(&transformed).is_ok());

        let mut p0 = Program::new();
        p0.add_function(original);
        let mut p1 = Program::new();
        p1.add_function(transformed);
        let before = Interpreter::new(&p0).run("acc", &Env::new()).unwrap();
        let after = Interpreter::new(&p1).run("acc", &Env::new()).unwrap();
        prop_assert_eq!(before.scalar("acc"), after.scalar("acc"));
    }

    /// The length encoding invariant the whole case study rests on: every
    /// instruction is 1..=11 bytes long.
    #[test]
    fn encoding_length_bounds(b1 in any::<u8>(), b2 in any::<u8>(), b3 in any::<u8>(), b4 in any::<u8>()) {
        let len = spark_ild::encoding::calculate_length(b1, b2, b3, b4);
        prop_assert!((1..=spark_ild::encoding::MAX_INSTRUCTION_LENGTH).contains(&len));
    }

    /// `SecondaryMap` round-trips an arbitrary insert/remove script against a
    /// `BTreeMap` model: same final contents, same `get` answers, same
    /// key-ordered iteration.
    #[test]
    fn secondary_map_matches_btreemap_model(
        keys in proptest::collection::vec(0usize..48, 64),
        values in proptest::collection::vec(any::<u64>(), 64),
        removes in proptest::collection::vec(proptest::bool::ANY, 64),
    ) {
        use std::collections::BTreeMap;
        use spark_ir::{Id, SecondaryMap};
        type Key = Id<u8>;

        let mut dense: SecondaryMap<Key, u64> = SecondaryMap::new();
        let mut model: BTreeMap<Key, u64> = BTreeMap::new();
        for ((&raw, &value), &remove) in keys.iter().zip(&values).zip(&removes) {
            let key = Key::from_raw(raw as u32);
            if remove {
                prop_assert_eq!(dense.remove(&key), model.remove(&key));
            } else {
                prop_assert_eq!(dense.insert(key, value), model.insert(key, value));
            }
            prop_assert_eq!(dense.len(), model.len());
        }
        for raw in 0..64u32 {
            let key = Key::from_raw(raw);
            prop_assert_eq!(dense.get(&key), model.get(&key));
            prop_assert_eq!(dense.contains_key(&key), model.contains_key(&key));
        }
        let dense_pairs: Vec<(Key, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        let model_pairs: Vec<(Key, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(dense_pairs, model_pairs, "iteration order and contents agree");
        let rebuilt: SecondaryMap<Key, u64> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(rebuilt, dense);
    }
}
