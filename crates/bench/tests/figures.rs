//! Integration tests reproducing the shape of every didactic figure of the
//! paper (Figures 2–7 and the transformation stages of Figures 10–15).
//! The quantitative series behind these tests are printed by the
//! `spark-bench` reproduce binary and recorded in `EXPERIMENTS.md`.

use spark_core::{ablation_study, synthesize, FlowOptions};
use spark_ild::{build_ild_program, ILD_FUNCTION};
use spark_ir::{FunctionBuilder, FunctionStats, OpKind, Type, Value};
use spark_sched::{schedule, Constraints, DependenceGraph, FuClass, ResourceLibrary};
use spark_transforms as xf;

/// Figure 2/3: the synthetic Op1/Op2 loop. Full unrolling plus constant
/// propagation of the loop index exposes all cross-iteration parallelism:
/// the unlimited-resource schedule needs as many adders/multipliers as
/// iterations and only one cycle.
#[test]
fn figure2_unroll_and_const_prop_expose_parallelism() {
    let n = 8u64;
    let build = || {
        let mut b = FunctionBuilder::new("fig2");
        let input = b.param_array("in", Type::Bits(32), n as u32 + 1);
        let r2 = b.output_array("r2", Type::Bits(32), n as u32 + 1);
        let i = b.var("i", Type::Bits(32));
        let t = b.var("t", Type::Bits(32));
        let r1 = b.var("r1", Type::Bits(32));
        b.for_begin(i, 0, Value::word(n - 1), 1);
        b.array_read(t, input, Value::Var(i));
        b.assign(OpKind::Add, r1, vec![Value::Var(t), Value::Var(i)]); // Op1
        let d = b.compute(
            OpKind::Mul,
            Type::Bits(32),
            vec![Value::Var(r1), Value::word(3)],
        ); // Op2
        b.array_write(r2, Value::Var(i), Value::Var(d));
        b.loop_end();
        b.finish()
    };

    let mut f = build();
    xf::unroll_all_loops(&mut f);
    xf::constant_propagation(&mut f);
    xf::copy_propagation(&mut f);
    xf::dead_code_elimination(&mut f);
    assert_eq!(f.loop_count(), 0);

    let graph = DependenceGraph::build(&f).unwrap();
    let lib = ResourceLibrary::new();
    let sched = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(50.0)).unwrap();
    assert_eq!(
        sched.num_states, 1,
        "all iterations execute concurrently (Figure 3)"
    );
    assert_eq!(
        sched.fu_instances[&FuClass::Multiplier],
        n as usize,
        "one Op2 unit per iteration"
    );
    // One Op1 adder per iteration, except the i = 0 iteration whose `+ 0`
    // folds away during constant propagation.
    assert!(sched.fu_instances[&FuClass::Adder] >= n as usize - 1);

    // Without unrolling the loop cannot even be scheduled by this formulation
    // (it would need a multi-cycle looping controller) — the paper's point
    // that loops must be fully unrolled for single-cycle blocks.
    let untouched = build();
    assert!(DependenceGraph::build(&untouched).is_err());
}

/// Figure 4: chaining across an if-then-else boundary yields a single-cycle
/// schedule in which the steering logic (mux) sits inside the chain.
#[test]
fn figure4_chaining_across_conditional_boundaries() {
    let build = || {
        let mut b = FunctionBuilder::new("fig4");
        let a = b.param("a", Type::Bits(8));
        let bb = b.param("b", Type::Bits(8));
        let c = b.param("c", Type::Bits(8));
        let d = b.param("d", Type::Bits(8));
        let e = b.param("e", Type::Bits(8));
        let cond = b.param("cond", Type::Bool);
        let t1 = b.var("t1", Type::Bits(8));
        let t2 = b.var("t2", Type::Bits(8));
        let t3 = b.var("t3", Type::Bits(8));
        let f_ = b.output("f", Type::Bits(8));
        b.assign(OpKind::Add, t1, vec![Value::Var(a), Value::Var(bb)]); // 1
        b.if_begin(Value::Var(cond));
        b.copy(t2, Value::Var(t1)); // 2
        b.assign(OpKind::Add, t3, vec![Value::Var(c), Value::Var(d)]); // 3
        b.else_begin();
        b.copy(t2, Value::Var(e)); // 4
        b.assign(OpKind::Sub, t3, vec![Value::Var(c), Value::Var(d)]); // 5
        b.if_end();
        b.assign(OpKind::Add, f_, vec![Value::Var(t2), Value::Var(t3)]); // 6
        b.finish()
    };
    let f = build();
    let graph = DependenceGraph::build(&f).unwrap();
    let lib = ResourceLibrary::new();

    let chained = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
    assert_eq!(chained.num_states, 1, "Figure 4: single-cycle schedule");

    let mut no_cross = Constraints::microprocessor_block(10.0);
    no_cross.allow_cross_block_chaining = false;
    let classical = schedule(&f, &graph, &lib, &no_cross).unwrap();
    assert!(
        classical.num_states > 1,
        "without cross-conditional chaining the schedule stretches"
    );
}

/// Figures 10→15: the coordinated pipeline stages grow the operation count
/// (speculation, unrolling) and then collapse the control structure until the
/// design is a flat, single-cycle, maximally parallel architecture.
#[test]
fn figures_10_to_15_stage_progression() {
    let n = 8u32;
    let program = build_ild_program(n);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(500.0),
    )
    .unwrap();

    let stage = |name: &str| -> FunctionStats {
        result
            .stages
            .iter()
            .find(|s| s.stage == name)
            .unwrap_or_else(|| panic!("stage `{name}` recorded"))
            .stats
    };

    let input = stage("input");
    let inline = stage("inline");
    let unroll = stage("loop-unroll");
    let cleanup = stage("cleanup");
    let scheduled = stage("scheduled");

    // Figure 10: the input has one loop and a handful of operations.
    assert_eq!(input.loops, 1);
    assert!(input.operations < 10);
    // Figure 12: inlining pulls CalculateLength into the loop body.
    assert!(inline.operations > input.operations);
    // Figure 13: full unrolling multiplies the operation count roughly by n.
    assert!(unroll.operations >= inline.operations * (n as usize / 2));
    assert_eq!(unroll.loops, 0);
    // Figure 15: after clean-up the conditionals that remain are only the
    // per-byte marking guards; the scheduled design is a single state.
    assert!(cleanup.operations < unroll.operations);
    assert_eq!(result.report.states, 1);
    assert!(
        scheduled.operations >= cleanup.operations,
        "wire insertion adds commit copies"
    );
    // The data-calculation / control-logic / ripple structure of Figure 15
    // shows up as many speculative ops feeding mux/steering logic.
    assert!(result.wire_report.wires_created > 0);
    assert!(
        result.chaining.cross_block_pairs > 0,
        "chaining across conditional boundaries happened"
    );
}

/// Figure 1 / Section 6: the ablation — removing any single coordinated
/// transformation loses the single-cycle result (or inflates the design),
/// and the classical baseline needs many cycles.
#[test]
fn ablation_shows_coordination_is_required() {
    let n = 8u32;
    let program = build_ild_program(n);
    let points = ablation_study(&program, ILD_FUNCTION, 500.0).unwrap();
    let point = |label: &str| {
        points
            .iter()
            .find(|p| p.label.contains(label))
            .unwrap_or_else(|| panic!("configuration `{label}` present"))
    };
    let coordinated = point("coordinated")
        .report
        .as_ref()
        .expect("coordinated flow succeeds");
    let baseline = point("ASIC baseline")
        .report
        .as_ref()
        .expect("baseline flow succeeds");

    assert_eq!(coordinated.states, 1);
    // "Loops in single cycle designs must, of course, be unrolled completely"
    // (Section 3): with unrolling disabled the loop survives to the scheduler
    // and the configuration is infeasible.
    assert!(
        point("no loop unrolling").report.is_none(),
        "without unrolling the byte loop cannot be scheduled into a block"
    );
    assert!(baseline.states > coordinated.states);
    // The single-cycle design pays in functional units compared to the
    // resource-shared baseline.
    assert!(coordinated.total_functional_units() >= baseline.total_functional_units());
}
