//! End-to-end gate over the committed SPARK-C corpus
//! (`crates/bench/programs/*.spark`).
//!
//! Every corpus program must (1) compile without diagnostics, (2) lower to
//! IR that `spark_ir::verify` accepts, (3) synthesize under the coordinated
//! flow, (4) produce RTL whose cycle-accurate simulation matches both the
//! sequential interpreter on the lowered program and the frontend's own AST
//! evaluator on seeded random inputs, and (5) reproduce the schedule/binding
//! fingerprint committed in `programs/fingerprints.txt` — any drift in the
//! frontend, the transformations, the scheduler or the binder shows up here
//! as a named mismatch.
//!
//! The textual ILD is additionally pinned against its builder-constructed
//! twin: `ild_n8.spark` must fingerprint identically to
//! `spark_ild::build_ild_program(8)`.

use std::collections::BTreeMap;

use spark_bench::corpus::{
    check_rtl_matches_interp, corpus_paths, programs_dir, synthesis_fingerprint,
};
use spark_core::{synthesize, FlowOptions};
use spark_ild::{build_ild_program, ILD_FUNCTION};
use spark_ir::verify;

/// The flow every corpus program is synthesized under (generous single-cycle
/// clock, the paper's microprocessor-block recipe).
fn corpus_flow() -> FlowOptions {
    FlowOptions::microprocessor_block(2000.0)
}

fn committed_fingerprints() -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(programs_dir().join("fingerprints.txt"))
        .expect("programs/fingerprints.txt is committed");
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let (name, hex) = line
                .split_once(' ')
                .expect("fingerprint lines are `name hex`");
            (
                name.to_string(),
                u64::from_str_radix(hex.trim(), 16).expect("fingerprint is hex"),
            )
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_fingerprint_file_covers_it() {
    let paths = corpus_paths();
    assert!(
        paths.len() >= 8,
        "expected at least 8 corpus programs, found {}",
        paths.len()
    );
    let fingerprints = committed_fingerprints();
    for path in &paths {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        assert!(
            fingerprints.contains_key(&stem),
            "`{stem}` missing from programs/fingerprints.txt — regenerate with \
             `sparkc {stem}.spark --emit fingerprint`"
        );
    }
    assert_eq!(
        fingerprints.len(),
        paths.len(),
        "fingerprints.txt lists programs that no longer exist"
    );
}

#[test]
fn every_corpus_program_compiles_synthesizes_and_simulates_correctly() {
    let fingerprints = committed_fingerprints();
    for path in corpus_paths() {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let source = std::fs::read_to_string(&path).expect("corpus file readable");
        let compiled = spark_front::compile(&source).unwrap_or_else(|diags| {
            panic!(
                "`{stem}` failed to compile: {}",
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        });
        for function in &compiled.program.functions {
            verify(function).unwrap_or_else(|e| panic!("`{stem}`/{}: {e:?}", function.name));
        }
        let result = synthesize(&compiled.program, &compiled.top, &corpus_flow())
            .unwrap_or_else(|e| panic!("`{stem}` failed to synthesize: {e}"));
        check_rtl_matches_interp(&compiled, &compiled.top, &result, 0..8)
            .unwrap_or_else(|e| panic!("`{stem}`: {e}"));
        let fingerprint = synthesis_fingerprint(&result);
        assert_eq!(
            fingerprint, fingerprints[&stem],
            "`{stem}` drifted from its committed fingerprint \
             ({fingerprint:016x} vs {:016x}) — if the change is intentional, \
             regenerate programs/fingerprints.txt",
            fingerprints[&stem]
        );
    }
}

#[test]
fn textual_ild_fingerprints_identically_to_its_builder_twin() {
    // The acceptance bar for the frontend: the transliterated Figure 10
    // source must lower to a structurally identical function and hence an
    // identical schedule, binding and report.
    let source = std::fs::read_to_string(programs_dir().join("ild_n8.spark")).unwrap();
    let compiled = spark_front::compile(&source).expect("ild_n8 compiles");
    assert_eq!(compiled.top, "ild");
    let from_source = synthesize(&compiled.program, "ild", &corpus_flow()).unwrap();
    let from_builder = synthesize(&build_ild_program(8), ILD_FUNCTION, &corpus_flow()).unwrap();
    assert_eq!(
        synthesis_fingerprint(&from_source),
        synthesis_fingerprint(&from_builder),
        "parser-driven ILD diverged from the builder-constructed ILD"
    );
}

#[test]
fn multi_function_corpus_programs_exercise_inlining_end_to_end() {
    // The multi-function designs must actually flow through `inline_calls`:
    // more than one function in the compiled program, a non-noop inline
    // report, and no calls left in the transformed top level.
    for stem in ["ild_n8", "sad4", "row_minmax"] {
        let source = std::fs::read_to_string(programs_dir().join(format!("{stem}.spark"))).unwrap();
        let compiled = spark_front::compile(&source).unwrap();
        assert!(
            compiled.program.functions.len() >= 2,
            "`{stem}` should declare a callee next to its top level"
        );
        let result = synthesize(&compiled.program, &compiled.top, &corpus_flow()).unwrap();
        let inline = result
            .pass_log
            .iter()
            .find(|r| r.pass == "inline")
            .expect("inline pass ran");
        assert!(
            inline.changes > 0,
            "`{stem}` should inline at least one call, report: {inline}"
        );
        assert!(
            !result
                .function
                .live_ops()
                .iter()
                .any(|&op| matches!(result.function.ops[op].kind, spark_ir::OpKind::Call { .. })),
            "`{stem}` still contains calls after transformation"
        );
    }
    // The new designs exercise the array-aliasing and scalar-binding paths:
    // row_minmax inlines two array-taking callees per unrolled iteration.
    let source = std::fs::read_to_string(programs_dir().join("row_minmax.spark")).unwrap();
    let compiled = spark_front::compile(&source).unwrap();
    let result = synthesize(&compiled.program, &compiled.top, &corpus_flow()).unwrap();
    // Inlining precedes unrolling, so each of the two call sites (one per
    // callee) is folded into the caller exactly once.
    let inline = result.pass_log.iter().find(|r| r.pass == "inline").unwrap();
    assert_eq!(inline.changes, 2, "one inline per callee call site");
}

#[test]
fn corpus_programs_single_cycle_where_expected() {
    // The pure-dataflow kernels must reach the paper's single-cycle
    // architecture once fully unrolled and speculated.
    for stem in ["abs_diff", "dot4", "quantize", "running_max", "parity8"] {
        let source = std::fs::read_to_string(programs_dir().join(format!("{stem}.spark"))).unwrap();
        let compiled = spark_front::compile(&source).unwrap();
        let result = synthesize(&compiled.program, &compiled.top, &corpus_flow()).unwrap();
        assert!(
            result.is_single_cycle(),
            "`{stem}` should synthesize to a single cycle, took {} states",
            result.report.states
        );
    }
}
