//! Pins the dependence-graph construction contract of the scheduling
//! substrate: **exactly one** from-scratch `DependenceGraph::build` per
//! synthesis point — the post-wire graph is patched, never rebuilt — and one
//! shared pre-wire graph across every point of a clock sweep.
//!
//! This file is its own test binary, so `DependenceGraph::build_count()`
//! moves only under the calls made here; everything runs inside a single
//! `#[test]` to keep the counter deterministic.

use spark_core::{
    explore_configurations, sweep_clock_period, synthesize, transform_program, FlowOptions,
};
use spark_ild::{build_ild_program, ILD_FUNCTION};
use spark_sched::DependenceGraph;

#[test]
fn one_graph_build_per_synthesis_point_and_one_per_sweep() {
    let program = build_ild_program(8);

    // A full synthesize run: transform + schedule + wire insertion +
    // validation + controller — exactly one from-scratch graph build.
    let before = DependenceGraph::build_count();
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(200.0),
    )
    .expect("synthesis succeeds");
    assert!(result.is_single_cycle());
    assert_eq!(
        DependenceGraph::build_count(),
        before + 1,
        "one synthesis point must build the dependence graph exactly once \
         (wire insertion patches the pre-wire graph instead of rebuilding)"
    );

    // A clock sweep: every period point schedules against the transformed
    // program's shared SchedContext — one build for the whole sweep.
    let before = DependenceGraph::build_count();
    let points = sweep_clock_period(&program, ILD_FUNCTION, &[50.0, 100.0, 200.0, 500.0]).unwrap();
    assert_eq!(points.len(), 4);
    assert!(points.iter().filter(|p| p.report.is_some()).count() >= 2);
    assert_eq!(
        DependenceGraph::build_count(),
        before + 1,
        "a clock sweep must share one pre-wire dependence graph across points"
    );

    // Infeasible points (schedule errors) do not force extra builds either.
    let before = DependenceGraph::build_count();
    let points = sweep_clock_period(&program, ILD_FUNCTION, &[0.01, 0.02, 300.0]).unwrap();
    assert!(points[0].report.is_none() && points[1].report.is_none());
    assert_eq!(DependenceGraph::build_count(), before + 1);

    // The DSE helper: one build per distinct transform-flag group, shared by
    // all points of the group.
    let before = DependenceGraph::build_count();
    let configurations = vec![
        ("fast".to_string(), FlowOptions::microprocessor_block(100.0)),
        ("slow".to_string(), FlowOptions::microprocessor_block(500.0)),
        ("baseline".to_string(), FlowOptions::asic_baseline(20.0)),
    ];
    let exploration = explore_configurations(&program, ILD_FUNCTION, &configurations).unwrap();
    assert_eq!(exploration.transform_runs, 2);
    assert_eq!(
        DependenceGraph::build_count(),
        before + 2,
        "one graph build per transform group, not per configuration"
    );

    // An explicit transform + repeated back-half synthesis: the context is
    // built lazily on the first point and reused afterwards.
    let transformed = transform_program(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(1.0),
    )
    .unwrap();
    let before = DependenceGraph::build_count();
    for period in [100.0, 200.0, 400.0] {
        let options = FlowOptions::microprocessor_block(period);
        let point = spark_core::synthesize_transformed(&transformed, &options).unwrap();
        assert!(point.report.critical_path_ns <= period);
    }
    assert_eq!(DependenceGraph::build_count(), before + 1);
}
