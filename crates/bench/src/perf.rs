//! Wall-time measurement of the `synthesize` hot path and the
//! `BENCH_synthesize.json` emitter.
//!
//! The committed `BENCH_synthesize.json` at the repository root records the
//! per-size, per-flow-mode wall-times of full synthesis — including the
//! per-phase breakdown (transform / schedule / bind / RTL reporting) — so
//! the performance trajectory of the reproduction is tracked PR over PR; CI
//! regenerates the file on smoke sizes and uploads it as a workflow
//! artifact. The JSON is emitted by hand — the build image has no registry
//! access, so no serde.

use std::time::Instant;

use spark_core::PhaseBreakdown;

use crate::{
    synthesize_ild_baseline_timed, synthesize_ild_natural_timed, synthesize_ild_spark_timed,
};

/// One measured benchmark point.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Flow mode (`"coordinated"`, `"baseline"` or `"natural"`).
    pub mode: &'static str,
    /// ILD buffer size.
    pub n: u32,
    /// Mean wall-time of one full synthesis run, milliseconds.
    pub mean_ms: f64,
    /// Mean per-phase wall-times across the same runs.
    pub phases: PhaseBreakdown,
    /// Iterations averaged over (after one warm-up run).
    pub iters: u32,
}

/// A full-synthesis entry point parameterised by ILD buffer size, returning
/// the result plus its per-phase wall times.
type SynthFn = fn(u32) -> (spark_core::SynthesisResult, PhaseBreakdown);

/// The flow modes measured per size, with their synthesis entry points.
const MODES: [(&str, SynthFn); 3] = [
    ("coordinated", synthesize_ild_spark_timed),
    ("baseline", synthesize_ild_baseline_timed),
    ("natural", synthesize_ild_natural_timed),
];

/// Measures full synthesis wall-time for every `(mode, n)` combination,
/// averaging `iters` timed runs after one warm-up run per point.
pub fn measure_synthesize(sizes: &[u32], iters: u32) -> Vec<BenchRecord> {
    let iters = iters.max(1);
    let mut records = Vec::new();
    for &(mode, synth) in &MODES {
        for &n in sizes {
            std::hint::black_box(synth(n)); // warm-up
            let mut phases = PhaseBreakdown::default();
            let start = Instant::now();
            for _ in 0..iters {
                let (result, breakdown) = synth(n);
                std::hint::black_box(result);
                phases.accumulate(&breakdown);
            }
            let mean_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
            phases.scale(f64::from(iters));
            records.push(BenchRecord {
                mode,
                n,
                mean_ms,
                phases,
                iters,
            });
        }
    }
    records
}

/// Renders measurement records as the `BENCH_synthesize.json` document.
pub fn bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"synthesize\",\n  \"unit\": \"ms\",\n  \"results\": [\n",
    );
    for (index, record) in records.iter().enumerate() {
        let comma = if index + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"mean_ms\": {:.3}, \"iters\": {}, \
             \"transform_ms\": {:.3}, \"schedule_ms\": {:.3}, \"bind_ms\": {:.3}, \
             \"rtl_ms\": {:.3}, \
             \"sched_deps_ms\": {:.3}, \"sched_list_ms\": {:.3}, \"sched_wires_ms\": {:.3}, \
             \"sched_validate_ms\": {:.3}, \"sched_controller_ms\": {:.3}}}{comma}\n",
            record.mode,
            record.n,
            record.mean_ms,
            record.iters,
            record.phases.transform_ms,
            record.phases.schedule_ms,
            record.phases.bind_ms,
            record.phases.rtl_ms,
            record.phases.sched_deps_ms,
            record.phases.sched_list_ms,
            record.phases.sched_wires_ms,
            record.phases.sched_validate_ms,
            record.phases.sched_controller_ms
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_covers_every_mode_and_size() {
        let records = measure_synthesize(&[4], 1);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.n == 4 && r.mean_ms > 0.0));
        let modes: Vec<&str> = records.iter().map(|r| r.mode).collect();
        assert_eq!(modes, vec!["coordinated", "baseline", "natural"]);
        // The phase breakdown accounts for real time in every phase of the
        // run (transform and schedule dominate; bind/rtl may be tiny but
        // must be non-negative), and the schedule sub-phases account for the
        // schedule phase exactly.
        for record in &records {
            assert!(record.phases.transform_ms > 0.0, "{}", record.mode);
            assert!(record.phases.schedule_ms > 0.0, "{}", record.mode);
            assert!(record.phases.bind_ms >= 0.0);
            assert!(record.phases.rtl_ms >= 0.0);
            let sub_total = record.phases.sched_deps_ms
                + record.phases.sched_list_ms
                + record.phases.sched_wires_ms
                + record.phases.sched_validate_ms
                + record.phases.sched_controller_ms;
            assert!(
                (sub_total - record.phases.schedule_ms).abs() < 1e-9,
                "{}: schedule sub-phases must sum to the phase total",
                record.mode
            );
        }
    }

    #[test]
    fn json_is_well_formed() {
        let records = vec![
            BenchRecord {
                mode: "coordinated",
                n: 8,
                mean_ms: 1.5,
                phases: PhaseBreakdown {
                    transform_ms: 0.9,
                    schedule_ms: 0.4,
                    bind_ms: 0.1,
                    rtl_ms: 0.1,
                    sched_deps_ms: 0.15,
                    sched_list_ms: 0.1,
                    sched_wires_ms: 0.1,
                    sched_validate_ms: 0.03,
                    sched_controller_ms: 0.02,
                },
                iters: 3,
            },
            BenchRecord {
                mode: "baseline",
                n: 8,
                mean_ms: 2.25,
                phases: PhaseBreakdown::default(),
                iters: 3,
            },
        ];
        let json = bench_json(&records);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"benchmark\": \"synthesize\""));
        assert!(json.contains("\"mode\": \"coordinated\", \"n\": 8, \"mean_ms\": 1.500"));
        assert!(json.contains("\"transform_ms\": 0.900"));
        assert!(json.contains("\"schedule_ms\": 0.400"));
        // The schedule-phase sub-breakdown CI guards against losing these.
        assert!(json.contains("\"sched_deps_ms\": 0.150"));
        assert!(json.contains("\"sched_list_ms\": 0.100"));
        assert!(json.contains("\"sched_wires_ms\": 0.100"));
        assert!(json.contains("\"sched_validate_ms\": 0.030"));
        assert!(json.contains("\"sched_controller_ms\": 0.020"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Exactly one separating comma between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn phase_breakdown_accumulates_and_scales() {
        let mut total = PhaseBreakdown::default();
        total.accumulate(&PhaseBreakdown {
            transform_ms: 2.0,
            schedule_ms: 4.0,
            bind_ms: 6.0,
            rtl_ms: 8.0,
            sched_deps_ms: 1.0,
            sched_list_ms: 1.0,
            sched_wires_ms: 1.0,
            sched_validate_ms: 0.5,
            sched_controller_ms: 0.5,
        });
        total.accumulate(&PhaseBreakdown {
            transform_ms: 4.0,
            schedule_ms: 4.0,
            bind_ms: 2.0,
            rtl_ms: 0.0,
            sched_deps_ms: 1.0,
            sched_list_ms: 3.0,
            sched_wires_ms: 0.0,
            sched_validate_ms: 0.0,
            sched_controller_ms: 0.0,
        });
        total.scale(2.0);
        assert_eq!(total.transform_ms, 3.0);
        assert_eq!(total.schedule_ms, 4.0);
        assert_eq!(total.bind_ms, 4.0);
        assert_eq!(total.rtl_ms, 4.0);
        assert_eq!(total.sched_deps_ms, 1.0);
        assert_eq!(total.sched_list_ms, 2.0);
        assert_eq!(total.sched_wires_ms, 0.5);
        assert_eq!(total.sched_validate_ms, 0.25);
        assert_eq!(total.sched_controller_ms, 0.25);
    }
}
