//! The experiment driver behind the `reproduce` binary.
//!
//! Lives in the library (rather than in `src/bin/reproduce.rs`) so that the
//! paper-reproduction path is exercised by `cargo test` — see
//! `tests/reproduce_smoke.rs` — and not only by manual runs. The binary
//! calls [`run_all`] with [`ReproduceOptions::paper`]; the smoke test uses
//! [`ReproduceOptions::smoke`], the same code path on the smallest ILD.
//!
//! Every per-size sweep fans its points out over worker threads with
//! [`spark_core::par_map`] and prints the collected results in input order,
//! so the tables are byte-identical to the serial driver's output.

use crate::corpus::{corpus_paths, synthesis_fingerprint};
use crate::{
    figure2_loop, figure2_unrolled_schedule, figure4_fragment, synthesize_ild_baseline,
    synthesize_ild_natural, synthesize_ild_spark, ILD_SIZES, SINGLE_CYCLE_CLOCK_NS,
};
use spark_core::{ablation_study, format_table, par_map, synthesize, FlowOptions};
use spark_ild::{build_ild_program, ILD_FUNCTION};
use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};

/// Which parameter points the experiments sweep.
#[derive(Debug, Clone)]
pub struct ReproduceOptions {
    /// Buffer sizes swept by the ILD experiments (E1, E5–E9).
    pub sizes: Vec<u32>,
    /// The single size used for stage-by-stage and wire-variable detail.
    pub detail_n: u32,
    /// Buffer sizes for the natural-description experiment (E10).
    pub natural_sizes: Vec<u32>,
    /// Upper bound on how many `.spark` corpus programs the frontend
    /// experiment synthesizes (`None` = all of them).
    pub corpus_limit: Option<usize>,
}

impl ReproduceOptions {
    /// The full sweep reported in `EXPERIMENTS.md` (the paper's figures).
    pub fn paper() -> Self {
        ReproduceOptions {
            sizes: ILD_SIZES.to_vec(),
            detail_n: 16,
            natural_sizes: vec![4, 8, 16],
            corpus_limit: None,
        }
    }

    /// A minimal sweep over the smallest ILD, cheap enough for `cargo test`.
    pub fn smoke() -> Self {
        ReproduceOptions {
            sizes: vec![4],
            detail_n: 4,
            natural_sizes: vec![4],
            corpus_limit: Some(3),
        }
    }
}

/// Runs every experiment, printing the figure-level tables to stdout.
pub fn run_all(opts: &ReproduceOptions) {
    experiment_e1(opts);
    experiment_e2_to_e4(opts);
    experiment_e5_to_e8(opts);
    experiment_e9(opts);
    experiment_e10(opts);
    experiment_ablation(opts);
    experiment_frontend_corpus(opts);
}

/// E1 — Figures 2–3: loop unrolling + constant propagation expose
/// cross-iteration parallelism.
fn experiment_e1(opts: &ReproduceOptions) {
    println!("== E1 (Figures 2-3): unrolling the Op1/Op2 loop ==");
    println!(
        "{:<6} {:>14} {:>16} {:>18}",
        "N", "states before", "states after", "ops after unroll"
    );
    let rows = par_map(&opts.sizes, |&n| {
        let n = n as u64;
        let sched = figure2_unrolled_schedule(n);
        let mut unrolled = figure2_loop(n);
        spark_transforms::unroll_all_loops(&mut unrolled);
        spark_transforms::constant_propagation(&mut unrolled);
        spark_transforms::dead_code_elimination(&mut unrolled);
        (n, sched.num_states, unrolled.live_op_count())
    });
    for (n, states_after, ops_after) in rows {
        let before = "loop (unschedulable)";
        println!("{n:<6} {before:>14} {states_after:>16} {ops_after:>18}");
    }
    println!();
}

/// E2–E4 — Figures 4–7: chaining across conditional boundaries, trails and
/// wire-variables.
fn experiment_e2_to_e4(opts: &ReproduceOptions) {
    println!("== E2-E4 (Figures 4-7): chaining across conditional boundaries ==");
    let f = figure4_fragment();
    let graph = DependenceGraph::build(&f).expect("loop free");
    let lib = ResourceLibrary::new();
    let chained = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
    let mut no_cross = Constraints::microprocessor_block(10.0);
    no_cross.allow_cross_block_chaining = false;
    let classical = schedule(&f, &graph, &lib, &no_cross).unwrap();
    let no_chain = schedule(
        &f,
        &graph,
        &lib,
        &Constraints::microprocessor_block(10.0).without_chaining(),
    )
    .unwrap();
    println!(
        "{:<44} {:>8} {:>14}",
        "configuration", "states", "crit.path ns"
    );
    println!(
        "{:<44} {:>8} {:>14.2}",
        "chaining across conditionals (paper)",
        chained.num_states,
        chained.critical_path_ns()
    );
    println!(
        "{:<44} {:>8} {:>14.2}",
        "chaining within basic blocks only",
        classical.num_states,
        classical.critical_path_ns()
    );
    println!(
        "{:<44} {:>8} {:>14.2}",
        "no chaining",
        no_chain.num_states,
        no_chain.critical_path_ns()
    );

    // Wire-variable statistics on the single-cycle ILD (Figures 6-7 at scale).
    let result = synthesize_ild_spark(opts.detail_n);
    println!(
        "ILD n={}: wire-variables {}, commit copies {}, initialisers {}, chained pairs {}, cross-conditional {}",
        opts.detail_n,
        result.wire_report.wires_created,
        result.wire_report.commit_copies,
        result.wire_report.initializers,
        result.chaining.chained_pairs,
        result.chaining.cross_block_pairs
    );
    println!();
}

/// E5–E8 — Figures 10–15: the ILD transformation stages and the final
/// single-cycle architecture across buffer sizes.
fn experiment_e5_to_e8(opts: &ReproduceOptions) {
    println!("== E5-E8 (Figures 10-15): ILD transformation stages ==");
    let result = synthesize_ild_spark(opts.detail_n);
    println!("stage progression (n = {}):", opts.detail_n);
    for stage in &result.stages {
        println!("  {:<24} {}", stage.stage, stage.stats);
    }
    println!();
    println!("final architecture across buffer sizes (coordinated flow):");
    println!(
        "{:<6} {:>8} {:>10} {:>14} {:>8} {:>8} {:>10}",
        "n", "states", "ops", "crit.path ns", "FUs", "regs", "area"
    );
    let reports = par_map(&opts.sizes, |&n| synthesize_ild_spark(n).report);
    for (&n, r) in opts.sizes.iter().zip(&reports) {
        println!(
            "{:<6} {:>8} {:>10} {:>14.2} {:>8} {:>8} {:>10.0}",
            n,
            r.states,
            r.operations,
            r.critical_path_ns,
            r.total_functional_units(),
            r.registers,
            r.area_estimate
        );
    }
    println!();
}

/// E9 — Figure 1 / Section 6: coordinated flow vs classical ASIC baseline.
fn experiment_e9(opts: &ReproduceOptions) {
    println!("== E9 (Figure 1): coordinated microprocessor-block flow vs ASIC baseline ==");
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "n", "spark states", "base states", "spark area", "base area", "spark FUs", "base FUs"
    );
    let rows = par_map(&opts.sizes, |&n| {
        (
            synthesize_ild_spark(n).report,
            synthesize_ild_baseline(n).report,
        )
    });
    for (&n, (spark, baseline)) in opts.sizes.iter().zip(&rows) {
        println!(
            "{:<6} {:>12} {:>12} {:>14.0} {:>14.0} {:>12} {:>12}",
            n,
            spark.states,
            baseline.states,
            spark.area_estimate,
            baseline.area_estimate,
            spark.total_functional_units(),
            baseline.total_functional_units()
        );
    }
    println!();
}

/// E10 — Figure 16: the natural while(1) description through the
/// source-level transformation.
fn experiment_e10(opts: &ReproduceOptions) {
    println!("== E10 (Figure 16): natural description through while-to-for ==");
    println!(
        "{:<6} {:>8} {:>14} {:>12}",
        "n", "states", "crit.path ns", "single cycle"
    );
    let rows = par_map(&opts.natural_sizes, |&n| {
        let r = synthesize_ild_natural(n);
        (
            r.report.states,
            r.report.critical_path_ns,
            r.is_single_cycle(),
        )
    });
    for (&n, &(states, crit, single)) in opts.natural_sizes.iter().zip(&rows) {
        println!("{n:<6} {states:>8} {crit:>14.2} {single:>12}");
    }
    println!();
}

/// Ablation called out in DESIGN.md: each coordinated transformation switched
/// off individually.
fn experiment_ablation(opts: &ReproduceOptions) {
    println!(
        "== Ablation (DESIGN.md §3): switching off individual transformations (n = {}) ==",
        opts.detail_n
    );
    let program = build_ild_program(opts.detail_n);
    let points =
        ablation_study(&program, ILD_FUNCTION, SINGLE_CYCLE_CLOCK_NS).expect("ablation study runs");
    println!("{}", format_table(&points));
}

/// Parser-driven workloads: every committed `.spark` corpus program through
/// the textual frontend and the coordinated flow — the first experiments
/// whose inputs are not baked into the binary.
fn experiment_frontend_corpus(opts: &ReproduceOptions) {
    let mut paths = corpus_paths();
    let total = paths.len();
    if let Some(limit) = opts.corpus_limit {
        paths.truncate(limit);
    }
    if paths.len() < total {
        println!(
            "== Frontend corpus (first {} of {total} programs in crates/bench/programs, coordinated flow) ==",
            paths.len()
        );
    } else {
        println!("== Frontend corpus (crates/bench/programs/*.spark, coordinated flow) ==");
    }
    println!(
        "{:<18} {:>8} {:>8} {:>14} {:>8} {:>10} {:>18}",
        "program", "states", "ops", "crit.path ns", "FUs", "area", "fingerprint"
    );
    let rows = par_map(&paths, |path| {
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        let source = std::fs::read_to_string(path).expect("corpus file readable");
        let compiled = spark_front::compile(&source).expect("corpus program compiles");
        let result = synthesize(
            &compiled.program,
            &compiled.top,
            &FlowOptions::microprocessor_block(SINGLE_CYCLE_CLOCK_NS),
        )
        .expect("corpus program synthesizes");
        let fingerprint = synthesis_fingerprint(&result);
        (stem, result.report, fingerprint)
    });
    for (stem, report, fingerprint) in &rows {
        println!(
            "{:<18} {:>8} {:>8} {:>14.2} {:>8} {:>10.0} {:>18}",
            stem,
            report.states,
            report.operations,
            report.critical_path_ns,
            report.total_functional_units(),
            report.area_estimate,
            format!("{fingerprint:016x}")
        );
    }
    println!();
}
