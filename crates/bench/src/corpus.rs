//! The SPARK-C program corpus: discovery, deterministic input generation,
//! end-to-end checking and design fingerprints.
//!
//! The `.spark` sources under `crates/bench/programs/` are the
//! parser-driven workloads of the benchmark suite — the first inputs to the
//! pipeline that are not baked into the binary. This module is shared by
//! the `sparkc` CLI (`--check`), the `frontend_corpus` integration test and
//! the experiment driver, so all three agree on what "the corpus passes"
//! means: every program compiles without diagnostics, synthesizes, and its
//! cycle-accurate RTL simulation matches the sequential interpreter on the
//! lowered program over seeded random inputs.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spark_core::SynthesisResult;
use spark_front::Compiled;
use spark_ir::{Env, Function, Interpreter, PortDirection, StorageClass};

/// The committed corpus directory (`crates/bench/programs`).
pub fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("programs")
}

/// All committed `.spark` corpus programs, sorted by file name.
pub fn corpus_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(programs_dir())
        .expect("crates/bench/programs exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().and_then(|e| e.to_str()) == Some("spark")).then_some(path)
        })
        .collect();
    paths.sort();
    paths
}

/// Builds a deterministic random input environment for `function`: every
/// input parameter (scalar or array) is bound to seeded random values of
/// its declared width.
pub fn random_env_for(function: &Function, seed: u64) -> Env {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = Env::new();
    for &param in &function.params {
        let var = &function.vars[param];
        match var.storage {
            StorageClass::Array { length } => {
                let contents = (0..length)
                    .map(|_| rng.gen::<u64>() & var.ty.mask())
                    .collect();
                env.set_array(&var.name, contents);
            }
            _ => env.set_scalar(&var.name, rng.gen::<u64>() & var.ty.mask()),
        }
    }
    env
}

/// Checks that the synthesized design's cycle-accurate RTL simulation
/// matches the sequential interpreter on the lowered (untransformed)
/// program, over one seeded random environment per element of `seeds`.
/// `top` names the function `result` was synthesized from (it may differ
/// from `compiled.top` when a driver overrides the top level). Primary
/// outputs and the frontend's own AST evaluator are all compared.
///
/// # Errors
/// Returns a human-readable description of the first divergence.
pub fn check_rtl_matches_interp(
    compiled: &Compiled,
    top: &str,
    result: &SynthesisResult,
    seeds: impl IntoIterator<Item = u64>,
) -> Result<(), String> {
    let function = compiled
        .program
        .function(top)
        .ok_or_else(|| format!("`{top}` does not exist in the compiled program"))?;
    let outputs: Vec<(String, bool)> = function
        .vars
        .iter()
        .filter(|(_, v)| v.direction == PortDirection::Output)
        .map(|(_, v)| (v.name.clone(), v.is_array()))
        .collect();
    if outputs.is_empty() {
        return Err(format!(
            "`{top}` has no primary outputs to compare — corpus programs need at least one `out`"
        ));
    }
    let interpreter = Interpreter::new(&compiled.program);
    // One batch RTL simulation over the whole seeded workload: the simulator
    // reuses its value tables across buffers instead of reallocating per run.
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let envs: Vec<Env> = seeds
        .iter()
        .map(|&seed| random_env_for(function, seed))
        .collect();
    let outcomes = result.simulate_batch(&envs).map_err(|e| {
        // Cold path: re-identify the failing seed for the report, since the
        // batch entry point only surfaces the first error.
        match seeds
            .iter()
            .zip(&envs)
            .find(|(_, env)| result.simulate(env).is_err())
        {
            Some((seed, _)) => format!("RTL simulation failed (seed {seed}): {e}"),
            None => format!("RTL simulation failed: {e}"),
        }
    })?;
    for ((&seed, env), rtl) in seeds.iter().zip(&envs).zip(outcomes) {
        let interp = interpreter
            .run(top, env)
            .map_err(|e| format!("interpreter failed (seed {seed}): {e}"))?;
        let direct = compiled
            .evaluate(top, env)
            .map_err(|e| format!("AST evaluator failed (seed {seed}): {e}"))?;
        for (name, is_array) in &outputs {
            if *is_array {
                let want = interp.array(name).unwrap_or(&[]);
                let ast = direct.array(name).unwrap_or(&[]);
                let got = rtl.array(name).unwrap_or(&[]);
                if ast != want {
                    return Err(format!(
                        "AST evaluator disagrees with interpreter on `{name}` (seed {seed}): {ast:?} vs {want:?}"
                    ));
                }
                if got != want {
                    return Err(format!(
                        "RTL disagrees with interpreter on `{name}` (seed {seed}): {got:?} vs {want:?}"
                    ));
                }
            } else {
                let want = interp.scalar(name);
                let ast = direct.scalar(name);
                let got = rtl.scalar(name);
                if ast != want {
                    return Err(format!(
                        "AST evaluator disagrees with interpreter on `{name}` (seed {seed}): {ast:?} vs {want:?}"
                    ));
                }
                if got != want {
                    return Err(format!(
                        "RTL disagrees with interpreter on `{name}` (seed {seed}): {got:?} vs {want:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// FNV-1a over a canonical dump of the schedule, binding and datapath
/// report.
fn fnv64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Canonical fingerprint of everything scheduling and binding decided:
/// per-op control step, start/finish times and FU instance, the register
/// assignment, the FU packing and the rendered datapath report.
///
/// Shared by the seed-equivalence test in `tests/ild_end_to_end.rs`, the
/// corpus drift gate in `tests/frontend_corpus.rs` and
/// `sparkc --emit fingerprint`.
pub fn synthesis_fingerprint(result: &SynthesisResult) -> u64 {
    use spark_sched::FuClass;
    let mut text = String::new();
    for op in result.function.live_ops() {
        let state = result
            .schedule
            .op_state
            .get(&op)
            .copied()
            .unwrap_or(usize::MAX);
        let start = result.schedule.op_start.get(&op).copied().unwrap_or(-1.0);
        let finish = result.schedule.op_finish.get(&op).copied().unwrap_or(-1.0);
        let instance = result
            .schedule
            .op_instance
            .get(&op)
            .copied()
            .unwrap_or(usize::MAX);
        text.push_str(&format!(
            "op{}:{state}:{start:.3}:{finish:.3}:{instance}\n",
            op.raw()
        ));
    }
    for (var_id, _) in result.function.vars.iter() {
        if let Some(&reg) = result.binding.register_of.get(&var_id) {
            text.push_str(&format!("reg v{}:{reg}\n", var_id.raw()));
        }
    }
    for class in FuClass::ALL {
        if let Some(instances) = result.binding.fu_instances.get(&class) {
            for (i, fu) in instances.iter().enumerate() {
                let ops: Vec<String> = fu.ops.iter().map(|o| o.raw().to_string()).collect();
                text.push_str(&format!("fu {class}/{i}: {}\n", ops.join(",")));
            }
        }
    }
    text.push_str(&result.report.to_string());
    fnv64(text.bytes())
}
