//! # spark-bench — experiment harness
//!
//! Shared helpers behind the `reproduce` binary (which prints the
//! table/series for every figure of the paper, recorded in `EXPERIMENTS.md`)
//! and the Criterion benchmarks in `benches/experiments.rs`.
//!
//! Experiment index (see `DESIGN.md` §3): E1 = Figures 2–3, E2–E4 =
//! Figures 4–7, E5–E8 = the ILD transformation stages of Figures 10–15,
//! E9 = the baseline comparison implied by Figure 1, E10 = the natural
//! description of Figure 16.

#![warn(missing_docs)]

pub mod corpus;
pub mod experiments;
pub mod perf;

use spark_core::{synthesize_with_breakdown, FlowOptions, PhaseBreakdown, SynthesisResult};
use spark_ild::{build_ild_natural_program, build_ild_program, ILD_FUNCTION, ILD_NATURAL_FUNCTION};
use spark_ir::{Function, FunctionBuilder, OpKind, Type, Value};
use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary, Schedule};
use spark_transforms as xf;

/// Buffer sizes swept by the ILD experiments.
pub const ILD_SIZES: [u32; 5] = [4, 8, 16, 32, 64];

/// A generous clock period that lets the whole unrolled ILD chain into one
/// cycle; only relative critical paths matter, not the absolute value.
pub const SINGLE_CYCLE_CLOCK_NS: f64 = 2000.0;

/// Clock period used for the multi-cycle ASIC baseline.
pub const BASELINE_CLOCK_NS: f64 = 20.0;

/// Builds the Figure 2 synthetic loop (`Op1`/`Op2` over `n` iterations).
pub fn figure2_loop(n: u64) -> Function {
    let mut b = FunctionBuilder::new("fig2");
    let input = b.param_array("in", Type::Bits(32), n as u32 + 1);
    let r2 = b.output_array("r2", Type::Bits(32), n as u32 + 1);
    let i = b.var("i", Type::Bits(32));
    let t = b.var("t", Type::Bits(32));
    let r1 = b.var("r1", Type::Bits(32));
    b.for_begin(i, 0, Value::word(n - 1), 1);
    b.array_read(t, input, Value::Var(i));
    b.assign(OpKind::Add, r1, vec![Value::Var(t), Value::Var(i)]);
    let d = b.compute(
        OpKind::Mul,
        Type::Bits(32),
        vec![Value::Var(r1), Value::word(3)],
    );
    b.array_write(r2, Value::Var(i), Value::Var(d));
    b.loop_end();
    b.finish()
}

/// Applies the Figure 3 recipe (full unroll + constant propagation + DCE) and
/// schedules the result with unlimited resources. Returns the schedule.
pub fn figure2_unrolled_schedule(n: u64) -> Schedule {
    let mut f = figure2_loop(n);
    xf::unroll_all_loops(&mut f);
    xf::constant_propagation(&mut f);
    xf::copy_propagation(&mut f);
    xf::dead_code_elimination(&mut f);
    let graph = DependenceGraph::build(&f).expect("loop-free after unrolling");
    schedule(
        &f,
        &graph,
        &ResourceLibrary::new(),
        &Constraints::microprocessor_block(200.0),
    )
    .expect("schedulable")
}

/// Builds the Figure 4 conditional-chaining fragment.
pub fn figure4_fragment() -> Function {
    let mut b = FunctionBuilder::new("fig4");
    let a = b.param("a", Type::Bits(8));
    let bb = b.param("b", Type::Bits(8));
    let c = b.param("c", Type::Bits(8));
    let d = b.param("d", Type::Bits(8));
    let e = b.param("e", Type::Bits(8));
    let cond = b.param("cond", Type::Bool);
    let t1 = b.var("t1", Type::Bits(8));
    let t2 = b.var("t2", Type::Bits(8));
    let t3 = b.var("t3", Type::Bits(8));
    let f_ = b.output("f", Type::Bits(8));
    b.assign(OpKind::Add, t1, vec![Value::Var(a), Value::Var(bb)]);
    b.if_begin(Value::Var(cond));
    b.copy(t2, Value::Var(t1));
    b.assign(OpKind::Add, t3, vec![Value::Var(c), Value::Var(d)]);
    b.else_begin();
    b.copy(t2, Value::Var(e));
    b.assign(OpKind::Sub, t3, vec![Value::Var(c), Value::Var(d)]);
    b.if_end();
    b.assign(OpKind::Add, f_, vec![Value::Var(t2), Value::Var(t3)]);
    b.finish()
}

/// Synthesizes the ILD with the coordinated microprocessor-block flow.
pub fn synthesize_ild_spark(n: u32) -> SynthesisResult {
    synthesize_ild_spark_timed(n).0
}

/// [`synthesize_ild_spark`] with per-phase wall times, for the perf harness.
pub fn synthesize_ild_spark_timed(n: u32) -> (SynthesisResult, PhaseBreakdown) {
    let program = build_ild_program(n);
    synthesize_with_breakdown(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(SINGLE_CYCLE_CLOCK_NS),
    )
    .expect("coordinated ILD synthesis succeeds")
}

/// Synthesizes the ILD with the classical ASIC baseline flow.
pub fn synthesize_ild_baseline(n: u32) -> SynthesisResult {
    synthesize_ild_baseline_timed(n).0
}

/// [`synthesize_ild_baseline`] with per-phase wall times.
pub fn synthesize_ild_baseline_timed(n: u32) -> (SynthesisResult, PhaseBreakdown) {
    let program = build_ild_program(n);
    synthesize_with_breakdown(
        &program,
        ILD_FUNCTION,
        &FlowOptions::asic_baseline(BASELINE_CLOCK_NS),
    )
    .expect("baseline ILD synthesis succeeds")
}

/// Synthesizes the natural Figure 16 form of the ILD.
pub fn synthesize_ild_natural(n: u32) -> SynthesisResult {
    synthesize_ild_natural_timed(n).0
}

/// [`synthesize_ild_natural`] with per-phase wall times.
pub fn synthesize_ild_natural_timed(n: u32) -> (SynthesisResult, PhaseBreakdown) {
    let program = build_ild_natural_program(n);
    synthesize_with_breakdown(
        &program,
        ILD_NATURAL_FUNCTION,
        &FlowOptions::microprocessor_block(SINGLE_CYCLE_CLOCK_NS),
    )
    .expect("natural-form ILD synthesis succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_helpers_reach_single_state() {
        let sched = figure2_unrolled_schedule(4);
        assert_eq!(sched.num_states, 1);
    }

    #[test]
    fn ild_helpers_produce_single_cycle_and_multi_cycle_designs() {
        let spark = synthesize_ild_spark(4);
        let baseline = synthesize_ild_baseline(4);
        assert!(spark.is_single_cycle());
        assert!(baseline.report.states > 1);
    }
}
