//! Regenerates every figure-level result of the paper and prints the tables
//! recorded in `EXPERIMENTS.md`.
//!
//! ```bash
//! cargo run -p spark-bench --bin reproduce --release
//! ```
//!
//! The actual experiment driver lives in [`spark_bench::experiments`] so the
//! same code path is covered by `cargo test` (`tests/reproduce_smoke.rs`).

use spark_bench::experiments::{run_all, ReproduceOptions};

const USAGE: &str = "\
usage: reproduce [--smoke] [-h | --help]

Regenerates every figure-level table of the paper reproduction
(experiments E1-E10, the ablation study and the frontend corpus).

options:
  --smoke      run the minimal sweep (smallest ILD only, as `cargo test`)
  -h, --help   print this help
";

fn main() {
    let mut options = ReproduceOptions::paper();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--smoke" => options = ReproduceOptions::smoke(),
            other => {
                eprintln!("reproduce: error: unknown argument `{other}`");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    run_all(&options);
}
