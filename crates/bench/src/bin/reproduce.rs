//! Regenerates every figure-level result of the paper and prints the tables
//! recorded in `EXPERIMENTS.md`.
//!
//! ```bash
//! cargo run -p spark-bench --bin reproduce --release
//! ```

use spark_bench::{
    figure2_loop, figure2_unrolled_schedule, figure4_fragment, synthesize_ild_baseline,
    synthesize_ild_natural, synthesize_ild_spark, ILD_SIZES,
};
use spark_core::{ablation_study, format_table};
use spark_ild::{build_ild_program, ILD_FUNCTION};
use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};

fn main() {
    experiment_e1();
    experiment_e2_to_e4();
    experiment_e5_to_e8();
    experiment_e9();
    experiment_e10();
    experiment_ablation();
}

/// E1 — Figures 2–3: loop unrolling + constant propagation expose
/// cross-iteration parallelism.
fn experiment_e1() {
    println!("== E1 (Figures 2-3): unrolling the Op1/Op2 loop ==");
    println!("{:<6} {:>14} {:>16} {:>18}", "N", "states before", "states after", "ops after unroll");
    for n in [4u64, 8, 16, 32, 64] {
        let original = figure2_loop(n);
        let before = "loop (unschedulable)";
        let sched = figure2_unrolled_schedule(n);
        let mut unrolled = figure2_loop(n);
        spark_transforms::unroll_all_loops(&mut unrolled);
        spark_transforms::constant_propagation(&mut unrolled);
        spark_transforms::dead_code_elimination(&mut unrolled);
        println!(
            "{:<6} {:>14} {:>16} {:>18}",
            n,
            before,
            sched.num_states,
            unrolled.live_op_count()
        );
        let _ = original;
    }
    println!();
}

/// E2–E4 — Figures 4–7: chaining across conditional boundaries, trails and
/// wire-variables.
fn experiment_e2_to_e4() {
    println!("== E2-E4 (Figures 4-7): chaining across conditional boundaries ==");
    let f = figure4_fragment();
    let graph = DependenceGraph::build(&f).expect("loop free");
    let lib = ResourceLibrary::new();
    let chained = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0)).unwrap();
    let mut no_cross = Constraints::microprocessor_block(10.0);
    no_cross.allow_cross_block_chaining = false;
    let classical = schedule(&f, &graph, &lib, &no_cross).unwrap();
    let no_chain = schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0).without_chaining()).unwrap();
    println!("{:<44} {:>8} {:>14}", "configuration", "states", "crit.path ns");
    println!("{:<44} {:>8} {:>14.2}", "chaining across conditionals (paper)", chained.num_states, chained.critical_path_ns());
    println!("{:<44} {:>8} {:>14.2}", "chaining within basic blocks only", classical.num_states, classical.critical_path_ns());
    println!("{:<44} {:>8} {:>14.2}", "no chaining", no_chain.num_states, no_chain.critical_path_ns());

    // Wire-variable statistics on the single-cycle ILD (Figures 6-7 at scale).
    let result = synthesize_ild_spark(16);
    println!(
        "ILD n=16: wire-variables {}, commit copies {}, initialisers {}, chained pairs {}, cross-conditional {}",
        result.wire_report.wires_created,
        result.wire_report.commit_copies,
        result.wire_report.initializers,
        result.chaining.chained_pairs,
        result.chaining.cross_block_pairs
    );
    println!();
}

/// E5–E8 — Figures 10–15: the ILD transformation stages and the final
/// single-cycle architecture across buffer sizes.
fn experiment_e5_to_e8() {
    println!("== E5-E8 (Figures 10-15): ILD transformation stages ==");
    let result = synthesize_ild_spark(16);
    println!("stage progression (n = 16):");
    for stage in &result.stages {
        println!("  {:<24} {}", stage.stage, stage.stats);
    }
    println!();
    println!("final architecture across buffer sizes (coordinated flow):");
    println!(
        "{:<6} {:>8} {:>10} {:>14} {:>8} {:>8} {:>10}",
        "n", "states", "ops", "crit.path ns", "FUs", "regs", "area"
    );
    for &n in &ILD_SIZES {
        let r = synthesize_ild_spark(n);
        println!(
            "{:<6} {:>8} {:>10} {:>14.2} {:>8} {:>8} {:>10.0}",
            n,
            r.report.states,
            r.report.operations,
            r.report.critical_path_ns,
            r.report.total_functional_units(),
            r.report.registers,
            r.report.area_estimate
        );
    }
    println!();
}

/// E9 — Figure 1 / Section 6: coordinated flow vs classical ASIC baseline.
fn experiment_e9() {
    println!("== E9 (Figure 1): coordinated microprocessor-block flow vs ASIC baseline ==");
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "n", "spark states", "base states", "spark area", "base area", "spark FUs", "base FUs"
    );
    for &n in &ILD_SIZES {
        let spark = synthesize_ild_spark(n);
        let baseline = synthesize_ild_baseline(n);
        println!(
            "{:<6} {:>12} {:>12} {:>14.0} {:>14.0} {:>12} {:>12}",
            n,
            spark.report.states,
            baseline.report.states,
            spark.report.area_estimate,
            baseline.report.area_estimate,
            spark.report.total_functional_units(),
            baseline.report.total_functional_units()
        );
    }
    println!();
}

/// E10 — Figure 16: the natural while(1) description through the
/// source-level transformation.
fn experiment_e10() {
    println!("== E10 (Figure 16): natural description through while-to-for ==");
    println!("{:<6} {:>8} {:>14} {:>12}", "n", "states", "crit.path ns", "single cycle");
    for n in [4u32, 8, 16] {
        let r = synthesize_ild_natural(n);
        println!(
            "{:<6} {:>8} {:>14.2} {:>12}",
            n,
            r.report.states,
            r.report.critical_path_ns,
            r.is_single_cycle()
        );
    }
    println!();
}

/// Ablation called out in DESIGN.md: each coordinated transformation switched
/// off individually.
fn experiment_ablation() {
    println!("== Ablation (DESIGN.md §3): switching off individual transformations (n = 16) ==");
    let program = build_ild_program(16);
    let points = ablation_study(&program, ILD_FUNCTION, spark_bench::SINGLE_CYCLE_CLOCK_NS)
        .expect("ablation study runs");
    println!("{}", format_table(&points));
}
