//! Regenerates every figure-level result of the paper and prints the tables
//! recorded in `EXPERIMENTS.md`.
//!
//! ```bash
//! cargo run -p spark-bench --bin reproduce --release
//! ```
//!
//! The actual experiment driver lives in [`spark_bench::experiments`] so the
//! same code path is covered by `cargo test` (`tests/reproduce_smoke.rs`).

use spark_bench::experiments::{run_all, ReproduceOptions};

fn main() {
    run_all(&ReproduceOptions::paper());
}
