//! `sparkc` — the SPARK-C source-to-VHDL compiler driver.
//!
//! Runs the whole reproduction pipeline on a textual behavioral program:
//! parse → semantic checks → HTG lowering → coordinated transformations →
//! chaining-aware scheduling → binding → VHDL / report emission, with the
//! frontend's diagnostics printed as `file:line:col: error: message`.
//!
//! ```text
//! sparkc crates/bench/programs/quantize.spark --emit vhdl
//! sparkc design.spark --dump-ast --dump-ir --emit report
//! sparkc design.spark --check --emit none        # simulate RTL vs interpreter
//! ```
//!
//! Exit codes: 0 success, 1 compilation/synthesis/check failure, 2 usage
//! error.

use std::process::ExitCode;

use spark_bench::corpus::{check_rtl_matches_interp, synthesis_fingerprint};
use spark_core::{synthesize, FlowOptions};

const USAGE: &str = "\
usage: sparkc <FILE.spark> [options]

Compiles a SPARK-C behavioral program (see docs/LANGUAGE.md) through the
coordinated SPARK flow and emits synthesized RTL.

options:
  --top NAME        synthesize function NAME (default: first in the file)
  --emit KIND       what to print: vhdl | report | fingerprint | none
                    (default: vhdl)
  --dump-ast        pretty-print the parsed AST to stderr
  --dump-ir         print the lowered behavioral IR to stderr
  --check           simulate the scheduled RTL against the IR interpreter
                    on 8 seeded random inputs; fail on any mismatch
  --clock NS        target clock period in ns (default: 2000)
  --mode MODE       flow recipe: spark (coordinated) | asic (baseline)
                    (default: spark)
  -o FILE           write the emitted output to FILE instead of stdout
  -h, --help        print this help
";

#[derive(Debug, Clone, Copy, PartialEq)]
enum Emit {
    Vhdl,
    Report,
    Fingerprint,
    None,
}

struct Options {
    file: String,
    top: Option<String>,
    emit: Emit,
    dump_ast: bool,
    dump_ir: bool,
    check: bool,
    clock_ns: f64,
    asic: bool,
    out: Option<String>,
}

/// Reports a usage error on stderr and exits with code 2.
fn usage_error(message: impl std::fmt::Display) -> ! {
    eprintln!("sparkc: error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut file = None;
    let mut top = None;
    let mut emit = Emit::Vhdl;
    let mut dump_ast = false;
    let mut dump_ir = false;
    let mut check = false;
    let mut clock_ns = 2000.0;
    let mut asic = false;
    let mut out = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--top" => {
                top = Some(args.next().unwrap_or_else(|| {
                    usage_error("--top needs a function name");
                }));
            }
            "--emit" => {
                let kind = args
                    .next()
                    .unwrap_or_else(|| usage_error("--emit needs a kind"));
                emit = match kind.as_str() {
                    "vhdl" => Emit::Vhdl,
                    "report" => Emit::Report,
                    "fingerprint" => Emit::Fingerprint,
                    "none" => Emit::None,
                    other => usage_error(format!(
                        "unknown emit kind `{other}` (expected vhdl, report, fingerprint or none)"
                    )),
                };
            }
            "--dump-ast" => dump_ast = true,
            "--dump-ir" => dump_ir = true,
            "--check" => check = true,
            "--clock" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage_error("--clock needs a period in ns"));
                clock_ns = value.parse().unwrap_or_else(|_| {
                    usage_error(format!("invalid clock period `{value}`"));
                });
                if clock_ns <= 0.0 {
                    usage_error("clock period must be positive");
                }
            }
            "--mode" => {
                let mode = args
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs spark or asic"));
                asic = match mode.as_str() {
                    "spark" => false,
                    "asic" => true,
                    other => usage_error(format!("unknown mode `{other}`")),
                };
            }
            "-o" => {
                out = Some(args.next().unwrap_or_else(|| {
                    usage_error("-o needs an output path");
                }));
            }
            other if other.starts_with('-') => {
                usage_error(format!("unknown option `{other}`"));
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    usage_error("exactly one input file expected");
                }
            }
        }
    }

    let Some(file) = file else {
        usage_error("no input file");
    };
    Options {
        file,
        top,
        emit,
        dump_ast,
        dump_ir,
        check,
        clock_ns,
        asic,
        out,
    }
}

fn main() -> ExitCode {
    let options = parse_args();
    let source = match std::fs::read_to_string(&options.file) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("sparkc: cannot read `{}`: {e}", options.file);
            return ExitCode::FAILURE;
        }
    };

    // ---- Frontend --------------------------------------------------------
    let compiled = match spark_front::compile(&source) {
        Ok(compiled) => compiled,
        Err(diags) => {
            for diag in &diags {
                eprintln!("{}:{diag}", options.file);
            }
            eprintln!("sparkc: {} error(s) in `{}`", diags.len(), options.file);
            return ExitCode::FAILURE;
        }
    };
    if options.dump_ast {
        eprint!("{}", compiled.ast);
    }
    if options.dump_ir {
        for function in &compiled.program.functions {
            eprint!("{function}");
        }
    }
    let top = options.top.clone().unwrap_or_else(|| compiled.top.clone());

    // ---- Coordinated flow ------------------------------------------------
    let flow = if options.asic {
        FlowOptions::asic_baseline(options.clock_ns)
    } else {
        FlowOptions::microprocessor_block(options.clock_ns)
    };
    let result = match synthesize(&compiled.program, &top, &flow) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("sparkc: synthesis of `{top}` failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // ---- Optional RTL-vs-interpreter check -------------------------------
    if options.check {
        if let Err(e) = check_rtl_matches_interp(&compiled, &top, &result, 0..8) {
            eprintln!("sparkc: check failed for `{top}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sparkc: check passed: RTL matches the interpreter on 8 seeded inputs");
    }

    // ---- Emission --------------------------------------------------------
    let output = match options.emit {
        Emit::Vhdl => result.vhdl(),
        Emit::Report => format!("{}", result.report),
        Emit::Fingerprint => format!("{:016x}\n", synthesis_fingerprint(&result)),
        Emit::None => String::new(),
    };
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &output) {
                eprintln!("sparkc: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("sparkc: wrote {path}");
        }
        None => print!("{output}"),
    }
    ExitCode::SUCCESS
}
