//! Emits `BENCH_synthesize.json`: full-synthesis wall-times per ILD size and
//! flow mode.
//!
//! Usage:
//!
//! ```text
//! bench_synthesize [--sizes 8,16,32] [--iters 5] [--out BENCH_synthesize.json]
//! ```
//!
//! With no `--out` the JSON goes to stdout only. CI runs the smoke sizes and
//! uploads the file as a workflow artifact; the repository root carries a
//! committed run from the full sizes so the perf trajectory is reviewable
//! diff by diff.

use spark_bench::perf::{bench_json, measure_synthesize};

fn parse_args() -> (Vec<u32>, u32, Option<String>) {
    let mut sizes = vec![8u32, 16, 32];
    let mut iters = 5u32;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let value = args.next().expect("--sizes needs a comma-separated list");
                sizes = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("size must be an integer"))
                    .collect();
            }
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a count")
                    .parse()
                    .expect("iteration count must be an integer");
            }
            "--out" => {
                out = Some(args.next().expect("--out needs a path"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_synthesize [--sizes 8,16,32] [--iters 5] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    (sizes, iters, out)
}

fn main() {
    let (sizes, iters, out) = parse_args();
    eprintln!("measuring synthesize over sizes {sizes:?} ({iters} iters per point)...");
    let records = measure_synthesize(&sizes, iters);
    let json = bench_json(&records);
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
}
