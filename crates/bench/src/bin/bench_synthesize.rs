//! Emits `BENCH_synthesize.json`: full-synthesis wall-times per ILD size and
//! flow mode, with a per-phase breakdown (transform / schedule / bind / RTL
//! reporting) per point.
//!
//! Usage:
//!
//! ```text
//! bench_synthesize [--sizes 8,16,32] [--iters 5] [--out BENCH_synthesize.json]
//! ```
//!
//! With no `--out` the JSON goes to stdout only. CI runs the smoke sizes and
//! uploads the file as a workflow artifact; the repository root carries a
//! committed run from the full sizes so the perf trajectory is reviewable
//! diff by diff.

use spark_bench::perf::{bench_json, measure_synthesize};

const USAGE: &str = "\
usage: bench_synthesize [options]

Measures full-synthesis wall time per ILD buffer size and flow mode —
with a per-phase breakdown (transform/schedule/bind/rtl) — and emits the
series as JSON.

options:
  --sizes N,N,...  comma-separated ILD buffer sizes (default: 8,16,32)
  --iters N        timed iterations per point, after one warm-up (default: 5)
  --out FILE       also write the JSON to FILE
  -h, --help       print this help
";

/// Reports a usage error on stderr and exits with code 2.
fn usage_error(message: impl std::fmt::Display) -> ! {
    eprintln!("bench_synthesize: error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> (Vec<u32>, u32, Option<String>) {
    let mut sizes = vec![8u32, 16, 32];
    let mut iters = 5u32;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--sizes" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage_error("--sizes needs a comma-separated list"));
                sizes = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage_error(format!("invalid size `{s}`")))
                    })
                    .collect();
                if sizes.is_empty() {
                    usage_error("--sizes needs at least one size");
                }
            }
            "--iters" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage_error("--iters needs a count"));
                iters = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(format!("invalid iteration count `{value}`")));
            }
            "--out" => {
                out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--out needs a path")),
                );
            }
            other => usage_error(format!("unknown argument `{other}`")),
        }
    }
    (sizes, iters, out)
}

fn main() {
    let (sizes, iters, out) = parse_args();
    eprintln!("measuring synthesize over sizes {sizes:?} ({iters} iters per point)...");
    let records = measure_synthesize(&sizes, iters);
    let json = bench_json(&records);
    print!("{json}");
    if let Some(path) = out {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("bench_synthesize: error: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
