//! The paper's case study end to end: synthesize the instruction length
//! decoder into a single-cycle architecture (Figures 10 → 15), verify it
//! against the golden software decoder, and dump the stage-by-stage log.
//!
//! ```bash
//! cargo run --example ild_single_cycle -- 16
//! ```

use spark_core::{synthesize, FlowOptions};
use spark_ild::{buffer_env, build_ild_program, decode_marks, random_buffer, ILD_FUNCTION};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    println!("synthesizing the ILD for a {n}-byte instruction buffer\n");

    let program = build_ild_program(n as u32);
    let result = synthesize(
        &program,
        ILD_FUNCTION,
        &FlowOptions::microprocessor_block(1000.0),
    )?;

    println!("== transformation stages (Figures 10-15) ==");
    for stage in &result.stages {
        println!("  {:<24} {}", stage.stage, stage.stats);
    }
    println!("\n== chaining (Sections 3.1.1/3.1.2) ==");
    println!(
        "  chained pairs: {}, across conditional boundaries: {}, wire-variables: {}, commit copies: {}",
        result.chaining.chained_pairs,
        result.chaining.cross_block_pairs,
        result.wire_report.wires_created,
        result.wire_report.commit_copies
    );
    println!("\n== final architecture (Figure 15) ==\n{}", result.report);
    println!("single cycle: {}", result.is_single_cycle());

    // Verify against the golden model on a few random buffers.
    let mut checked = 0;
    for seed in 0..20u64 {
        let buffer = random_buffer(n, seed);
        let golden = decode_marks(&buffer, n);
        let rtl = result.simulate(&buffer_env(&buffer))?;
        let marks = rtl.array("Mark").expect("Mark output");
        for i in 1..=n {
            assert_eq!(
                marks[i] != 0,
                golden[i],
                "mismatch at byte {i}, seed {seed}"
            );
        }
        checked += 1;
    }
    println!("\nverified against the golden decoder on {checked} random buffers ✔");
    Ok(())
}
