//! Operation chaining across conditional boundaries, step by step: the
//! Figure 4–7 examples. Shows the chaining trails (Section 3.1.1), the
//! wire-variables and copies inserted on every trail (Section 3.1.2), and
//! the resulting single-cycle schedule.
//!
//! ```bash
//! cargo run --example chaining_demo
//! ```

use spark_ir::{Cfg, FunctionBuilder, OpKind, Type, Value};
use spark_sched::{
    insert_wire_variables_logged, schedule, validate_chaining, Constraints, DependenceGraph,
    ResourceLibrary,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 5 structure: operation 4 (o2 = o1 + d) chained with the
    // writes of o1 sitting in the branches of two conditionals.
    let mut b = FunctionBuilder::new("fig5");
    let cond1 = b.param("cond1", Type::Bool);
    let cond2 = b.param("cond2", Type::Bool);
    let a = b.param("a", Type::Bits(8));
    let bb = b.param("b", Type::Bits(8));
    let c = b.param("c", Type::Bits(8));
    let d = b.param("d", Type::Bits(8));
    let o1 = b.var("o1", Type::Bits(8));
    let o2 = b.output("o2", Type::Bits(8));
    b.if_begin(Value::Var(cond1));
    b.if_begin(Value::Var(cond2));
    b.copy(o1, Value::Var(a));
    b.else_begin();
    b.copy(o1, Value::Var(bb));
    b.if_end();
    b.else_begin();
    b.copy(o1, Value::Var(c));
    b.if_end();
    b.assign(OpKind::Add, o2, vec![Value::Var(o1), Value::Var(d)]);
    let mut f = b.finish();

    println!("== behavioral description (Figure 5 structure) ==\n{f}");

    // Chaining trails backwards from the block of operation 4.
    let cfg = Cfg::build(&f);
    let reader_block = *f.blocks_in_region(f.body).last().expect("reader block");
    let trails = cfg.backward_trails(reader_block, 16);
    println!("== backward chaining trails from the reader block ==");
    for trail in &trails {
        let labels: Vec<&str> = trail
            .iter()
            .map(|&block| f.blocks[block].label.as_str())
            .collect();
        println!("  <{}>", labels.join(", "));
    }

    // Schedule for a single cycle and insert wire-variables. The insertion
    // emits a structured edit log, and the dependence graph is patched in
    // place from it instead of being rebuilt (debug builds cross-check the
    // patch against a from-scratch rebuild).
    let mut graph = DependenceGraph::build(&f)?;
    let library = ResourceLibrary::new();
    let mut sched = schedule(
        &f,
        &graph,
        &library,
        &Constraints::microprocessor_block(10.0),
    )?;
    let (wires, edits) = insert_wire_variables_logged(&mut f, &mut sched);
    graph.apply_wire_edits(&f, &edits);
    let chaining = validate_chaining(&f, &graph, &sched, &library)?;

    println!("\n== after wire-variable insertion (Figures 6-7) ==\n{f}");
    println!("states: {}", sched.num_states);
    println!(
        "chained pairs: {} ({} across conditionals)",
        chaining.chained_pairs, chaining.cross_block_pairs
    );
    println!(
        "wire-variables: {}, commit copies: {}, initialisers: {}",
        wires.wires_created, wires.commit_copies, wires.initializers
    );
    println!("critical path: {:.2} ns", sched.critical_path_ns());
    Ok(())
}
