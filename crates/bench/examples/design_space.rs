//! Design-space exploration of the ILD: clock-period sweep, buffer-size
//! scaling, and the ablation study of the coordinated transformations
//! (Section 4: Spark as an exploration aid for the block designer).
//!
//! ```bash
//! cargo run --example design_space
//! ```

use spark_core::{ablation_study, format_table, sweep_clock_period, synthesize, FlowOptions};
use spark_ild::{build_ild_program, ILD_FUNCTION};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16u32;
    let program = build_ild_program(n);

    println!("== clock-period sweep (n = {n}) ==");
    let points = sweep_clock_period(
        &program,
        ILD_FUNCTION,
        &[10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
    )?;
    println!("{}", format_table(&points));

    println!("== ablation study (n = {n}, clock 500 ns) ==");
    let ablation = ablation_study(&program, ILD_FUNCTION, 500.0)?;
    println!("{}", format_table(&ablation));

    println!("== buffer-size scaling (coordinated flow vs ASIC baseline) ==");
    println!(
        "{:<6} {:>14} {:>14} {:>16} {:>16}",
        "n", "spark states", "base states", "spark crit. ns", "spark area"
    );
    for n in [4u32, 8, 16, 24, 32] {
        let program = build_ild_program(n);
        let spark = synthesize(
            &program,
            ILD_FUNCTION,
            &FlowOptions::microprocessor_block(1000.0),
        )?;
        let baseline = synthesize(&program, ILD_FUNCTION, &FlowOptions::asic_baseline(20.0))?;
        println!(
            "{:<6} {:>14} {:>14} {:>16.2} {:>16.0}",
            n,
            spark.report.states,
            baseline.report.states,
            spark.report.critical_path_ns,
            spark.report.area_estimate
        );
    }
    Ok(())
}
