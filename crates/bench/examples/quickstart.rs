//! Quickstart: describe a small behavioral block, run the coordinated flow,
//! and inspect the result.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use spark_core::{synthesize, FlowOptions};
use spark_ir::{Env, FunctionBuilder, OpKind, Program, Type, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny "max of three saturating sums" block with data-dependent control:
    // the kind of mixed control/data behaviour Section 3 targets.
    let mut b = FunctionBuilder::new("max3sum");
    let x = b.param("x", Type::Bits(8));
    let y = b.param("y", Type::Bits(8));
    let z = b.param("z", Type::Bits(8));
    let best = b.output("best", Type::Bits(8));

    let xy = b.compute(
        OpKind::Add,
        Type::Bits(8),
        vec![Value::Var(x), Value::Var(y)],
    );
    let yz = b.compute(
        OpKind::Add,
        Type::Bits(8),
        vec![Value::Var(y), Value::Var(z)],
    );
    let gt = b.compute(OpKind::Gt, Type::Bool, vec![Value::Var(xy), Value::Var(yz)]);
    b.if_begin(Value::Var(gt));
    b.copy(best, Value::Var(xy));
    b.else_begin();
    b.copy(best, Value::Var(yz));
    b.if_end();

    let mut program = Program::new();
    program.add_function(b.finish());

    // The microprocessor-block recipe: unlimited resources, chaining across
    // the conditional, single-cycle target.
    let result = synthesize(
        &program,
        "max3sum",
        &FlowOptions::microprocessor_block(20.0),
    )?;

    println!("== pass log ==");
    for pass in &result.pass_log {
        println!("  {pass}");
    }
    println!("\n== datapath report ==\n{}", result.report);
    println!("single cycle: {}", result.is_single_cycle());

    // Exercise the generated design.
    let rtl = result.simulate(
        &Env::new()
            .with_scalar("x", 10)
            .with_scalar("y", 20)
            .with_scalar("z", 5),
    )?;
    println!("best(10, 20, 5) = {:?}", rtl.scalar("best"));

    println!("\n== generated VHDL (excerpt) ==");
    for line in result.vhdl().lines().take(24) {
        println!("{line}");
    }
    Ok(())
}
