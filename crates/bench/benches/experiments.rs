//! Criterion benchmarks — one group per experiment of the paper
//! (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! The groups measure the cost of the transformations and of full synthesis
//! across the same parameter sweeps the `reproduce` binary reports, so the
//! performance of the reproduction itself can be tracked alongside the
//! quality-of-results numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spark_bench::{
    figure2_loop, figure4_fragment, synthesize_ild_baseline, synthesize_ild_natural,
    synthesize_ild_spark,
};
use spark_ild::{buffer_env, build_ild_program, random_buffer, ILD_FUNCTION};
use spark_ir::Interpreter;
use spark_sched::{schedule, Constraints, DependenceGraph, ResourceLibrary};
use spark_transforms as xf;

/// E1 — Figures 2–3: unroll + constant-propagate the synthetic loop.
fn bench_fig2_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_unroll_const_prop");
    for n in [8u64, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut f = figure2_loop(n);
                xf::unroll_all_loops(&mut f);
                xf::constant_propagation(&mut f);
                xf::dead_code_elimination(&mut f);
                f.live_op_count()
            })
        });
    }
    group.finish();
}

/// E2–E4 — Figures 4–7: chaining-aware scheduling of the conditional fragment.
fn bench_fig4_chaining(c: &mut Criterion) {
    let f = figure4_fragment();
    let graph = DependenceGraph::build(&f).expect("loop free");
    let lib = ResourceLibrary::new();
    let mut group = c.benchmark_group("fig4_chaining");
    group.bench_function("cross_conditional", |b| {
        b.iter(|| {
            schedule(&f, &graph, &lib, &Constraints::microprocessor_block(10.0))
                .unwrap()
                .num_states
        })
    });
    group.bench_function("no_chaining", |b| {
        b.iter(|| {
            schedule(
                &f,
                &graph,
                &lib,
                &Constraints::microprocessor_block(10.0).without_chaining(),
            )
            .unwrap()
            .num_states
        })
    });
    group.finish();
}

/// E5–E8 — Figures 10–15: full coordinated synthesis of the ILD.
fn bench_ild_spark_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("ild_coordinated_flow");
    group.sample_size(10);
    for n in [4u32, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| synthesize_ild_spark(n).report.states)
        });
    }
    group.finish();
}

/// E9 — Figure 1: the classical ASIC baseline flow.
fn bench_ild_baseline_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("ild_baseline_flow");
    group.sample_size(10);
    for n in [4u32, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| synthesize_ild_baseline(n).report.states)
        });
    }
    group.finish();
}

/// E10 — Figure 16: the natural description through the source-level rewrite.
fn bench_ild_natural_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("ild_natural_flow");
    group.sample_size(10);
    for n in [4u32, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| synthesize_ild_natural(n).report.states)
        });
    }
    group.finish();
}

/// Throughput of the three verification levels on one buffer: golden model,
/// behavioral interpretation, RTL simulation of the synthesized design.
fn bench_verification_levels(c: &mut Criterion) {
    let n = 16usize;
    let program = build_ild_program(n as u32);
    let result = synthesize_ild_spark(n as u32);
    let buffer = random_buffer(n, 1);
    let env = buffer_env(&buffer);
    let mut group = c.benchmark_group("verification_levels");
    group.bench_function("golden_model", |b| {
        b.iter(|| spark_ild::decode_marks(&buffer, n))
    });
    group.bench_function("behavioral_interpreter", |b| {
        b.iter(|| Interpreter::new(&program).run(ILD_FUNCTION, &env).unwrap())
    });
    group.bench_function("rtl_simulation", |b| {
        b.iter(|| result.simulate(&env).unwrap())
    });
    group.finish();
}

criterion_group!(
    experiments,
    bench_fig2_unroll,
    bench_fig4_chaining,
    bench_ild_spark_flow,
    bench_ild_baseline_flow,
    bench_ild_natural_flow,
    bench_verification_levels
);
criterion_main!(experiments);
